//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the slice of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, [`any`], [`Just`], range and
//! tuple strategies, `prop::collection::vec`, simple `"[class]{m,n}"` string
//! patterns, and the `proptest!`/`prop_oneof!`/`prop_assert*!` macros.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//! failing cases are reported by panic with the case's seed but are **not
//! shrunk**, and generation is deterministic per test (seeded from the test
//! name) so failures reproduce across runs.
//!
//! Like real proptest, failing seeds are persisted: a failure appends
//! `xs <test_name> 0x<seed>` to `proptest-regressions/<source_stem>.txt`
//! under the test crate's manifest directory, and every later run replays
//! the committed seeds for that test *before* generating fresh cases — so
//! regression seeds checked into the repository are exercised on every
//! `cargo test`, locally and in CI.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a), so each test gets a stable,
    /// distinct stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// The current generator state; feed it back to [`TestRng::from_seed`]
    /// to replay everything generated from this point on.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy`
/// (generation only; this shim does not shrink).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Reject generated values failing `predicate`, regenerating in their
    /// place (no shrinking here, so `reason` only appears in the panic when
    /// the filter starves).
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            predicate,
        }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the branch strategy; values nest at most
    /// `depth` levels. `desired_size` and `expected_branch_size` shape
    /// proptest's size heuristics and are accepted but unused here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strategy).boxed();
            strategy = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        strategy
    }

    /// Type-erase (cheaply clonable), for heterogeneous unions
    /// (`prop_oneof!`) and recursion.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy yielding a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter starved after 1000 rejections: {}", self.reason);
    }
}

/// Uniform choice among boxed strategies; output of `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix magnitudes but stay finite and non-NaN: NaN would make
        // value-equality properties vacuously fail, and real proptest's
        // default f64 strategy excludes NaN too.
        let mag = [1.0, 1e3, 1e9, 1e-6][rng.below(4)];
        (rng.next_f64() * 2.0 - 1.0) * mag
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen to i128 so signed ranges spanning more than half the
                // type's domain (e.g. i64::MIN..0) can't overflow the span.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// `&str` patterns of the shape `"[class]{m,n}"` (optionally repeated or
/// mixed with literal characters) generate matching strings, covering the
/// subset of proptest's regex strategies this workspace uses.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    /// Generate a string matching the simple pattern. Supported syntax:
    /// literal chars, `[a-z0-9 ']` classes (ranges and singles), and `{m,n}`
    /// / `{n}` repetition after a class or literal.
    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pat:?}"));
                let class = expand_class(&chars[i + 1..close], pat);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                assert!(
                    !"+*?|()\\.^$".contains(c),
                    "regex metacharacter {c:?} is outside this shim's supported \
                     pattern subset (literals, [classes], {{m,n}} repetition): {pat:?}"
                );
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                parse_reps(&body, pat)
            } else {
                (1, 1)
            };
            let n = min + (rng.next_u64() % (max - min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }

    fn expand_class(body: &[char], pat: &str) -> Vec<char> {
        assert!(!body.is_empty(), "empty character class in pattern {pat:?}");
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                assert!(lo <= hi, "inverted class range in pattern {pat:?}");
                set.extend((lo..=hi).filter_map(char::from_u32));
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        set
    }

    fn parse_reps(body: &str, pat: &str) -> (usize, usize) {
        let parse = |s: &str| -> usize {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition {body:?} in pattern {pat:?}"))
        };
        match body.split_once(',') {
            Some((lo, hi)) => {
                let (lo, hi) = (parse(lo), parse(hi));
                assert!(lo <= hi, "inverted repetition in pattern {pat:?}");
                (lo, hi)
            }
            None => {
                let n = parse(body);
                (n, n)
            }
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Regression-seed persistence, mirroring proptest's `proptest-regressions/`
/// files. One file per test *source file* (its stem), holding one line per
/// recorded failure: `xs <test_name> 0x<seed>`. `#`-prefixed lines are
/// comments. Seeds replay through [`TestRng::from_seed`].
pub mod persistence {
    use std::path::{Path, PathBuf};

    /// Handle on one test's slice of a regression file.
    pub struct RegressionFile {
        path: PathBuf,
        test: String,
    }

    impl RegressionFile {
        /// Locate the regression file for `source_file` (a `file!()` path)
        /// under `manifest_dir`, scoped to the property test `test`.
        pub fn for_test(manifest_dir: &str, source_file: &str, test: &str) -> RegressionFile {
            let stem = Path::new(source_file)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unknown");
            RegressionFile {
                path: Path::new(manifest_dir)
                    .join("proptest-regressions")
                    .join(format!("{stem}.txt")),
                test: test.to_string(),
            }
        }

        /// Seeds recorded for this test, in file order.
        pub fn seeds(&self) -> Vec<u64> {
            let Ok(text) = std::fs::read_to_string(&self.path) else {
                return Vec::new();
            };
            text.lines()
                .filter_map(|line| {
                    let line = line.trim();
                    let rest = line.strip_prefix("xs ")?;
                    let (name, seed) = rest.split_once(' ')?;
                    if name != self.test {
                        return None;
                    }
                    let seed = seed.trim();
                    let hex = seed.strip_prefix("0x").unwrap_or(seed);
                    u64::from_str_radix(hex, 16).ok()
                })
                .collect()
        }

        /// Record a failing seed (idempotent, best effort: IO errors are
        /// swallowed so persistence never masks the test failure itself).
        /// Uses a single appending write — tests in one binary run on
        /// parallel threads, and a read-modify-rewrite would let two
        /// failing properties sharing this file drop each other's seed.
        pub fn record(&self, seed: u64) {
            use std::io::Write;
            if self.seeds().contains(&seed) {
                return;
            }
            if let Some(dir) = self.path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let mut entry = String::new();
            if !self.path.exists() {
                entry.push_str(
                    "# Proptest regression seeds. Each line is `xs <test_name> 0x<seed>`;\n\
                     # committed seeds replay before fresh generation on every run.\n",
                );
            }
            entry.push_str(&format!("xs {} 0x{seed:016x}\n", self.test));
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
            {
                let _ = f.write_all(entry.as_bytes());
            }
        }
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property assertion; panics (fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declare property tests: each `#[test] fn name(pat in strategy, ...)`
/// expands to a `#[test]` that runs the body over `cases` generated inputs.
/// Failures panic with the offending case number; generation is
/// deterministic per test, so failures reproduce.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(#[test] fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // `mut` is needed whenever the case body captures state
            // mutably, which depends on the caller's strategies/body.
            #[allow(unused_mut)]
            let mut run_case = |rng: &mut $crate::TestRng| {
                let ($($arg,)+) = ($($crate::Strategy::generate(&$strategy, rng),)+);
                $body
            };
            let regressions = $crate::persistence::RegressionFile::for_test(
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
            );
            // Committed regression seeds replay before fresh generation.
            for seed in regressions.seeds() {
                let mut rng = $crate::TestRng::from_seed(seed);
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || run_case(&mut rng),
                ));
                if let Err(cause) = result {
                    eprintln!(
                        "proptest regression seed 0x{seed:016x} failed in {}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let case_seed = rng.seed();
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || run_case(&mut rng),
                ));
                if let Err(cause) = result {
                    regressions.record(case_seed);
                    eprintln!(
                        "proptest case {case}/{} failed in {} (replay with \
                         TestRng::from_seed(0x{case_seed:016x}); seed persisted \
                         under proptest-regressions/)",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// Namespaced module access (`prop::collection::vec`), mirroring the
    /// real prelude's `prop` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_class_and_reps() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c0-1 ']{0,5}", &mut rng);
            assert!(s.chars().count() <= 5);
            assert!(s.chars().all(|c| "abc01 '".contains(c)));
        }
    }

    #[test]
    fn union_draws_from_all_arms() {
        let s = prop_oneof![Just(1u64), Just(2), 10u64..20];
        let mut rng = TestRng::from_seed(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 2 || (10..20).contains(&v));
            seen.insert(v.min(10));
        }
        assert_eq!(seen.len(), 3, "all arms exercised");
    }

    #[test]
    fn persistence_roundtrip_and_scoping() {
        let dir = std::env::temp_dir().join(format!("csq-proptest-shim-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.to_str().unwrap();
        let f = crate::persistence::RegressionFile::for_test(manifest, "tests/some_suite.rs", "a");
        assert!(f.seeds().is_empty(), "missing file reads as no seeds");
        f.record(0xdead_beef);
        f.record(0xdead_beef); // idempotent
        f.record(7);
        let g = crate::persistence::RegressionFile::for_test(manifest, "tests/some_suite.rs", "b");
        g.record(42);
        assert_eq!(f.seeds(), vec![0xdead_beef, 7], "scoped to test name");
        assert_eq!(g.seeds(), vec![42]);
        let text =
            std::fs::read_to_string(dir.join("proptest-regressions/some_suite.txt")).unwrap();
        assert!(text.starts_with('#'), "header comment present");
        assert!(text.contains("xs a 0x00000000deadbeef"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_vecs_respect_size(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn tuples_and_maps_compose(x in (0usize..10, any::<bool>()).prop_map(|(n, b)| if b { n } else { 0 })) {
            prop_assert!(x < 10);
        }
    }
}
