//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the slice of the criterion API the workspace's benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. It times each benchmark
//! over `sample_size` iterations and prints mean wall-clock time per
//! iteration — enough to compare runs by hand; no statistics, plots, or
//! baseline storage.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `routine` and report mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations as u32
        } else {
            Duration::ZERO
        };
        eprintln!("  {}/{id}: {per_iter:?} per iteration", self.name);
        self
    }

    /// End the group (report-flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the configured iteration count, timing the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declare a function that runs each listed benchmark with a fresh
/// [`Criterion`], mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running each group, mirroring `criterion::criterion_main!`.
/// CLI arguments (`--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_configured_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut count = 0u64;
        g.sample_size(7)
            .bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 7);
    }
}
