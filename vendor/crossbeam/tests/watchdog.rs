//! Regression tests for the blocked-channel watchdog. Compiled only under
//! `RUSTFLAGS="--cfg lockcheck"` (the CI `lockcheck` job). Kept in their
//! own integration-test binary so the tiny watchdog threshold set here
//! cannot leak into the shim's ordinary unit tests (integration tests run
//! as separate processes).
#![cfg(lockcheck)]

use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, set_watchdog_timeout, unbounded};

fn panic_message_of(f: impl FnOnce() + Send + 'static) -> Option<String> {
    let payload = std::thread::spawn(f).join().err()?;
    Some(match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => p
            .downcast::<&'static str>()
            .map(|s| s.to_string())
            .unwrap_or_else(|_| "<non-string panic payload>".into()),
    })
}

#[test]
fn blocked_forever_recv_trips_the_watchdog() {
    set_watchdog_timeout(Duration::from_millis(80));
    let (tx, rx) = unbounded::<u32>();
    let started = Instant::now();
    // The sender stays alive but never sends: without the watchdog this
    // recv blocks forever (the shape of the PR 3 deadlock).
    let msg = panic_message_of(move || {
        let _ = rx.recv();
    })
    .expect("watchdog must panic a recv that can never complete");
    drop(tx);
    assert!(msg.contains("lockcheck: channel recv blocked"), "{msg}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "watchdog must fire near its threshold, not hang"
    );
}

#[test]
fn blocked_forever_send_trips_the_watchdog() {
    set_watchdog_timeout(Duration::from_millis(80));
    let (tx, rx) = bounded::<u32>(1);
    tx.send(1).expect("first send fills the buffer");
    // The receiver stays alive but never drains: the second send blocks on
    // backpressure forever.
    let msg = panic_message_of(move || {
        let _ = tx.send(2);
    })
    .expect("watchdog must panic a send that can never complete");
    drop(rx);
    assert!(msg.contains("lockcheck: channel send"), "{msg}");
}

#[test]
fn watchdog_tolerates_slow_but_live_channels() {
    set_watchdog_timeout(Duration::from_millis(80));
    // Each message arrives within the threshold, so the watchdog must stay
    // quiet even though the total wait far exceeds it: every notification
    // starts a fresh blocking episode.
    let (tx, rx) = unbounded::<u32>();
    let producer = std::thread::spawn(move || {
        for i in 0..6 {
            std::thread::sleep(Duration::from_millis(40));
            tx.send(i).unwrap();
        }
    });
    for i in 0..6 {
        assert_eq!(rx.recv(), Ok(i));
    }
    producer.join().unwrap();
}
