//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the slice of `crossbeam::channel` the workspace uses: bounded
//! and unbounded MPMC channels with `Sender`/`Receiver`/`TryRecvError`.
//! Semantics match for this use: `bounded(n)` applies backpressure at `n`
//! in-flight messages (`bounded(0)` is a rendezvous channel), receive
//! operations report disconnection once all senders are dropped, and — as
//! in real crossbeam — both halves are `Clone`, so multiple consumers (the
//! morsel-driven worker pool) can share one channel; every message is
//! delivered to exactly one of them. The implementation is a
//! mutex-plus-condvars queue (not a wrapper over `std::sync::mpsc`, whose
//! single-consumer receiver would have to hold a lock across blocking
//! receives — deadlocking a producer that consumes opportunistically).
//!
//! Building with `RUSTFLAGS="--cfg lockcheck"` arms a blocked-forever
//! watchdog on every blocking channel wait (recv with no message, send
//! against a full or rendezvous channel): a wait that exceeds the
//! configured threshold panics with the channel's sender/receiver/queue
//! state instead of hanging the process — the PR 3 producer/consumer
//! deadlock class surfaces as a loud test failure rather than a CI
//! timeout. See `channel::set_watchdog_timeout` (lockcheck builds only).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Blocked-wait watchdog state (lockcheck builds only).
    #[cfg(lockcheck)]
    mod watchdog {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::Duration;

        /// Threshold in ms; 0 = not yet initialized from the environment.
        static TIMEOUT_MS: AtomicU64 = AtomicU64::new(0);

        /// Generous default: long enough that a legitimately idle worker
        /// parked on an empty queue for a whole test never trips it, short
        /// enough to beat any CI job timeout.
        const DEFAULT_MS: u64 = 120_000;

        pub(super) fn timeout() -> Duration {
            let v = TIMEOUT_MS.load(Ordering::Relaxed);
            if v != 0 {
                return Duration::from_millis(v);
            }
            let ms = std::env::var("CSQ_LOCKCHECK_CHANNEL_TIMEOUT_MS")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .unwrap_or(DEFAULT_MS);
            TIMEOUT_MS.store(ms, Ordering::Relaxed);
            Duration::from_millis(ms)
        }

        pub(super) fn set(d: Duration) {
            TIMEOUT_MS.store((d.as_millis() as u64).max(1), Ordering::Relaxed);
        }
    }

    /// Override the blocked-wait watchdog threshold (lockcheck builds
    /// only). Also settable via `CSQ_LOCKCHECK_CHANNEL_TIMEOUT_MS` before
    /// the first blocking channel operation; default 120 s.
    #[cfg(lockcheck)]
    pub fn set_watchdog_timeout(d: std::time::Duration) {
        watchdog::set(d);
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded; `Some(0)` = rendezvous.
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
        /// Parked senders/receivers — notifications are skipped when
        /// nobody waits, keeping the uncontended path syscall-free.
        waiting_send: usize,
        waiting_recv: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signaled on push and on last-sender drop.
        not_empty: Condvar,
        /// Signaled on pop and on last-receiver drop.
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, Inner<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                // A panicking user thread cannot corrupt a plain queue.
                Err(p) => p.into_inner(),
            }
        }
    }

    /// Block on `cv` until notified. `what` names the waiting operation
    /// for the lockcheck watchdog's report; it is unused in normal builds,
    /// where this is a plain (possibly forever) condvar wait.
    #[cfg_attr(not(lockcheck), allow(unused_variables))]
    fn wait<'a, T>(
        cv: &Condvar,
        guard: MutexGuard<'a, Inner<T>>,
        shared: &'a Shared<T>,
        what: &'static str,
    ) -> MutexGuard<'a, Inner<T>> {
        #[cfg(not(lockcheck))]
        {
            match cv.wait(guard) {
                Ok(g) => g,
                Err(_) => shared.lock(),
            }
        }
        #[cfg(lockcheck)]
        {
            let dur = watchdog::timeout();
            match cv.wait_timeout(guard, dur) {
                Ok((g, timed_out)) => {
                    if timed_out.timed_out() {
                        let msg = format!(
                            "lockcheck: channel {what} blocked for over {dur:?} \
                             (senders alive: {}, receivers alive: {}, queued: {}) — \
                             potential channel deadlock or lost wakeup",
                            g.senders,
                            g.receivers,
                            g.queue.len()
                        );
                        drop(g);
                        panic!("{msg}");
                    }
                    g
                }
                Err(_) => shared.lock(),
            }
        }
    }

    /// Sending half of a channel; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full (and,
        /// for a rendezvous channel, until the message is taken). Errors
        /// only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.lock();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                match g.cap {
                    Some(cap) if g.queue.len() >= cap.max(1) => {
                        g.waiting_send += 1;
                        g = wait(
                            &self.shared.not_full,
                            g,
                            &self.shared,
                            "send (backpressure)",
                        );
                        g.waiting_send -= 1;
                    }
                    _ => break,
                }
            }
            let rendezvous = g.cap == Some(0);
            g.queue.push_back(value);
            if g.waiting_recv > 0 {
                self.shared.not_empty.notify_one();
            }
            if rendezvous {
                // Block until a receiver takes the message (or all
                // receivers vanish; the message is then lost, like a
                // disconnected std rendezvous send that already paired).
                while !g.queue.is_empty() && g.receivers > 0 {
                    g.waiting_send += 1;
                    g = wait(
                        &self.shared.not_full,
                        g,
                        &self.shared,
                        "send (rendezvous handoff)",
                    );
                    g.waiting_send -= 1;
                }
                // Pass the baton: the receiver's single pop-side notify may
                // have woken *this* (phase-2) sender rather than a sender
                // still waiting to push; re-notify so it isn't stranded.
                if g.waiting_send > 0 {
                    self.shared.not_full.notify_one();
                }
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.lock();
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of a channel. Clonable, like crossbeam's: clones
    /// share the queue and each message goes to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors when all senders dropped
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.lock();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    let wake = g.waiting_send > 0;
                    drop(g);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g.waiting_recv += 1;
                g = wait(&self.shared.not_empty, g, &self.shared, "recv");
                g.waiting_recv -= 1;
            }
        }

        /// Block until a message arrives or `timeout` elapses. Unlike the
        /// lockcheck watchdog (a diagnostic), the timeout here is part of
        /// the API contract: bounded waits (the connection pool's checkout)
        /// use it to turn an exhausted resource into a typed error instead
        /// of pinning the caller forever. Spurious condvar wakeups re-check
        /// the remaining budget, so the wait never exceeds `timeout` by
        /// more than scheduling noise.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut g = self.shared.lock();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    let wake = g.waiting_send > 0;
                    drop(g);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                g.waiting_recv += 1;
                // A plain wait_timeout, not the watchdog wrapper: the caller
                // asked for a bounded wait, so expiry is a normal outcome,
                // not a deadlock symptom. The wait is capped at `left`, so
                // it can never outlive the watchdog threshold unnoticed.
                g = match self.shared.not_empty.wait_timeout(g, left) {
                    Ok((g, _)) => g,
                    Err(_) => self.shared.lock(),
                };
                g.waiting_recv -= 1;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.shared.lock();
            if let Some(v) = g.queue.pop_front() {
                let wake = g.waiting_send > 0;
                drop(g);
                if wake {
                    self.shared.not_full.notify_one();
                }
                return Ok(v);
            }
            if g.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate over messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.shared.lock();
            g.receivers -= 1;
            if g.receivers == 0 {
                drop(g);
                // Blocked senders must observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages; ends at disconnection.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
                waiting_send: 0,
                waiting_recv: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A channel holding at most `cap` in-flight messages; `cap == 0` gives
    /// a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
        assert!(rx.recv().is_err(), "sender dropped");
    }

    #[test]
    fn rendezvous_blocks_until_taken() {
        let (tx, rx) = bounded(0);
        let t = std::thread::spawn(move || {
            tx.send(41).unwrap();
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv().unwrap(), 42);
        t.join().unwrap();
        assert!(rx.recv().is_err());
    }

    #[test]
    fn rendezvous_with_multiple_senders_passes_the_baton() {
        // A phase-2 sender (message just taken) must re-notify a phase-1
        // sender still waiting to push; a lost wakeup here deadlocks.
        let (tx, rx) = bounded(0);
        let senders: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        for t in senders {
            t.join().unwrap();
        }
        got.sort_unstable();
        let mut expect: Vec<i32> = (0..4)
            .flat_map(|i| (0..25).map(move |j| i * 100 + j))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn recv_timeout_delivers_times_out_and_disconnects() {
        use super::channel::RecvTimeoutError;
        use std::time::{Duration, Instant};
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        use std::time::Duration;
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(11).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(11));
        t.join().unwrap();
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        // A consumer thread blocked in recv() must not starve the producer
        // thread's own try_recv/send loop (a lock-holding blocking recv
        // would deadlock exactly this pattern).
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut local = Vec::new();
        for i in 0..100 {
            tx.send(i).unwrap();
            if let Ok(v) = rx.try_recv() {
                local.push(v);
            }
        }
        drop(tx);
        while let Ok(v) = rx.recv() {
            local.push(v);
        }
        let mut all = consumer.join().unwrap();
        all.extend(local);
        all.sort_unstable();
        // Every message delivered exactly once across the two consumers.
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_senders_disconnect_only_when_all_drop() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        drop(tx2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    // Edge cases exposed by the PR 3 producer/consumer deadlock in the old
    // std::mpsc wrapper: every disconnect path must *wake* the blocked
    // side promptly, not strand it. The CI `lockcheck` job reruns these
    // with the blocked-wait watchdog armed, so a reintroduced lost wakeup
    // fails loudly either way.

    #[test]
    fn all_senders_dropped_wakes_blocked_recv() {
        let (tx, rx) = unbounded::<u32>();
        let waiter = std::thread::spawn(move || rx.recv());
        // Let the receiver actually park on the empty queue first.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let started = std::time::Instant::now();
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(super::channel::RecvError));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "disconnect must wake the parked receiver, not strand it"
        );
    }

    #[test]
    fn all_receivers_dropped_wakes_blocked_send() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        // This send parks on the full channel.
        let sender = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(rx);
        let res = sender.join().unwrap();
        assert_eq!(
            res.unwrap_err().0,
            2,
            "blocked send must error, returning the value"
        );
    }

    #[test]
    fn receiver_drop_mid_rendezvous_releases_the_sender() {
        // A rendezvous sender in its handoff phase (message pushed, waiting
        // for the take) must be released when every receiver disappears;
        // the unpaired message is lost, matching a disconnected std
        // rendezvous send that already paired.
        let (tx, rx) = bounded::<u32>(0);
        let sender = std::thread::spawn(move || tx.send(7));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(rx);
        assert!(sender.join().unwrap().is_ok());
    }

    #[test]
    fn clone_then_drop_races_neither_lose_nor_duplicate() {
        // 4 sender clones and 3 receiver clones all racing sends, receives,
        // and their own drops: exactly-once delivery must hold and every
        // receiver must see the disconnect once the last sender is gone.
        let (tx, rx) = unbounded::<u32>();
        let senders: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..250 {
                        tx.send(i * 1000 + j).unwrap();
                    }
                    // tx dropped here — each clone disconnects at its own time.
                })
            })
            .collect();
        drop(tx);
        let receivers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for s in senders {
            s.join().unwrap();
        }
        let mut all: Vec<u32> = Vec::new();
        for r in receivers {
            all.extend(r.join().unwrap());
        }
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..4)
            .flat_map(|i| (0..250).map(move |j| i * 1000 + j))
            .collect();
        expect.sort_unstable();
        assert_eq!(
            all, expect,
            "every message delivered to exactly one receiver"
        );
    }

    #[test]
    fn late_receiver_clone_of_dropped_original_still_drains() {
        // Cloning a receiver, dropping the original, then draining through
        // the clone: the receiver count must track clones, not the original.
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx2.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
        assert!(rx2.recv().is_err());
    }
}
