//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the slice of `crossbeam::channel` the workspace uses (bounded and
//! unbounded MPSC channels with `Sender`/`Receiver`/`TryRecvError`) on top of
//! `std::sync::mpsc`. Semantics match for this use: `bounded(n)` applies
//! backpressure at `n` in-flight messages (`bounded(0)` is a rendezvous
//! channel), and receive operations report disconnection once all senders
//! are dropped.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, TryRecvError};

    /// Sending half of a channel; unifies std's unbounded and bounded
    /// sender types behind crossbeam's single `Sender`.
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Error returned by [`Sender::send`] when the receiver disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Errors only when the receiving half has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Sender::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors when all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv()
        }

        /// Iterate over messages until the channel disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { rx })
    }

    /// A channel holding at most `cap` in-flight messages; `cap == 0` gives
    /// a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
        assert!(rx.recv().is_err(), "sender dropped");
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
