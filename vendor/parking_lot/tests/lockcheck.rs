//! Regression tests for the lock-order deadlock detector. Compiled only
//! under `RUSTFLAGS="--cfg lockcheck"` (the CI `lockcheck` job); the
//! detector itself is absent from normal builds.
#![cfg(lockcheck)]

use std::sync::Arc;
use std::thread;

use parking_lot::{Mutex, RwLock};

/// Run `f` on a fresh thread and return its panic message, or `None` if it
/// completed without panicking.
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> Option<String> {
    let payload = thread::spawn(f).join().err()?;
    Some(match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => p
            .downcast::<&'static str>()
            .map(|s| s.to_string())
            .unwrap_or_else(|_| "<non-string panic payload>".into()),
    })
}

#[test]
fn ab_ba_inversion_is_detected() {
    // Deliberate AB/BA: establish A→B on one thread, then acquire B→A on
    // another. The schedules never actually collide (the acquisitions are
    // sequential), but the detector must still fire on the first inverted
    // acquisition and name both sites.
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let msg = panic_message_of(move || {
        let _gb = b.lock();
        let _ga = a.lock(); // inversion: A-after-B vs the recorded B-after-A
    })
    .expect("detector must panic on the AB/BA inversion");
    assert!(
        msg.contains("lock-order inversion"),
        "unexpected panic message: {msg}"
    );
    assert!(
        msg.contains("tests/lockcheck.rs"),
        "message must carry both acquisition sites: {msg}"
    );
}

#[test]
fn consistent_order_is_clean() {
    // Same pair taken in the same order from two threads: no cycle, no
    // panic — the detector only objects to *inverted* orders.
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    assert!(panic_message_of(move || {
        let _ga = a.lock();
        let _gb = b.lock();
    })
    .is_none());
}

#[test]
fn transitive_cycle_is_detected() {
    // A→B and B→C recorded; C→A closes a three-lock cycle that no single
    // pair exhibits.
    let a = Arc::new(Mutex::new(()));
    let b = Arc::new(Mutex::new(()));
    let c = Arc::new(Mutex::new(()));
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    let msg = panic_message_of(move || {
        let _gc = c.lock();
        let _ga = a.lock();
    })
    .expect("detector must panic on the transitive cycle");
    assert!(msg.contains("lock-order inversion"), "{msg}");
}

#[test]
fn recursive_acquisition_panics() {
    let m = Arc::new(Mutex::new(0u32));
    let msg = panic_message_of(move || {
        let _g1 = m.lock();
        let _g2 = m.lock(); // would deadlock for real without the detector
    })
    .expect("detector must panic on recursive locking");
    assert!(msg.contains("recursive acquisition"), "{msg}");
}

#[test]
fn rwlock_inversion_is_detected() {
    // Read and write acquisitions participate in the same order graph.
    let l = Arc::new(RwLock::new(0u32));
    let m = Arc::new(Mutex::new(0u32));
    {
        let _gl = l.read();
        let _gm = m.lock();
    }
    let msg = panic_message_of(move || {
        let _gm = m.lock();
        let _gl = l.write();
    })
    .expect("detector must panic on the RwLock/Mutex inversion");
    assert!(msg.contains("lock-order inversion"), "{msg}");
}

#[test]
fn unrelated_locks_never_interfere() {
    // Fresh lock instances get fresh ids: heavy disjoint lock traffic on
    // many threads builds no spurious cycles.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(|| {
                let a = Mutex::new(0u32);
                let b = Mutex::new(0u32);
                for _ in 0..100 {
                    let _ga = a.lock();
                    let _gb = b.lock();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("disjoint lock order must not panic");
    }
}
