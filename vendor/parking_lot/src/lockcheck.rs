//! Runtime lock-order deadlock detection (compiled under `--cfg lockcheck`).
//!
//! Every `Mutex`/`RwLock` in this shim gets a lazily-assigned id; each
//! acquisition records, for every lock already held by the thread, a
//! directed edge `held → acquiring` (with both acquisition sites) into one
//! process-global order graph. Before the edge is inserted the graph is
//! searched for a path `acquiring →* held`: finding one means two threads
//! can take the same pair of locks in opposite orders — a potential
//! deadlock, reported by panicking with the acquisition sites of both
//! conflicting edges *on the first inverted acquisition*, whether or not
//! the schedules ever actually collide (à la TSan's lock-order inversion
//! reports). Recursive acquisition of the same lock (including
//! read-after-read of an `RwLock`, which `std` does not guarantee to be
//! reentrant) panics immediately.
//!
//! The detector is intent-based: a lock is pushed onto the thread's held
//! stack *before* the underlying `std` lock is taken, so an AB/BA pair that
//! really interleaves panics in one thread instead of deadlocking both.
//!
//! The graph only grows (edges are never removed when locks are dropped);
//! ids are per-instance, so two instances of the same type never alias.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Lazily-assigned unique lock id. `0` means "not yet assigned", so the
/// containing lock can still `#[derive(Default)]`-construct cheaply.
pub(crate) struct LockId(AtomicU64);

impl LockId {
    pub(crate) const fn new() -> LockId {
        LockId(AtomicU64::new(0))
    }

    /// The id, assigning one on first use.
    pub(crate) fn get(&self) -> u64 {
        let v = self.0.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let fresh = NEXT.fetch_add(1, Ordering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            // Another thread assigned concurrently; use its id.
            Err(existing) => existing,
        }
    }
}

impl Default for LockId {
    fn default() -> LockId {
        LockId::new()
    }
}

/// One first-observed ordering edge `from → to`: the site that held `from`
/// and the site that acquired `to` while holding it.
#[derive(Clone, Copy)]
struct Edge {
    hold_site: &'static Location<'static>,
    acq_site: &'static Location<'static>,
    kind: &'static str,
}

#[derive(Default)]
struct Graph {
    /// `edges[a][b]` exists when some thread acquired `b` while holding `a`.
    edges: HashMap<u64, HashMap<u64, Edge>>,
}

impl Graph {
    /// Is `to` reachable from `from`? Returns the first and last edges of
    /// one such path (equal for a direct edge) for the report.
    fn find_path(&self, from: u64, to: u64) -> Option<(Edge, Edge)> {
        // Iterative DFS; `prev` remembers each node's discovery edge so the
        // path endpoints can be reconstructed.
        let mut prev: HashMap<u64, (u64, Edge)> = HashMap::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            let Some(next) = self.edges.get(&n) else {
                continue;
            };
            for (&m, &e) in next {
                if m == from || prev.contains_key(&m) {
                    continue;
                }
                prev.insert(m, (n, e));
                if m == to {
                    let last = e;
                    // Walk back to the edge leaving `from`.
                    let mut cur = m;
                    let mut first = e;
                    while let Some(&(p, pe)) = prev.get(&cur) {
                        first = pe;
                        cur = p;
                        if cur == from {
                            break;
                        }
                    }
                    return Some((first, last));
                }
                stack.push(m);
            }
        }
        None
    }
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

thread_local! {
    /// Locks this thread currently holds (or is blocked acquiring), oldest
    /// first: id plus acquisition site.
    static HELD: RefCell<Vec<(u64, &'static Location<'static>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Token representing one held lock; dropping it (from the guard) pops the
/// thread's held stack.
pub(crate) struct Held {
    id: u64,
}

impl Drop for Held {
    fn drop(&mut self) {
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            // Guards can be dropped out of acquisition order; pop the most
            // recent entry for this id.
            if let Some(i) = held.iter().rposition(|&(id, _)| id == self.id) {
                held.remove(i);
            }
        });
    }
}

/// Record the intent to acquire lock `id` (a `kind` lock) at `site`,
/// checking the order graph first. Panics on recursion or on the first
/// lock-order inversion. Call *before* blocking on the underlying lock.
pub(crate) fn acquire(id: u64, kind: &'static str, site: &'static Location<'static>) -> Held {
    let held_snapshot: Vec<(u64, &'static Location<'static>)> = HELD.with(|h| h.borrow().clone());

    if let Some(&(_, prev_site)) = held_snapshot.iter().find(|&&(hid, _)| hid == id) {
        panic!(
            "lockcheck: recursive acquisition of the same {kind}: first taken at \
             {prev_site}, reacquired at {site} on the same thread (std::sync does \
             not support reentrant locking)"
        );
    }

    if !held_snapshot.is_empty() {
        // Collect the report outside the panic so the graph mutex guard is
        // released before unwinding.
        let mut report: Option<String> = None;
        {
            let mut g = match graph().lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            for &(hid, hsite) in &held_snapshot {
                let known = g
                    .edges
                    .get(&hid)
                    .map_or(false, |next| next.contains_key(&id));
                if !known {
                    if let Some((first, last)) = g.find_path(id, hid) {
                        report = Some(format!(
                            "lockcheck: potential deadlock (lock-order inversion)\n  \
                             this thread: holds lock #{hid} (acquired at {hsite}) and \
                             is acquiring {kind} #{id} at {site}\n  \
                             conflicting order previously established: held #{id} at \
                             {} while acquiring a {} at {}{}",
                            first.hold_site,
                            last.kind,
                            last.acq_site,
                            if first.acq_site as *const _ == last.acq_site as *const _ {
                                String::new()
                            } else {
                                format!(" (via intermediate acquisition at {})", first.acq_site)
                            },
                        ));
                        break;
                    }
                    g.edges.entry(hid).or_default().insert(
                        id,
                        Edge {
                            hold_site: hsite,
                            acq_site: site,
                            kind,
                        },
                    );
                }
            }
        }
        if let Some(msg) = report {
            panic!("{msg}");
        }
    }

    HELD.with(|h| h.borrow_mut().push((id, site)));
    Held { id }
}
