//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the small slice of the `parking_lot` API the workspace uses
//! (`RwLock`/`Mutex` with panic-free, non-`Result` guards) on top of
//! `std::sync`. Poisoning is deliberately ignored — `parking_lot` locks do
//! not poison, and callers here rely on that.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the `parking_lot` calling convention:
/// `read()`/`write()` return guards directly instead of `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock wrapping `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutex with the `parking_lot` calling convention: `lock()` returns the
/// guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
