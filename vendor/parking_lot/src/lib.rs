//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the small slice of the `parking_lot` API the workspace uses
//! (`RwLock`/`Mutex` with panic-free, non-`Result` guards) on top of
//! `std::sync`. Poisoning is deliberately ignored — `parking_lot` locks do
//! not poison, and callers here rely on that.
//!
//! Because every non-vendor crate is required (and statically checked, by
//! `csq-analyze`) to lock through this shim rather than `std::sync`, it is
//! also the one choke point where the whole workspace's lock behaviour can
//! be instrumented. Building with `RUSTFLAGS="--cfg lockcheck"` turns on
//! runtime lock-order deadlock detection: every acquisition feeds a global
//! lock-order graph and the first AB/BA inversion panics with both
//! acquisition sites — see the `lockcheck` module — without any API change
//! (guards stay `Deref` wrappers either way).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(lockcheck)]
mod lockcheck;

/// A reader-writer lock with the `parking_lot` calling convention:
/// `read()`/`write()` return guards directly instead of `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(lockcheck)]
    id: lockcheck::LockId,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock wrapping `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(lockcheck)]
            id: lockcheck::LockId::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(lockcheck)]
        let held = lockcheck::acquire(
            self.id.get(),
            "RwLock (read)",
            std::panic::Location::caller(),
        );
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            inner,
            #[cfg(lockcheck)]
            _held: held,
        }
    }

    /// Acquire an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(lockcheck)]
        let held = lockcheck::acquire(
            self.id.get(),
            "RwLock (write)",
            std::panic::Location::caller(),
        );
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            inner,
            #[cfg(lockcheck)]
            _held: held,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(lockcheck)]
    _held: lockcheck::Held,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(lockcheck)]
    _held: lockcheck::Held,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A mutex with the `parking_lot` calling convention: `lock()` returns the
/// guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(lockcheck)]
    id: lockcheck::LockId,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(lockcheck)]
            id: lockcheck::LockId::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(lockcheck)]
        let held = lockcheck::acquire(self.id.get(), "Mutex", std::panic::Location::caller());
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            inner,
            #[cfg(lockcheck)]
            _held: held,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    #[cfg(lockcheck)]
    _held: lockcheck::Held,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn guards_release_on_drop() {
        let m = Mutex::new(0);
        for _ in 0..3 {
            *m.lock() += 1;
        }
        assert_eq!(m.into_inner(), 3);
        let l = RwLock::new(0);
        {
            let _a = l.read();
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 1);
    }
}
