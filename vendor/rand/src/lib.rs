//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the slice of the `rand` API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open and
//! inclusive integer ranges. The generator is SplitMix64 — deterministic,
//! seedable, and statistically plenty for test workload generation (it is
//! not, and does not need to be, cryptographic).

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`. Panics on an empty range, like `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Range types that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(1..60);
            assert!((1..60).contains(&x));
            let y: usize = rng.gen_range(3..=7);
            assert!((3..=7).contains(&y));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }
}
