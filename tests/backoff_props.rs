//! Property-based tests on the sanctioned retry backoff (csq-client's
//! `Backoff`): the delay schedule is a pure function of (seed, attempt),
//! its envelope is capped and monotone, and `sleep` never burns more than
//! the caller's remaining deadline budget. Regression seeds persist under
//! `proptest-regressions/backoff_props.txt`.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use csq_client::Backoff;
use csq_common::Deadline;

/// Envelope the implementation promises: `min(cap, base << attempt)`,
/// saturating. Every jittered delay lives in `[envelope/2, envelope)`.
fn envelope(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.min(20);
    base.checked_mul(factor).unwrap_or(cap).min(cap.max(base))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Same (base, cap, seed, attempt) → same delay, across separately
    // constructed Backoffs. Retries are replayable: a chaos schedule's
    // timing is fixed by its committed seed.
    #[test]
    fn delay_is_a_pure_function_of_seed_and_attempt(
        base_us in 1u64..50_000,
        cap_us in 1u64..2_000_000,
        seed in any::<u64>(),
        attempt in 0u32..64,
    ) {
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_micros(cap_us);
        let a = Backoff::new(base, cap, seed);
        let b = Backoff::new(base, cap, seed);
        prop_assert_eq!(a.delay(attempt), b.delay(attempt));
    }

    // Different attempts draw independent jitter, but always inside the
    // capped exponential envelope — no delay ever exceeds the cap, and
    // each sits in the equal-jitter band `[envelope/2, envelope]`.
    #[test]
    fn delay_stays_inside_the_capped_envelope(
        base_us in 1u64..50_000,
        cap_us in 1u64..2_000_000,
        seed in any::<u64>(),
        attempt in 0u32..64,
    ) {
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_micros(cap_us);
        let b = Backoff::new(base, cap, seed);
        let d = b.delay(attempt);
        let env = envelope(base, cap, attempt);
        prop_assert!(d <= b.cap(), "delay {d:?} exceeds cap {:?}", b.cap());
        prop_assert!(d <= env, "delay {d:?} exceeds envelope {env:?}");
        prop_assert!(d >= env / 2, "delay {d:?} below half-envelope {env:?}");
    }

    // The envelope is monotone non-decreasing in the attempt number and
    // pins to the cap once the exponential crosses it: late retries never
    // speed back up, and never wait more than one cap.
    #[test]
    fn envelope_is_monotone_then_pinned_at_cap(
        base_us in 1u64..10_000,
        cap_us in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_micros(cap_us);
        let b = Backoff::new(base, cap, seed);
        let mut prev = Duration::ZERO;
        for attempt in 0..40u32 {
            let env = envelope(base, cap, attempt);
            prop_assert!(env >= prev, "envelope shrank at attempt {attempt}");
            prev = env;
        }
        // Far past the crossover the band is exactly [cap/2, cap].
        let late = b.delay(63);
        prop_assert!(late >= b.cap() / 2 && late <= b.cap());
    }

    // `sleep` never spends more than the remaining deadline budget: when
    // the jittered delay does not fit, it returns `false` *without
    // sleeping*; when it fits, the elapsed wall-clock stays within the
    // budget. (Micro-scale durations keep the property fast.)
    #[test]
    fn sleep_never_exceeds_the_deadline_budget(
        base_us in 1u64..300,
        cap_us in 1u64..3_000,
        seed in any::<u64>(),
        attempt in 0u32..16,
        budget_us in 0u64..2_000,
    ) {
        let b = Backoff::new(
            Duration::from_micros(base_us),
            Duration::from_micros(cap_us),
            seed,
        );
        let budget = Duration::from_micros(budget_us);
        let dl = Deadline::from_timeout(budget);
        let start = Instant::now();
        let slept = b.sleep(attempt, Some(&dl));
        let elapsed = start.elapsed();
        if slept {
            // The delay fit the budget when checked; allow scheduler slop
            // on top of the budget itself.
            prop_assert!(
                elapsed <= budget + Duration::from_millis(50),
                "slept {elapsed:?} against a {budget:?} budget"
            );
        } else {
            // Refusal must be immediate — no partial burn of the budget.
            prop_assert!(
                elapsed < Duration::from_millis(50),
                "refusing sleep still waited {elapsed:?}"
            );
        }
        // Either way: a delay that never fit must be refused.
        if b.delay(attempt) >= budget {
            prop_assert!(!slept, "slept although delay >= whole budget");
        }
    }
}
