//! The threaded engine and the virtual-time engine must agree exactly:
//! same output rows, and — because both run the same client code and the
//! same wire encoding — the same number of bytes and messages on each link.

use std::sync::Arc;

use csq_client::synthetic::{ObjectUdf, PredicateUdf};
use csq_client::{spawn_client, ClientRuntime};
use csq_common::{Blob, DataType, Field, Row, Schema, Value};
use csq_exec::{collect, RowsOp};
use csq_expr::{BinaryOp, PhysExpr};
use csq_net::{in_memory_duplex, NetworkSpec};
use csq_ship::{
    simulate_client_join, simulate_naive, simulate_semijoin, ClientJoinSpec, NaiveRemoteUdf,
    SemiJoinSpec, ThreadedClientJoin, ThreadedSemiJoin, UdfApplication,
};

fn runtime() -> Arc<ClientRuntime> {
    let rt = ClientRuntime::new();
    rt.register(Arc::new(ObjectUdf::sized("Analyze", 150)))
        .unwrap();
    rt.register(Arc::new(PredicateUdf::new("Keep", 0.4)))
        .unwrap();
    Arc::new(rt)
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("Id", DataType::Int),
        Field::new("Arg", DataType::Blob),
        Field::new("Other", DataType::Blob),
    ])
}

fn rows(n: usize, distinct: usize, arg_size: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Blob(Blob::synthetic(arg_size, (i % distinct.max(1)) as u64)),
                Value::Blob(Blob::synthetic(60, 7_000 + i as u64)),
            ])
        })
        .collect()
}

fn analyze() -> UdfApplication {
    UdfApplication::new("Analyze", vec![1], Field::new("res", DataType::Blob))
}

/// Run the threaded semi-join and return (rows, down_bytes, up_bytes,
/// down_msgs, up_msgs).
fn threaded_sj(spec: SemiJoinSpec, data: Vec<Row>) -> (Vec<Row>, u64, u64, u64, u64) {
    let (server, client, stats) = in_memory_duplex();
    let handle = spawn_client(runtime(), client).unwrap();
    let input = Box::new(RowsOp::new(schema(), data));
    let mut op = ThreadedSemiJoin::new(input, spec, server).unwrap();
    let out = collect(&mut op).unwrap();
    drop(op);
    let _ = handle.join().unwrap();
    (
        out,
        stats.down_bytes(),
        stats.up_bytes(),
        stats.down_messages(),
        stats.up_messages(),
    )
}

#[test]
fn semijoin_bytes_match_between_backends() {
    for (n, distinct, batch) in [(30, 30, 1), (30, 5, 1), (24, 24, 4), (25, 7, 3)] {
        let data = rows(n, distinct, 120);
        let mut spec = SemiJoinSpec::new(vec![analyze()], 6);
        spec.batch_size = batch;
        let (t_rows, t_down, t_up, t_dm, t_um) = threaded_sj(spec.clone(), data.clone());
        let sim =
            simulate_semijoin(&schema(), data, &spec, runtime(), &NetworkSpec::lan()).unwrap();
        assert_eq!(t_rows, sim.rows, "rows (n={n}, d={distinct}, b={batch})");
        assert_eq!(t_down, sim.down_bytes, "down bytes");
        assert_eq!(t_up, sim.up_bytes, "up bytes");
        assert_eq!(t_dm, sim.down_messages, "down msgs");
        assert_eq!(t_um, sim.up_messages, "up msgs");
    }
}

#[test]
fn semijoin_sorted_bytes_match() {
    let data = rows(40, 8, 100);
    let mut spec = SemiJoinSpec::new(vec![analyze()], 5);
    spec.sorted = true;
    let (t_rows, t_down, t_up, _, _) = threaded_sj(spec.clone(), data.clone());
    let sim = simulate_semijoin(&schema(), data, &spec, runtime(), &NetworkSpec::lan()).unwrap();
    assert_eq!(t_rows, sim.rows);
    assert_eq!(t_down, sim.down_bytes);
    assert_eq!(t_up, sim.up_bytes);
}

#[test]
fn client_join_bytes_match_between_backends() {
    let keep = UdfApplication::new("Keep", vec![1], Field::new("keep", DataType::Bool));
    for batch in [1usize, 4] {
        let data = rows(32, 32, 90);
        let mut spec = ClientJoinSpec::new(vec![keep.clone()]);
        spec.batch_size = batch;
        spec.pushed_predicate = Some(PhysExpr::Binary {
            left: Box::new(PhysExpr::Column(3)),
            op: BinaryOp::Eq,
            right: Box::new(PhysExpr::Literal(Value::Bool(true))),
        });
        spec.return_cols = Some(vec![0, 3]);

        let (server, client, stats) = in_memory_duplex();
        let handle = spawn_client(runtime(), client).unwrap();
        let input = Box::new(RowsOp::new(schema(), data.clone()));
        let mut op = ThreadedClientJoin::new(input, spec.clone(), server).unwrap();
        let t_rows = collect(&mut op).unwrap();
        drop(op);
        let _ = handle.join().unwrap();

        let sim =
            simulate_client_join(&schema(), data, &spec, runtime(), &NetworkSpec::lan()).unwrap();
        assert_eq!(t_rows, sim.rows, "batch={batch}");
        assert_eq!(stats.down_bytes(), sim.down_bytes);
        assert_eq!(stats.up_bytes(), sim.up_bytes);
        assert_eq!(stats.down_messages(), sim.down_messages);
        assert_eq!(stats.up_messages(), sim.up_messages);
    }
}

#[test]
fn naive_bytes_match_between_backends() {
    let data = rows(20, 6, 80);
    let (server, client, stats) = in_memory_duplex();
    let handle = spawn_client(runtime(), client).unwrap();
    let input = Box::new(RowsOp::new(schema(), data.clone()));
    let mut op = NaiveRemoteUdf::new(input, vec![analyze()], server, true).unwrap();
    let t_rows = collect(&mut op).unwrap();
    drop(op);
    let _ = handle.join().unwrap();

    let spec = SemiJoinSpec::new(vec![analyze()], 1);
    let sim = simulate_naive(&schema(), data, &spec, runtime(), &NetworkSpec::lan()).unwrap();
    assert_eq!(t_rows, sim.rows);
    assert_eq!(stats.down_bytes(), sim.down_bytes);
    assert_eq!(stats.up_bytes(), sim.up_bytes);
    assert_eq!(stats.down_messages(), sim.down_messages);
    assert_eq!(stats.up_messages(), sim.up_messages);
}

#[test]
fn strategies_all_agree_under_randomized_workloads() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..10 {
        let n = rng.gen_range(1..60);
        let distinct = rng.gen_range(1..=n);
        let arg = rng.gen_range(1..300);
        let k = rng.gen_range(1..12);
        let batch = rng.gen_range(1..5);
        let data = rows(n, distinct, arg);

        let mut spec = SemiJoinSpec::new(vec![analyze()], k);
        spec.batch_size = batch;
        let sj = simulate_semijoin(
            &schema(),
            data.clone(),
            &spec,
            runtime(),
            &NetworkSpec::lan(),
        )
        .unwrap();
        let csj = simulate_client_join(
            &schema(),
            data.clone(),
            &ClientJoinSpec::new(vec![analyze()]),
            runtime(),
            &NetworkSpec::lan(),
        )
        .unwrap();
        let naive = simulate_naive(&schema(), data, &spec, runtime(), &NetworkSpec::lan()).unwrap();
        assert_eq!(sj.rows, csj.rows, "trial {trial}");
        assert_eq!(sj.rows, naive.rows, "trial {trial}");
        // The semi-join never ships more argument bytes than the client join
        // ships record bytes.
        assert!(sj.down_bytes <= csj.down_bytes, "trial {trial}");
    }
}
