//! End-to-end tests: the paper's queries through SQL → optimizer →
//! threaded execution → rows, and agreement with the virtual-time engine.

use std::sync::Arc;

use csq::prelude::*;
use csq_client::synthetic::{ObjectUdf, PredicateUdf, RatingUdf};
use csq_common::Blob;
use csq_storage::TableBuilder;

/// Build the paper's StockQuotes table: Name, Change, Close, Quotes (blob),
/// Report (blob).
fn stock_db(rows: usize) -> Database {
    let db = Database::new(NetworkSpec::modem_28_8());
    let mut b = TableBuilder::new("StockQuotes")
        .column("Name", DataType::Str)
        .column("Change", DataType::Float)
        .column("Close", DataType::Float)
        .column("Quotes", DataType::Blob)
        .column("Report", DataType::Blob);
    for i in 0..rows {
        b = b.row(vec![
            Value::from(format!("company{i}")),
            Value::Float((i % 40) as f64),
            Value::Float(100.0),
            Value::Blob(Blob::synthetic(200, i as u64)),
            Value::Blob(Blob::synthetic(120, 1000 + i as u64)),
        ]);
    }
    db.catalog().register(b.build().unwrap()).unwrap();
    db.register_udf(Arc::new(RatingUdf::new("ClientAnalysis", 1000)))
        .unwrap();
    db.register_udf(Arc::new(PredicateUdf::new("Screen", 0.5)))
        .unwrap();
    db.register_udf(Arc::new(ObjectUdf::sized_n("Volatility", 2, 64)))
        .unwrap();
    db
}

const FIG1: &str = "SELECT S.Name, S.Report \
                    FROM StockQuotes S \
                    WHERE S.Change / S.Close > 0.2 AND ClientAnalysis(S.Quotes) > 500";

#[test]
fn figure1_query_runs_end_to_end() {
    let db = stock_db(60);
    let out = db.execute(FIG1).unwrap();
    assert_eq!(out.schema.len(), 2);
    assert_eq!(out.schema.field(0).name, "S.Name");
    // Verify against a direct computation.
    let t = db.catalog().get("StockQuotes").unwrap();
    let rating = RatingUdf::new("x", 1000);
    use csq_client::ScalarUdf;
    let mut expected = 0;
    for r in t.snapshot() {
        let change = r.value(1).as_f64().unwrap();
        let close = r.value(2).as_f64().unwrap();
        let quote = r.value(3).clone();
        let rated = rating.invoke(&[quote]).unwrap().as_i64().unwrap();
        if change / close > 0.2 && rated > 500 {
            expected += 1;
        }
    }
    assert_eq!(out.rows.len(), expected);
    assert!(expected > 0, "workload must exercise both predicates");
}

#[test]
fn threaded_and_simulated_agree_on_rows() {
    let db = stock_db(40);
    let threaded = db.execute(FIG1).unwrap();
    let (simulated, summary) = db.execute_simulated(FIG1).unwrap();
    let norm = |mut rows: Vec<Row>| {
        rows.sort_by_key(|r| format!("{r}"));
        rows
    };
    assert_eq!(norm(threaded.rows), norm(simulated.rows));
    assert!(summary.elapsed_us > 0);
    assert!(summary.down_bytes > 0);
    assert!(summary.up_bytes > 0);
}

#[test]
fn explain_mentions_strategy_and_udf() {
    let db = stock_db(20);
    let plan = db.explain(FIG1).unwrap();
    assert!(plan.contains("ApplyUdf ClientAnalysis(S.Quotes)"), "{plan}");
    assert!(
        plan.contains("semi-join") || plan.contains("client-site join"),
        "{plan}"
    );
    assert!(plan.contains("cost:"), "{plan}");
}

#[test]
fn figure11_two_table_query() {
    let db = stock_db(25);
    // Estimations(CompanyName, BrokerName, Rating).
    let mut b = TableBuilder::new("Estimations")
        .column("CompanyName", DataType::Str)
        .column("BrokerName", DataType::Str)
        .column("Rating", DataType::Int);
    for i in 0..25 {
        for broker in 0..3 {
            b = b.row(vec![
                Value::from(format!("company{i}")),
                Value::from(format!("broker{broker}")),
                Value::Int((i * 37 + broker) as i64 % 1000),
            ]);
        }
    }
    db.catalog().register(b.build().unwrap()).unwrap();

    let sql = "SELECT S.Name, E.BrokerName \
               FROM StockQuotes S, Estimations E \
               WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating";
    let out = db.execute(sql).unwrap();

    // Reference computation.
    use csq_client::ScalarUdf;
    let rating = RatingUdf::new("x", 1000);
    let stocks = db.catalog().get("StockQuotes").unwrap().snapshot();
    let ests = db.catalog().get("Estimations").unwrap().snapshot();
    let mut expected = 0;
    for s in &stocks {
        let rated = rating
            .invoke(&[s.value(3).clone()])
            .unwrap()
            .as_i64()
            .unwrap();
        for e in &ests {
            if s.value(0) == e.value(0) && Value::Int(rated) == *e.value(2) {
                expected += 1;
            }
        }
    }
    assert_eq!(out.rows.len(), expected);
}

#[test]
fn multiple_udfs_in_one_query() {
    let db = stock_db(30);
    let sql = "SELECT S.Name, Volatility(S.Quotes, S.Report) \
               FROM StockQuotes S \
               WHERE ClientAnalysis(S.Quotes) > 300 AND Screen(S.Report)";
    let out = db.execute(sql).unwrap();
    // Sanity: the Volatility column is a 64-byte blob.
    for r in &out.rows {
        assert_eq!(r.value(1).as_blob().unwrap().len(), 64);
    }
    let (sim, summary) = db.execute_simulated(sql).unwrap();
    assert_eq!(sim.rows.len(), out.rows.len());
    assert!(summary.phases >= 2, "at least two client-site phases");
}

#[test]
fn select_star_and_projection_expressions() {
    let db = stock_db(5);
    let out = db
        .execute("SELECT *, S.Change / S.Close AS ratio FROM StockQuotes S")
        .unwrap();
    assert_eq!(out.schema.len(), 6);
    assert_eq!(out.rows.len(), 5);
    assert_eq!(out.schema.field(5).name, "ratio");
}

#[test]
fn ddl_dml_roundtrip_via_sql() {
    let db = Database::new(NetworkSpec::lan());
    db.execute("CREATE TABLE t (a INT, b STRING)").unwrap();
    let r = db
        .execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        .unwrap();
    assert_eq!(r.affected, 3);
    let out = db.execute("SELECT t.a FROM t t WHERE t.a >= 2").unwrap();
    assert_eq!(out.rows.len(), 2);
    // Errors: duplicate table, unknown table, type mismatch.
    assert!(db.execute("CREATE TABLE t (x INT)").is_err());
    assert!(db.execute("INSERT INTO missing VALUES (1)").is_err());
    assert!(db.execute("INSERT INTO t VALUES ('nope', 'y')").is_err());
}

#[test]
fn client_failure_surfaces_as_error() {
    let db = stock_db(10);
    // Screen expects a blob; call it on a float column → client error.
    let err = db
        .execute("SELECT S.Name FROM StockQuotes S WHERE Screen(S.Close)")
        .unwrap_err();
    assert_eq!(err.kind(), "client", "{err}");
}

#[test]
fn script_execution() {
    let db = Database::new(NetworkSpec::lan());
    let out = db
        .execute_script(
            "CREATE TABLE s (v INT); \
             INSERT INTO s VALUES (10), (20), (30); \
             SELECT s.v FROM s s WHERE s.v > 15;",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
}

/// The EXPLAIN surface of zone-map pruning (DESIGN.md §11): a selective
/// range predicate over a clustered key must report most sealed segments
/// pruned, and the query must still return exactly the matching rows.
#[test]
fn explain_reports_segment_pruning_on_selective_scan() {
    let db = Database::new(NetworkSpec::lan());
    db.execute("CREATE TABLE M (K INT, V INT)").unwrap();
    let values: Vec<String> = (0..20_000).map(|i| format!("({i}, {})", i % 97)).collect();
    db.execute(&format!("INSERT INTO M VALUES {}", values.join(", ")))
        .unwrap();

    let plan = db.explain("SELECT M.V FROM M WHERE M.K > 19000").unwrap();
    assert!(plan.contains("pruned"), "no pruning annotation in:\n{plan}");

    let out = db.execute("SELECT M.V FROM M WHERE M.K > 19000").unwrap();
    assert_eq!(out.rows.len(), 999);
}
