//! Differential oracle for the columnar storage layer (DESIGN.md §11):
//! zone-map pruning and operator spilling are *performance* features, so
//! every path here is checked against an independent reference that never
//! prunes and never spills.
//!
//! * Pruned columnar scans ([`ColumnarScan`] compiled from a [`FilterSpec`])
//!   must return exactly what a row-at-a-time [`Filter`] over the table's
//!   row-vector [`Table::snapshot`] returns — including all-NULL columns,
//!   constant columns, NULL literals, and predicates on unordered (mixed
//!   lane) columns.
//! * [`HashAggregate`] and [`HashJoin`] under a deliberately tiny
//!   [`MemoryTracker`] budget (forcing partition spills on nearly every
//!   batch) must produce the same row multisets as the unbudgeted in-memory
//!   operators.
//!
//! Failing seeds persist under `proptest-regressions/` via the vendored
//! proptest shim and replay on every `cargo test`.

use std::sync::Arc;

use proptest::prelude::*;

use csq_common::{DataType, Field, Row, Schema, Value};
use csq_exec::ops::{ColumnarScan, Filter, RowsOp};
use csq_exec::{collect, AggSpec, HashAggregate, HashJoin, MemoryTracker};
use csq_expr::{AggFunc, BinaryOp, PhysExpr};
use csq_storage::{FilterSpec, Table};

fn col(i: usize) -> PhysExpr {
    PhysExpr::Column(i)
}

fn lit(v: Value) -> PhysExpr {
    PhysExpr::Literal(v)
}

fn bin(left: PhysExpr, op: BinaryOp, right: PhysExpr) -> PhysExpr {
    PhysExpr::Binary {
        left: Box::new(left),
        op,
        right: Box::new(right),
    }
}

fn scan_schema() -> Schema {
    Schema::new(vec![
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Str),
        Field::new("b", DataType::Bool),
    ])
}

/// Values skewed toward zone-map edge cases: heavy NULL rates, narrow
/// ranges (so whole segments go constant), and the occasional stray Int in
/// the float column to force the `Values` fallback lane + unordered zones.
fn arb_scan_row() -> impl Strategy<Value = Row> {
    (
        prop_oneof![
            (-20i64..20).prop_map(Value::Int),
            (-20i64..20).prop_map(Value::Int),
            Just(Value::Int(7)),
            Just(Value::Null),
            Just(Value::Null),
        ],
        prop_oneof![
            (-8i64..8).prop_map(|i| Value::Float(i as f64 * 0.5)),
            (-8i64..8).prop_map(|i| Value::Float(i as f64 * 0.5)),
            Just(Value::Int(3)),
            Just(Value::Null),
        ],
        prop_oneof![
            (0usize..4).prop_map(|k| Value::from(["a", "bb", "ccc", "dd"][k])),
            (0usize..4).prop_map(|k| Value::from(["a", "bb", "ccc", "dd"][k])),
            Just(Value::Null),
        ],
        prop_oneof![
            any::<bool>().prop_map(Value::Bool),
            any::<bool>().prop_map(Value::Bool),
            Just(Value::Null),
        ],
    )
        .prop_map(|(a, b, c, d)| Row::new(vec![a, b, c, d]))
}

/// One pushable conjunct: `column <cmp> literal`, sometimes with a NULL or
/// cross-type literal to exercise the opaque/unknown classifications.
fn arb_conjunct() -> impl Strategy<Value = PhysExpr> {
    let cmp = prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
    ];
    let literal = prop_oneof![
        (-20i64..20).prop_map(Value::Int),
        (-20i64..20).prop_map(Value::Int),
        (-20i64..20).prop_map(Value::Int),
        (-8i64..8).prop_map(|i| Value::Float(i as f64 * 0.5)),
        (0usize..4).prop_map(|k| Value::from(["a", "bb", "ccc", "dd"][k])),
        Just(Value::Null),
    ];
    (0usize..4, cmp, literal).prop_map(|(c, op, v)| bin(col(c), op, lit(v)))
}

fn and_chain(mut conjuncts: Vec<PhysExpr>) -> PhysExpr {
    let mut e = conjuncts.pop().expect("nonempty");
    while let Some(c) = conjuncts.pop() {
        e = bin(c, BinaryOp::And, e);
    }
    e
}

fn build_table(rows: &[Row], segment_rows: usize) -> Arc<Table> {
    let t = Table::with_segment_rows("t", scan_schema(), segment_rows).unwrap();
    t.insert_all(rows.to_vec()).unwrap();
    Arc::new(t)
}

/// The differential: pruned columnar scan + residual filter versus a
/// row-at-a-time filter over the row-vector snapshot. Errors must agree in
/// kind (cross-type comparisons are type errors on both paths); successes
/// must agree on the exact row sequence, not just the multiset.
fn assert_scan_equivalent(rows: &[Row], segment_rows: usize, pred: &PhysExpr) {
    let table = build_table(rows, segment_rows);
    let spec = FilterSpec::from_phys(pred);

    let scan = ColumnarScan::new(&table, "t", spec.as_ref()).unwrap();
    let columnar = collect(&mut Filter::new(Box::new(scan), pred.clone()));

    let oracle_src = RowsOp::new(scan_schema().qualify("t"), table.snapshot());
    let oracle = collect(&mut Filter::new(Box::new(oracle_src), pred.clone()));

    match (columnar, oracle) {
        (Ok(c), Ok(o)) => assert_eq!(c, o, "pruned scan diverged from snapshot oracle"),
        (Err(c), Err(o)) => assert_eq!(c.kind(), o.kind(), "error kinds diverged"),
        (c, o) => panic!("one path errored, the other did not: {c:?} vs {o:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn pruned_scan_matches_row_oracle(
        rows in prop::collection::vec(arb_scan_row(), 0..300),
        segment_rows in prop_oneof![Just(7usize), Just(32), Just(64)],
        conjuncts in prop::collection::vec(arb_conjunct(), 1..4),
    ) {
        assert_scan_equivalent(&rows, segment_rows, &and_chain(conjuncts));
    }

    #[test]
    fn spilling_aggregate_matches_in_memory_aggregate(
        rows in prop::collection::vec(arb_scan_row(), 0..200),
    ) {
        let schema = scan_schema();
        let aggs = || vec![
            AggSpec::new(AggFunc::Count, None, "n"),
            AggSpec::new(AggFunc::Sum, Some(col(0)), "si"),
            AggSpec::new(AggFunc::Min, Some(col(2)), "ms"),
        ];
        let src = || Box::new(RowsOp::new(schema.clone(), rows.clone()));

        let mut plain = HashAggregate::new(src(), vec![2, 3], aggs());
        let reference = collect(&mut plain);

        let tracker = MemoryTracker::new(0); // spill on every batch boundary
        let mut spilling =
            HashAggregate::new(src(), vec![2, 3], aggs()).with_memory(tracker);
        let spilled = collect(&mut spilling);

        match (reference, spilled) {
            (Ok(a), Ok(b)) => {
                let mut a: Vec<String> = a.iter().map(|r| format!("{r}")).collect();
                let mut b: Vec<String> = b.iter().map(|r| format!("{r}")).collect();
                a.sort();
                b.sort();
                prop_assert_eq!(a, b);
                if !rows.is_empty() {
                    prop_assert!(spilling.spill_events() > 0, "budget 0 must force a spill");
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.kind(), b.kind()),
            (a, b) => panic!("one engine errored, the other did not: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn grace_join_matches_in_memory_join(
        left in prop::collection::vec(arb_scan_row(), 0..150),
        right in prop::collection::vec(arb_scan_row(), 0..150),
    ) {
        let schema = scan_schema();
        let mk = |rows: &[Row]| Box::new(RowsOp::new(schema.clone(), rows.to_vec()));

        let mut plain = HashJoin::new(mk(&left), mk(&right), vec![0], vec![0]);
        let reference = collect(&mut plain).unwrap();

        let tracker = MemoryTracker::new(0);
        let mut grace =
            HashJoin::new(mk(&left), mk(&right), vec![0], vec![0]).with_memory(tracker);
        let spilled = collect(&mut grace).unwrap();

        let mut a: Vec<String> = reference.iter().map(|r| format!("{r}")).collect();
        let mut b: Vec<String> = spilled.iter().map(|r| format!("{r}")).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        if !right.is_empty() {
            prop_assert!(grace.spill_events() > 0, "budget 0 must force a grace spill");
        }
    }
}

/// Deterministic edge cases the strategies only hit probabilistically.
mod pinned {
    use super::*;

    #[test]
    fn all_null_column_prunes_comparisons_but_survives_not_null_filters() {
        let rows: Vec<Row> = (0..64)
            .map(|i| {
                Row::new(vec![
                    Value::Null,
                    Value::Float(i as f64),
                    Value::Null,
                    Value::Null,
                ])
            })
            .collect();
        // `i > 5` is UNKNOWN on every row of an all-NULL column: zero rows
        // either way, and with the complete-spec rule every segment prunes.
        let pred = bin(col(0), BinaryOp::Gt, lit(Value::Int(5)));
        assert_scan_equivalent(&rows, 16, &pred);

        let table = build_table(&rows, 16);
        let spec = FilterSpec::from_phys(&pred).unwrap();
        let stats = table.prune_stats(Some(&spec));
        assert_eq!(
            stats.segments_pruned, stats.segments_total,
            "all-NULL column must prune every sealed segment"
        );
    }

    #[test]
    fn constant_column_prunes_inequality_and_keeps_equality() {
        let rows: Vec<Row> = (0..64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(42),
                    Value::Float(i as f64),
                    Value::Null,
                    Value::Null,
                ])
            })
            .collect();
        for (pred, expect_rows) in [
            (bin(col(0), BinaryOp::NotEq, lit(Value::Int(42))), 0usize),
            (bin(col(0), BinaryOp::Eq, lit(Value::Int(42))), 64),
            (bin(col(0), BinaryOp::Eq, lit(Value::Int(41))), 0),
        ] {
            assert_scan_equivalent(&rows, 16, &pred);
            let table = build_table(&rows, 16);
            let spec = FilterSpec::from_phys(&pred);
            let scan = ColumnarScan::new(&table, "t", spec.as_ref()).unwrap();
            let got = collect(&mut Filter::new(Box::new(scan), pred.clone())).unwrap();
            assert_eq!(got.len(), expect_rows);
        }
    }

    /// The acceptance workload: an aggregation whose state exceeds a 64 MiB
    /// budget must complete by spilling and still match an independently
    /// computed answer exactly.
    #[test]
    fn forced_spill_aggregate_at_64mib_budget_is_oracle_exact() {
        const GROUPS: usize = 70_000;
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ]);
        // ~1 KiB keys x 70k distinct groups ≈ 76 MB of tracked state.
        let rows: Vec<Row> = (0..GROUPS)
            .map(|i| {
                Row::new(vec![
                    Value::from(format!("{i:0>1024}")),
                    Value::Int(i as i64),
                ])
            })
            .collect();

        let tracker = MemoryTracker::new(64 * 1024 * 1024);
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(schema, rows)),
            vec![0],
            vec![
                AggSpec::new(AggFunc::Sum, Some(col(1)), "s"),
                AggSpec::new(AggFunc::Count, None, "n"),
            ],
        )
        .with_memory(tracker.clone());
        let out = collect(&mut agg).unwrap();

        assert!(
            agg.spill_events() > 0,
            "workload must exceed the 64 MiB budget"
        );
        assert!(tracker.spill_count() > 0);
        assert_eq!(out.len(), GROUPS);
        for r in &out {
            let Value::Str(k) = r.value(0) else {
                panic!("key column must be a string")
            };
            let i: i64 = k.as_str().trim_start_matches('0').parse().unwrap_or(0);
            assert_eq!(r.value(1), &Value::Int(i), "SUM for group {i}");
            assert_eq!(r.value(2), &Value::Int(1), "COUNT for group {i}");
        }
    }
}
