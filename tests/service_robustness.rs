//! Robustness suite for the socket-backed query service (DESIGN.md §12):
//! protocol abuse (garbage/truncated/oversized frames), client disconnects
//! mid-result-stream, server error propagation, admission backpressure,
//! plan-cache invalidation on UDF re-registration, graceful shutdown,
//! connection-storm and high-connection soaks, and scheduler fairness
//! under a flooding client. This file is the CI `service-soak` gate — it
//! runs in release mode on every push so connection/disconnect races get
//! real scheduler pressure.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use csq::prelude::*;
use csq_client::synthetic::ObjectUdf;
use csq_client::QueryResponse;
use csq_common::Blob;
use csq_core::service;
use csq_net::TcpConn;
use csq_storage::TableBuilder;

fn demo_db(rows: usize) -> Arc<Database> {
    let db = Database::new(NetworkSpec::lan());
    let mut b = TableBuilder::new("R")
        .column("Id", DataType::Int)
        .column("Grp", DataType::Int)
        .column("Obj", DataType::Blob);
    for i in 0..rows {
        b = b.row(vec![
            Value::Int(i as i64),
            Value::Int((i % 7) as i64),
            Value::Blob(Blob::synthetic(40, i as u64)),
        ]);
    }
    db.catalog().register(b.build().unwrap()).unwrap();
    db.register_udf(Arc::new(ObjectUdf::sized("Enrich", 16)))
        .unwrap();
    Arc::new(db)
}

fn small_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        max_sessions: 8,
        idle_timeout: Duration::from_millis(20),
        ..ServiceConfig::default()
    }
}

fn start(db: &Arc<Database>, config: ServiceConfig) -> ServiceHandle {
    service::start(db.clone(), config).expect("service must start on loopback")
}

const COUNT_SQL: &str = "SELECT count(*) FROM R R";
const FILTER_SQL: &str = "SELECT R.Id FROM R R WHERE R.Id > 10";

/// Retry a connect+query until the server has capacity again (admission
/// rejections surface as `limit` errors).
fn query_with_retry(addr: SocketAddr, sql: &str, deadline: Duration) -> csq_client::RemoteResult {
    let start = Instant::now();
    loop {
        let attempt = ServiceConn::connect(addr).and_then(|mut c| {
            let out = c.query(sql);
            c.close();
            out
        });
        match attempt {
            Ok(r) => return r,
            Err(e) => {
                assert!(
                    start.elapsed() < deadline,
                    "query did not succeed before deadline; last error: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[test]
fn query_roundtrip_matches_in_process_engine() {
    let db = demo_db(100);
    let handle = start(&db, small_config());
    let mut conn = ServiceConn::connect(handle.local_addr()).unwrap();

    let served = conn.query(FILTER_SQL).unwrap();
    let local = db.execute(FILTER_SQL).unwrap();
    assert_eq!(served.rows, local.rows);
    assert_eq!(
        served.columns,
        local
            .schema
            .fields()
            .iter()
            .map(|f| f.display_name())
            .collect::<Vec<_>>()
    );

    // Second run of the same SQL is a plan-cache hit (no parse/optimize).
    let again = conn.query(FILTER_SQL).unwrap();
    assert!(again.plan_cache_hit, "repeat query must reuse the plan");
    assert_eq!(again.rows, served.rows);

    // Wire accounting is live on both sides of the socket.
    assert!(conn.stats().up_bytes() > 0 && conn.stats().down_bytes() > 0);
    assert!(handle.net_stats().up_bytes() > 0 && handle.net_stats().down_bytes() > 0);
    conn.close();
    handle.shutdown();
}

#[test]
fn udf_query_over_sockets_matches_in_process_engine() {
    // The full shipping pipeline (server → client-site UDF → server) runs
    // inside a session; its results must come back unchanged over TCP.
    let db = demo_db(60);
    let handle = start(&db, small_config());
    let sql = "SELECT R.Id, Enrich(R.Obj) FROM R R WHERE R.Id < 20";
    let served = query_with_retry(handle.local_addr(), sql, Duration::from_secs(10));
    let local = db.execute(sql).unwrap();
    assert_eq!(served.rows, local.rows);
    assert!(!served.rows.is_empty());
    handle.shutdown();
}

#[test]
fn server_errors_propagate_with_kinds_and_session_survives() {
    let db = demo_db(30);
    let handle = start(&db, small_config());
    let mut conn = ServiceConn::connect(handle.local_addr()).unwrap();

    for (sql, expect_kind) in [
        ("SELEC nope", "parse"),
        ("SELECT M.Id FROM Missing M", "catalog"),
        ("SELECT R.Id FROM R R GROUP BY", "parse"),
    ] {
        let remote = conn.query(sql).unwrap_err();
        let local = db.execute(sql).unwrap_err();
        assert_eq!(remote.kind(), local.kind(), "kind mismatch for {sql}");
        assert_eq!(remote.kind(), expect_kind, "unexpected kind for {sql}");
        assert!(
            !conn.is_broken(),
            "query errors must not poison the session"
        );
    }
    // The same session keeps working after every failure.
    let ok = conn.query(COUNT_SQL).unwrap();
    assert_eq!(ok.rows[0].value(0), &Value::Int(30));
    assert_eq!(handle.stats().queries_failed.load(Ordering::Relaxed), 3);
    conn.close();
    handle.shutdown();
}

#[test]
fn garbage_frame_gets_codec_error_and_other_sessions_continue() {
    let db = demo_db(30);
    let handle = start(&db, small_config());

    let raw = TcpConn::connect(handle.local_addr()).unwrap();
    raw.send(&[0x99, 0x42, 0x07]).unwrap();
    let csq_net::Frame::Payload(resp) = raw.recv().unwrap() else {
        panic!("expected an error response frame");
    };
    let QueryResponse::Error { kind, fatal, .. } = QueryResponse::decode(&resp).unwrap() else {
        panic!("expected an Error response");
    };
    assert_eq!(kind, "codec");
    assert!(fatal, "protocol faults close the session");

    // The process and other sessions are unaffected.
    let ok = query_with_retry(handle.local_addr(), COUNT_SQL, Duration::from_secs(10));
    assert_eq!(ok.rows[0].value(0), &Value::Int(30));
    assert!(handle.stats().protocol_errors.load(Ordering::Relaxed) >= 1);
    handle.shutdown();
}

#[test]
fn truncated_frame_only_kills_its_own_session() {
    let db = demo_db(30);
    let handle = start(&db, small_config());

    {
        let mut raw = TcpStream::connect(handle.local_addr()).unwrap();
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        // Die mid-frame.
    }
    let ok = query_with_retry(handle.local_addr(), COUNT_SQL, Duration::from_secs(10));
    assert_eq!(ok.rows[0].value(0), &Value::Int(30));
    handle.shutdown();
}

#[test]
fn oversized_frame_is_refused_before_allocation() {
    let db = demo_db(30);
    let handle = start(
        &db,
        ServiceConfig {
            max_frame: 4096,
            ..small_config()
        },
    );

    let mut raw = TcpStream::connect(handle.local_addr()).unwrap();
    // Claim a 1 GiB frame; the server must refuse from the header alone.
    raw.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let reader = TcpConn::new(raw.try_clone().unwrap()).unwrap();
    let csq_net::Frame::Payload(resp) = reader.recv().unwrap() else {
        panic!("expected an error response frame");
    };
    let QueryResponse::Error {
        kind,
        message,
        fatal,
        ..
    } = QueryResponse::decode(&resp).unwrap()
    else {
        panic!("expected an Error response");
    };
    assert_eq!(kind, "codec");
    assert!(fatal, "oversized frames close the session");
    assert!(message.contains("exceeds"), "{message}");

    let ok = query_with_retry(handle.local_addr(), COUNT_SQL, Duration::from_secs(10));
    assert_eq!(ok.rows[0].value(0), &Value::Int(30));
    handle.shutdown();
}

#[test]
fn client_disconnect_mid_result_stream_is_isolated() {
    let db = demo_db(5_000);
    let handle = start(
        &db,
        ServiceConfig {
            chunk_rows: 64, // many frames per result: plenty of mid-stream window
            ..small_config()
        },
    );

    for _ in 0..3 {
        let conn = TcpConn::connect(handle.local_addr()).unwrap();
        conn.send(
            &csq_client::QueryRequest::Query {
                sql: "SELECT R.Id, R.Obj FROM R R".into(),
                deadline_ms: 0,
            }
            .encode(),
        )
        .unwrap();
        // Read just the Begin header, then vanish mid-stream.
        let csq_net::Frame::Payload(_) = conn.recv().unwrap() else {
            panic!("expected Begin frame");
        };
        conn.shutdown();
        drop(conn);
    }

    let ok = query_with_retry(handle.local_addr(), COUNT_SQL, Duration::from_secs(10));
    assert_eq!(ok.rows[0].value(0), &Value::Int(5_000));
    handle.shutdown();
}

#[test]
fn admission_bound_rejects_with_limit_error_and_recovers() {
    let db = demo_db(20);
    let handle = start(
        &db,
        ServiceConfig {
            workers: 1,
            max_sessions: 2,
            idle_timeout: Duration::from_millis(20),
            ..ServiceConfig::default()
        },
    );

    // Fill the admission budget with two idle sessions (the first is
    // running on the lone worker, the second waits in the queue).
    let mut held1 = ServiceConn::connect(handle.local_addr()).unwrap();
    held1.query(COUNT_SQL).unwrap();
    let held2 = ServiceConn::connect(handle.local_addr()).unwrap();
    // Give the accept loop time to admit the second session.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().accepted.load(Ordering::Relaxed) < 2 {
        assert!(Instant::now() < deadline, "second session never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The third connection must be refused, loudly and typed.
    let mut refused = ServiceConn::connect(handle.local_addr()).unwrap();
    let err = refused.query(COUNT_SQL).unwrap_err();
    assert_eq!(err.kind(), "limit");
    assert!(err.message().contains("capacity"), "{err}");
    assert!(
        refused.is_broken(),
        "a refused connection is closing server-side and must not be pooled/reused"
    );
    assert!(handle.stats().rejected.load(Ordering::Relaxed) >= 1);

    // Freeing a session restores capacity.
    held1.close();
    held2.close();
    let ok = query_with_retry(handle.local_addr(), COUNT_SQL, Duration::from_secs(10));
    assert_eq!(ok.rows[0].value(0), &Value::Int(20));
    handle.shutdown();
}

#[test]
fn plan_cache_invalidated_on_udf_reregistration() {
    let db = demo_db(40);
    let handle = start(&db, small_config());
    let sql = "SELECT R.Id, Enrich(R.Obj) FROM R R WHERE R.Id < 8";
    let mut conn = ServiceConn::connect(handle.local_addr()).unwrap();

    let (stmt, first_hit) = conn.prepare(sql).unwrap();
    assert!(!first_hit, "first prepare must plan");
    let before = conn.execute(stmt).unwrap();
    assert!(before.plan_cache_hit, "prepared execution reuses its plan");
    for r in &before.rows {
        assert_eq!(r.value(1).as_blob().unwrap().len(), 16);
    }

    // Roll out Enrich v2 (bigger results). The epoch bump must invalidate
    // the pinned plan: the next execution replans and sees v2.
    db.reregister_udf(Arc::new(ObjectUdf::sized("Enrich", 48)))
        .unwrap();
    let stale_before = db.plan_cache_stats().stale_replans;
    let after = conn.execute(stmt).unwrap();
    assert!(
        !after.plan_cache_hit,
        "stale plan must be replanned after UDF re-registration"
    );
    for r in &after.rows {
        assert_eq!(r.value(1).as_blob().unwrap().len(), 48);
    }
    assert!(db.plan_cache_stats().stale_replans > stale_before);

    // And the re-plan is itself cached again.
    let third = conn.execute(stmt).unwrap();
    assert!(third.plan_cache_hit);
    conn.close();
    handle.shutdown();
}

#[test]
fn prepared_statements_per_session_are_bounded() {
    // One session may pin at most a fixed number of prepared plans; past
    // that, Prepare answers a survivable `limit` error instead of letting
    // a leaky client grow server memory without bound.
    let db = demo_db(10);
    let handle = start(&db, small_config());
    let mut conn = ServiceConn::connect(handle.local_addr()).unwrap();
    let mut handles = Vec::new();
    let mut cap_err = None;
    for i in 0..2_000 {
        // Distinct SQL per statement so each prepare really pins a plan.
        match conn.prepare(&format!("SELECT R.Id FROM R R WHERE R.Id > {i}")) {
            Ok((h, _)) => handles.push(h),
            Err(e) => {
                cap_err = Some(e);
                break;
            }
        }
    }
    let err = cap_err.expect("the prepared-statement cap must trip");
    assert_eq!(err.kind(), "limit");
    assert!(
        handles.len() >= 64,
        "cap unexpectedly small: tripped at {}",
        handles.len()
    );
    assert!(
        !conn.is_broken(),
        "hitting the prepare cap must not poison the session"
    );
    // The session still serves queries and existing prepared statements.
    let ok = conn.query(COUNT_SQL).unwrap();
    assert_eq!(ok.rows[0].value(0), &Value::Int(10));
    let ok = conn.execute(handles[0]).unwrap();
    assert_eq!(ok.rows.len(), 9);
    // Releasing a pin (fire-and-forget CloseStmt) frees a slot: the next
    // prepare succeeds again on the same session.
    conn.close_statement(handles.pop().unwrap()).unwrap();
    conn.prepare(COUNT_SQL)
        .expect("a released slot must be reusable");
    conn.close();
    handle.shutdown();
}

#[test]
fn slowloris_partial_frame_cannot_pin_a_worker() {
    // A client that starts a frame and goes silent (socket held open) must
    // be timed out by the stall detector — other clients keep being
    // served, and shutdown does not hang.
    let db = demo_db(25);
    let handle = start(
        &db,
        ServiceConfig {
            workers: 1,
            max_sessions: 4,
            idle_timeout: Duration::from_millis(30),
            ..ServiceConfig::default()
        },
    );

    let mut slow = TcpStream::connect(handle.local_addr()).unwrap();
    slow.write_all(&128u32.to_le_bytes()).unwrap(); // frame never completed
    slow.flush().unwrap();

    // The stalled session never blocks anyone: the lone worker keeps
    // serving other clients while the stall clock runs.
    let ok = query_with_retry(handle.local_addr(), COUNT_SQL, Duration::from_secs(10));
    assert_eq!(ok.rows[0].value(0), &Value::Int(25));
    // The scheduler cuts the stalled session off (asynchronously to the
    // query above, so wait for the counter rather than asserting it).
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().protocol_errors.load(Ordering::Relaxed) < 1 {
        assert!(Instant::now() < deadline, "stall detector never fired");
        std::thread::sleep(Duration::from_millis(10));
    }

    let begun = Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(5),
        "shutdown must not hang on a stalled session"
    );
    drop(slow);
}

#[test]
fn client_that_stops_reading_cannot_pin_a_worker() {
    // The write-side slowloris: request a result far larger than the
    // loopback socket buffers, read nothing, and hold the socket open.
    // The session's sends must trip the write timeout, freeing the worker
    // for other clients and keeping shutdown prompt.
    let db = {
        let db = Database::new(NetworkSpec::lan());
        let mut b = TableBuilder::new("R")
            .column("Id", DataType::Int)
            .column("Obj", DataType::Blob);
        for i in 0..20_000 {
            b = b.row(vec![
                Value::Int(i as i64),
                Value::Blob(Blob::synthetic(600, i as u64)),
            ]);
        }
        db.catalog().register(b.build().unwrap()).unwrap();
        Arc::new(db)
    };
    let handle = start(
        &db,
        ServiceConfig {
            workers: 1, // the worker the unread stream would pin
            max_sessions: 4,
            idle_timeout: Duration::from_millis(30),
            write_timeout: Duration::from_millis(200),
            ..ServiceConfig::default()
        },
    );

    // ~12 MB result; we send the query and then never read a byte.
    let greedy = TcpConn::connect(handle.local_addr()).unwrap();
    greedy
        .send(
            &csq_client::QueryRequest::Query {
                sql: "SELECT R.Id, R.Obj FROM R R".into(),
                deadline_ms: 0,
            }
            .encode(),
        )
        .unwrap();

    let ok = query_with_retry(
        handle.local_addr(),
        "SELECT count(*) FROM R R",
        Duration::from_secs(15),
    );
    assert_eq!(ok.rows[0].value(0), &Value::Int(20_000));

    let begun = Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(5),
        "shutdown must not hang on a write-stalled session"
    );
    drop(greedy);
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let db = demo_db(20);
    let handle = start(&db, small_config());
    let addr = handle.local_addr();

    let mut conn = ServiceConn::connect(addr).unwrap();
    conn.query(COUNT_SQL).unwrap();

    // Shutdown with an idle session open: it must drain promptly (the
    // session notices on its idle tick) rather than hang the join.
    let begun = Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(5),
        "shutdown must not hang on idle sessions"
    );

    // The idle session was told the server is going away (or the socket
    // closed under it); either way the next use fails.
    assert!(conn.query(COUNT_SQL).is_err());
    // And nothing is listening anymore.
    let post = ServiceConn::connect(addr).and_then(|mut c| c.query(COUNT_SQL));
    assert!(post.is_err(), "listener must be closed after shutdown");
}

#[test]
fn connection_pool_shares_few_connections_among_many_threads() {
    let db = demo_db(50);
    let handle = start(&db, small_config());
    let pool = Arc::new(ConnectionPool::new(handle.local_addr(), 2).unwrap());

    let threads: Vec<_> = (0..6)
        .map(|_| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let mut conn = pool.get().unwrap();
                    let out = conn.query(COUNT_SQL).unwrap();
                    assert_eq!(out.rows[0].value(0), &Value::Int(50));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // At most two sessions ever existed for 60 queries.
    assert!(handle.stats().accepted.load(Ordering::Relaxed) <= 2);
    handle.shutdown();
}

#[test]
fn connection_storm_soak() {
    // The soak: many short-lived clients, some hostile, hammering a small
    // service. Every well-formed query must either succeed or be refused
    // with a typed `limit` error; the server must stay serviceable and
    // shut down cleanly afterwards.
    let db = demo_db(200);
    let handle = start(
        &db,
        ServiceConfig {
            workers: 4,
            max_sessions: 12,
            idle_timeout: Duration::from_millis(20),
            ..ServiceConfig::default()
        },
    );
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut refused = 0u64;
                for i in 0..25 {
                    if (t + i) % 5 == 0 {
                        // Hostile client: garbage or a mid-frame hangup.
                        if let Ok(mut raw) = TcpStream::connect(addr) {
                            if i % 2 == 0 {
                                let _ = raw.write_all(&9u32.to_le_bytes());
                                let _ = raw.write_all(&[0xAB; 9]);
                            } else {
                                let _ = raw.write_all(&64u32.to_le_bytes());
                                let _ = raw.write_all(&[0xCD; 5]);
                            }
                        }
                        continue;
                    }
                    let outcome = ServiceConn::connect(addr).and_then(|mut c| {
                        let sql = if i % 3 == 0 { COUNT_SQL } else { FILTER_SQL };
                        let out = c.query(sql);
                        c.close();
                        out
                    });
                    match outcome {
                        Ok(_) => ok += 1,
                        Err(e) if e.kind() == "limit" => refused += 1,
                        Err(e) => panic!("storm query failed unexpectedly: {e}"),
                    }
                }
                (ok, refused)
            })
        })
        .collect();

    let mut total_ok = 0;
    for t in threads {
        let (ok, _refused) = t.join().unwrap();
        total_ok += ok;
    }
    assert!(total_ok > 0, "the storm must land some queries");
    // The server is still healthy after the storm.
    let after = query_with_retry(addr, COUNT_SQL, Duration::from_secs(10));
    assert_eq!(after.rows[0].value(0), &Value::Int(200));
    assert!(handle.stats().queries_ok.load(Ordering::Relaxed) >= total_ok);
    handle.shutdown();
}

#[test]
fn thousand_idle_connections_park_flat_and_shut_down_promptly() {
    // The high-connection soak: 1k idle connections must all be admitted
    // on a handful of workers (connections no longer pin workers), cost
    // ~one receive buffer each while parked (the RSS proxy), leave the
    // service fully responsive, and not hang shutdown.
    let db = demo_db(50);
    let handle = start(
        &db,
        ServiceConfig {
            workers: 4,
            max_sessions: 1200,
            ..ServiceConfig::default()
        },
    );
    let addr = handle.local_addr();

    let mut idle = Vec::with_capacity(1_000);
    let deadline = Instant::now() + Duration::from_secs(30);
    while idle.len() < 1_000 {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(e) => {
                // Listener backlog overflow under the burst; give the
                // accept loop a beat and retry.
                assert!(Instant::now() < deadline, "connect storm stalled: {e}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.stats().accepted.load(Ordering::Relaxed) < 1_000 {
        assert!(
            Instant::now() < deadline,
            "only {} of 1000 idle connections admitted",
            handle.stats().accepted.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        handle.stats().rejected.load(Ordering::Relaxed),
        0,
        "no idle connection may be refused below max_sessions"
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    let sched = handle.scheduler_stats();
    while sched.parked_sessions.load(Ordering::Relaxed) < 1_000 {
        assert!(
            Instant::now() < deadline,
            "sessions never reached the scheduler"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Still fully serviceable through the parked crowd, and traffic does
    // not inflate the parked-session memory bill.
    for _ in 0..25 {
        let ok = query_with_retry(addr, COUNT_SQL, Duration::from_secs(10));
        assert_eq!(ok.rows[0].value(0), &Value::Int(50));
    }
    let parked = sched.parked_sessions.load(Ordering::Relaxed);
    let bytes = sched.parked_buffer_bytes.load(Ordering::Relaxed);
    assert!(parked >= 1_000);
    assert!(
        bytes <= (parked + 1) * 32 * 1024,
        "parked memory not flat: {bytes} bytes across {parked} sessions"
    );

    let begun = Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(5),
        "shutdown must not hang on 1k parked sessions"
    );
    drop(idle);
}

#[test]
fn fairness_under_storm_keeps_polite_clients_served() {
    // One flooding client issues back-to-back queries on a persistent
    // session while polite clients make occasional requests. Rotating
    // ready-session dispatch (at most one statement in flight per session)
    // must keep polite latency bounded — no starvation by the chatty one.
    let db = demo_db(100);
    let handle = start(
        &db,
        ServiceConfig {
            workers: 2,
            max_sessions: 16,
            ..ServiceConfig::default()
        },
    );
    let addr = handle.local_addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let flooder = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut conn = ServiceConn::connect(addr).unwrap();
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                conn.query(FILTER_SQL).unwrap();
                done += 1;
            }
            conn.close();
            done
        })
    };

    let polite: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = ServiceConn::connect(addr).unwrap();
                let mut worst = Duration::ZERO;
                for _ in 0..15 {
                    let begun = Instant::now();
                    let out = conn.query(COUNT_SQL).unwrap();
                    assert_eq!(out.rows[0].value(0), &Value::Int(100));
                    worst = worst.max(begun.elapsed());
                    std::thread::sleep(Duration::from_millis(5));
                }
                conn.close();
                worst
            })
        })
        .collect();

    let mut worst = Duration::ZERO;
    for t in polite {
        worst = worst.max(t.join().unwrap());
    }
    stop.store(true, Ordering::Relaxed);
    let flooded = flooder.join().unwrap();
    assert!(flooded > 0, "the flooder itself must make progress");
    assert!(
        worst < Duration::from_secs(2),
        "polite clients starved under the storm: worst latency {worst:?} \
         (flooder completed {flooded} queries)"
    );
    handle.shutdown();
}
