//! Reproduction of the qualitative shapes of the paper's Figures 6, 8, 9,
//! and 10 on the virtual-time engine, checked against the §3.2 cost model.

use std::sync::Arc;

use csq_client::synthetic::{ObjectUdf, PredicateUdf};
use csq_client::ClientRuntime;
use csq_common::{Blob, DataType, Field, Row, Schema, Value};
use csq_net::NetworkSpec;
use csq_ship::{
    simulate_client_join, simulate_semijoin, ClientJoinSpec, SemiJoinSpec, UdfApplication,
};

/// Figure 7's relation: Argument and NonArgument objects.
fn fig7_schema() -> Schema {
    Schema::new(vec![
        Field::new("Argument", DataType::Blob),
        Field::new("NonArgument", DataType::Blob),
    ])
}

fn fig7_rows(n: usize, arg_payload: usize, nonarg_payload: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Blob(Blob::synthetic(arg_payload, i as u64)),
                Value::Blob(Blob::synthetic(nonarg_payload, 10_000 + i as u64)),
            ])
        })
        .collect()
}

/// Runtime with the Figure 7 UDFs: UDF1 (predicate, selectivity s) and
/// UDF2 (object of result_size bytes).
fn fig7_runtime(s: f64, result_size: usize) -> Arc<ClientRuntime> {
    let rt = ClientRuntime::new();
    rt.register(Arc::new(PredicateUdf::new("UDF1", s))).unwrap();
    rt.register(Arc::new(ObjectUdf::sized("UDF2", result_size)))
        .unwrap();
    Arc::new(rt)
}

/// The measured CSJ/SJ relative time for the Figure 7 query at selectivity
/// `s` and result size `r` over network `net`, with `i` split as `arg` +
/// `nonarg` payload bytes.
fn relative_time(net: &NetworkSpec, n: usize, arg: usize, nonarg: usize, s: f64, r: usize) -> f64 {
    let schema = fig7_schema();
    let rows = fig7_rows(n, arg, nonarg);
    let rt = fig7_runtime(s, r);

    // Semi-join: both UDFs grouped on the argument column (the paper's SJ
    // returns all results, applies the selection at the server).
    let udf1 = UdfApplication::new("UDF1", vec![0], Field::new("pass", DataType::Bool));
    let udf2 = UdfApplication::new("UDF2", vec![0], Field::new("res", DataType::Blob));
    let sj_spec = SemiJoinSpec::new(vec![udf1.clone(), udf2.clone()], 32);
    let sj = simulate_semijoin(&schema, rows.clone(), &sj_spec, rt.clone(), net).unwrap();

    // Client-site join: both UDFs at the client, selection pushed, paper
    // projection (non-arguments + results only).
    let mut csj_spec = ClientJoinSpec::new(vec![udf1, udf2]);
    csj_spec.pushed_predicate = Some(csq_expr::PhysExpr::Binary {
        left: Box::new(csq_expr::PhysExpr::Column(2)),
        op: csq_expr::BinaryOp::Eq,
        right: Box::new(csq_expr::PhysExpr::Literal(Value::Bool(true))),
    });
    csj_spec.return_cols = Some(vec![1, 3]); // NonArgument + UDF2 result
    let csj = simulate_client_join(&schema, rows, &csj_spec, rt, net).unwrap();

    csj.elapsed_us as f64 / sj.elapsed_us as f64
}

#[test]
fn fig6_concurrency_sweep_shape() {
    // 100 objects over the 28.8k modem; optimal K near bandwidth×delay.
    let net = NetworkSpec::modem_28_8();
    let schema = Schema::new(vec![Field::new("DataObject", DataType::Blob)]);
    let rt = || {
        let rt = ClientRuntime::new();
        rt.register(Arc::new(ObjectUdf::same_size("UDF"))).unwrap();
        Arc::new(rt)
    };
    let app = UdfApplication::new("UDF", vec![0], Field::new("out", DataType::Blob));
    for size in [100usize, 500, 1000] {
        let rows: Vec<Row> = (0..100)
            .map(|i| Row::new(vec![Value::Blob(Blob::synthetic(size, i))]))
            .collect();
        let time_at = |k: usize| {
            let spec = SemiJoinSpec::new(vec![app.clone()], k);
            simulate_semijoin(&schema, rows.clone(), &spec, rt(), &net)
                .unwrap()
                .elapsed_us
        };
        let t1 = time_at(1);
        let t5 = time_at(5);
        let t21 = time_at(21);
        assert!(t1 > t5, "size {size}: t1={t1} t5={t5}");
        assert!(t5 >= t21, "size {size}");
        // The knee: beyond the bandwidth-delay product gains vanish. For
        // 1000-byte objects BDP ≈ 5 tuples, so K=21 over K=5 gains < 25%.
        if size == 1000 {
            assert!(
                (t5 as f64) < (t21 as f64) * 1.35,
                "size 1000: t5={t5} t21={t21}"
            );
            // But K=1 → K=5 must be a large win (latency hiding).
            assert!(t1 as f64 > t5 as f64 * 2.0, "t1={t1} t5={t5}");
        }
    }
}

#[test]
fn fig8_symmetric_flat_then_linear() {
    // I=1000 (A=0.5), symmetric modem. Wire sizes: blob payload+5, so use
    // payloads that make the *records* ≈1000B: 495+495 payloads.
    let net = NetworkSpec::modem_28_8();
    let rel = |s: f64, r: usize| relative_time(&net, 60, 495, 495, s, r);

    // R=1000: flat-ish region then rising.
    let lo = rel(0.1, 1000);
    let mid = rel(0.45, 1000);
    let hi = rel(0.95, 1000);
    assert!(
        (mid - lo).abs() / lo < 0.25,
        "flat region: lo={lo}, mid={mid}"
    );
    assert!(hi > mid * 1.2, "rising region: mid={mid}, hi={hi}");

    // Larger results run deeper (CSJ relatively better at fixed S).
    let r100 = rel(0.3, 100);
    let r2000 = rel(0.3, 2000);
    let r5000 = rel(0.3, 5000);
    assert!(r100 > r2000, "r100={r100}, r2000={r2000}");
    assert!(r2000 > r5000, "r2000={r2000}, r5000={r5000}");
    // And with big results + selective predicates, CSJ wins outright.
    assert!(rel(0.25, 5000) < 1.0);
}

#[test]
fn fig9_asymmetric_linear_in_selectivity() {
    // N=100, I=5000 (args 4000 + non-args 1000, A=0.8).
    let net = NetworkSpec::cable_asymmetric();
    let rel = |s: f64, r: usize| relative_time(&net, 40, 3995, 995, s, r);
    // No flat region: ratio grows ~linearly with S.
    let r2 = rel(0.2, 1000);
    let r4 = rel(0.4, 1000);
    let r8 = rel(0.8, 1000);
    assert!(r4 > r2 * 1.5, "r2={r2}, r4={r4}");
    assert!(r8 > r4 * 1.5, "r4={r4}, r8={r8}");
    // Small selectivities still favour CSJ for big results.
    assert!(rel(0.05, 5000) < 1.0, "{}", rel(0.05, 5000));
}

#[test]
fn fig10_result_size_sweep() {
    // Symmetric net, arg 100 B, input 500 B. Ratio declines with R and
    // asymptotes; S=1 never dips below 1.
    let net = NetworkSpec::modem_28_8();
    let rel = |s: f64, r: usize| relative_time(&net, 60, 95, 395, s, r);

    for s in [0.25, 0.5, 0.75] {
        let small = rel(s, 50);
        let large = rel(s, 2000);
        assert!(small > large, "s={s}: small={small}, large={large}");
        assert!(large < 1.1, "s={s}: large={large}");
    }
    // Selectivity 1.0 never crosses below 1.
    for r in [50, 400, 1000, 2000] {
        let v = rel(1.0, r);
        assert!(v >= 0.95, "s=1, r={r}: {v}");
    }
    // Lower selectivities sit lower (curves approach their selectivity).
    assert!(rel(0.25, 2000) < rel(0.5, 2000));
    assert!(rel(0.5, 2000) < rel(0.75, 2000));
}

#[test]
fn cost_model_predicts_simulation_within_tolerance() {
    // §3.2 validation: model-predicted relative time vs simulated, over a
    // parameter grid. The model ignores latency fill and message framing,
    // so agreement within ~25% relative is the bar (the paper only argues
    // shapes).
    let net = NetworkSpec::modem_28_8();
    let mut checked = 0;
    for &(arg, nonarg, s, r) in &[
        (495usize, 495usize, 0.3f64, 1000usize),
        (495, 495, 0.8, 1000),
        (495, 495, 0.3, 5000),
        (95, 395, 0.5, 800),
        (3995, 995, 0.5, 500),
    ] {
        let i = (arg + 5 + nonarg + 5) as f64;
        let a = (arg + 5) as f64 / i;
        let params = csq_cost::CostParams {
            a,
            d: 1.0,
            s,
            p: 1.0,
            i,
            // The SJ returns both UDF results (bool + object).
            r: (r + 5 + 2) as f64,
            n: 1.0,
        }
        .with_paper_projection();
        let predicted = csq_cost::relative_time(&params);
        let measured = relative_time(&net, 50, arg, nonarg, s, r);
        let err = (measured - predicted).abs() / predicted;
        assert!(
            err < 0.3,
            "arg={arg} s={s} r={r}: predicted {predicted:.3}, measured {measured:.3}"
        );
        checked += 1;
    }
    assert_eq!(checked, 5);
}
