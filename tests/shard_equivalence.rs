//! Differential oracle for sharded execution (DESIGN.md §13): the same
//! workload run through a [`Coordinator`] over 1/2/4 real TCP shard
//! services must be indistinguishable from a single-server engine — per
//! statement, the row multiset must match and failures must carry the same
//! error kind. Both shard-key choices are generated, so grouped
//! aggregation is exercised both with co-located groups (key = group
//! column: every group lives on one shard) and with scattered groups
//! (key = row id: every shard holds a partial state of every group, and
//! the coordinator's merge does real work).
//!
//! A separate deterministic test kills one shard mid-workload behind a
//! `csq-net` fault injector and checks the §13 failure contract: the
//! gather returns a typed *retryable* error naming the shard (no hang),
//! the healthy shard keeps answering, and `replace_shard` restores full
//! service under a bumped topology epoch.
//!
//! Failing seeds persist under `proptest-regressions/` (vendored proptest
//! shim) and committed seeds replay on every `cargo test`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use csq::prelude::*;
use csq_client::Backoff;
use csq_core::service;
use csq_core::{ScalarUdf, UdfSignature};
use csq_net::fault::{Fault, FaultInjector};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One generated table row: (group, value, name selector).
type RowSpec = (i64, i64, u8);

fn arb_row() -> impl Strategy<Value = RowSpec> {
    (0i64..5, -20i64..20, any::<u8>())
}

/// One generated statement; the mix covers every coordinator strategy:
/// pushdown (with and without shard pruning), shard-partial aggregation,
/// gather-and-execute (join, UDF, client-only aggregation), and failures.
#[derive(Debug, Clone)]
enum QuerySpec {
    /// Filter + projection: pushdown, every shard contacted.
    Filter { lo: i64 },
    /// Equality on the shard key: pushdown, pruned to one shard when the
    /// key is `Id`.
    Pinned { id: i64 },
    /// Grouped aggregation over every decomposable call, optionally with
    /// HAVING (finalized at the coordinator).
    Agg { having: Option<i64> },
    /// Ungrouped aggregation: one partial-state row per shard.
    Global,
    /// Self-join: gather-and-execute (both aliases fetch everything).
    SelfJoin { lo: i64 },
    /// Client-site UDF: gather-and-execute (shards hold no UDF code).
    Udf { lo: i64 },
    /// Unknown column: fails at planning on both sides.
    BadColumn,
    /// Lexically broken SQL: fails at parse on both sides.
    BadSyntax,
}

impl QuerySpec {
    fn sql(&self) -> String {
        match self {
            QuerySpec::Filter { lo } => {
                format!("SELECT T.Id, T.Name FROM T T WHERE T.Val > {lo}")
            }
            QuerySpec::Pinned { id } => {
                format!("SELECT T.Grp, T.Val FROM T T WHERE T.Id = {id}")
            }
            QuerySpec::Agg { having: None } => {
                "SELECT T.Grp, COUNT(*), SUM(T.Val), MIN(T.Val), MAX(T.Val), AVG(T.Val) \
                 FROM T T GROUP BY T.Grp"
                    .into()
            }
            QuerySpec::Agg { having: Some(h) } => format!(
                "SELECT T.Grp, COUNT(*), SUM(T.Val) FROM T T GROUP BY T.Grp \
                 HAVING COUNT(*) > {h}"
            ),
            QuerySpec::Global => "SELECT COUNT(*), SUM(T.Val), AVG(T.Val) FROM T T".into(),
            QuerySpec::SelfJoin { lo } => {
                format!("SELECT a.Id, b.Name FROM T a, T b WHERE a.Id = b.Id AND a.Val > {lo}")
            }
            QuerySpec::Udf { lo } => {
                format!("SELECT T.Id, PlusTen(T.Val) FROM T T WHERE T.Id > {lo}")
            }
            QuerySpec::BadColumn => "SELECT T.Nope FROM T T".into(),
            QuerySpec::BadSyntax => "SELECT T.Id FROM T T WHERE".into(),
        }
    }
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    prop_oneof![
        (-25i64..25).prop_map(|lo| QuerySpec::Filter { lo }),
        (0i64..40).prop_map(|id| QuerySpec::Pinned { id }),
        prop_oneof![Just(None), (0i64..4).prop_map(Some)]
            .prop_map(|having| QuerySpec::Agg { having }),
        prop_oneof![Just(None), (0i64..4).prop_map(Some)]
            .prop_map(|having| QuerySpec::Agg { having }),
        Just(QuerySpec::Global),
        (-25i64..25).prop_map(|lo| QuerySpec::SelfJoin { lo }),
        (-5i64..30).prop_map(|lo| QuerySpec::Udf { lo }),
        Just(QuerySpec::BadColumn),
        Just(QuerySpec::BadSyntax),
    ]
}

const CREATE: &str = "CREATE TABLE T (Id INT, Grp INT, Val INT, Name STR)";

/// The DML fed *identically* (as SQL text) to the single server and the
/// coordinator — both sides see the exact same statements.
fn insert_statements(rows: &[RowSpec]) -> Vec<String> {
    let names = ["alpha", "bee", "it's", "delta"];
    rows.chunks(7)
        .enumerate()
        .map(|(chunk, batch)| {
            let vals: Vec<String> = batch
                .iter()
                .enumerate()
                .map(|(j, (grp, val, name))| {
                    format!(
                        "({}, {grp}, {val}, '{}')",
                        (chunk * 7 + j) as i64,
                        names[(*name as usize) % names.len()].replace('\'', "''")
                    )
                })
                .collect();
            format!("INSERT INTO T VALUES {}", vals.join(", "))
        })
        .collect()
}

/// `PlusTen(INT) -> INT`: a trivially checkable client-site UDF.
struct PlusTen(UdfSignature);

impl PlusTen {
    fn new() -> PlusTen {
        PlusTen(UdfSignature::new(
            "PlusTen",
            vec![DataType::Int],
            DataType::Int,
        ))
    }
}

impl ScalarUdf for PlusTen {
    fn signature(&self) -> &UdfSignature {
        &self.0
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        Ok(Value::Int(args[0].as_i64()? + 10))
    }
}

/// What one statement produced, normalized for comparison: the row
/// multiset (display-rendered, sorted) or the error kind.
type Outcome = std::result::Result<Vec<String>, &'static str>;

fn outcome_of(r: Result<QueryResult>) -> Outcome {
    match r {
        Ok(result) => {
            let mut rows: Vec<String> = result.rows.iter().map(|r| format!("{r}")).collect();
            rows.sort();
            Ok(rows)
        }
        Err(e) => Err(e.kind()),
    }
}

/// Build the single-server reference from the same SQL the cluster gets.
fn reference_db(inserts: &[String]) -> Database {
    let db = Database::new(NetworkSpec::lan());
    db.execute(CREATE).expect("reference CREATE");
    for stmt in inserts {
        db.execute(stmt).expect("reference INSERT");
    }
    db.register_udf(Arc::new(PlusTen::new())).expect("udf");
    db
}

/// A live cluster: `n` TCP shard services plus a coordinator over them.
struct Cluster {
    handles: Vec<ServiceHandle>,
    coord: Coordinator,
}

impl Cluster {
    fn start(n: usize, shard_key: &str, inserts: &[String]) -> Cluster {
        let mut handles = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let db = Arc::new(Database::new(NetworkSpec::lan()));
            let h = service::start(
                db,
                ServiceConfig {
                    workers: 2,
                    idle_timeout: Duration::from_millis(50),
                    ..ServiceConfig::default()
                },
            )
            .expect("shard service must start");
            addrs.push(h.local_addr());
            handles.push(h);
        }
        let coord =
            Coordinator::connect(&addrs, CoordinatorConfig::default()).expect("coordinator");
        coord
            .create_table(CREATE, shard_key)
            .expect("sharded CREATE");
        for stmt in inserts {
            coord.execute(stmt).expect("routed INSERT");
        }
        coord.register_udf(Arc::new(PlusTen::new())).expect("udf");
        Cluster { handles, coord }
    }

    fn stop(self) {
        drop(self.coord);
        for h in self.handles {
            h.shutdown();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_queries_match_single_server(
        rows in prop::collection::vec(arb_row(), 0..60),
        specs in prop::collection::vec(arb_query(), 1..10),
        key_is_id in any::<bool>(),
    ) {
        let inserts = insert_statements(&rows);
        let reference = reference_db(&inserts);
        let queries: Vec<String> = specs.iter().map(QuerySpec::sql).collect();
        let want: Vec<Outcome> = queries
            .iter()
            .map(|q| outcome_of(reference.execute(q)))
            .collect();
        let shard_key = if key_is_id { "Id" } else { "Grp" };

        for n in SHARD_COUNTS {
            let cluster = Cluster::start(n, shard_key, &inserts);
            for (i, q) in queries.iter().enumerate() {
                let got = outcome_of(cluster.coord.execute(q));
                prop_assert_eq!(
                    &got,
                    &want[i],
                    "{} shards, key {}, query {} = {}",
                    n,
                    shard_key,
                    i,
                    q
                );
            }
            cluster.stop();
        }
    }
}

/// Deterministic fixture for the non-proptest checks below.
fn fixture_rows() -> Vec<RowSpec> {
    (0..40)
        .map(|i| (i % 5, (i * 7 % 41) - 20, i as u8))
        .collect()
}

#[test]
fn explain_shows_scatter_gather_and_pruning() {
    let inserts = insert_statements(&fixture_rows());
    let cluster = Cluster::start(4, "Id", &inserts);

    let agg = cluster
        .coord
        .explain("SELECT T.Grp, COUNT(*), AVG(T.Val) FROM T T GROUP BY T.Grp")
        .expect("explain agg");
    assert!(agg.contains("Scatter [4 shards"), "missing scatter: {agg}");
    assert!(
        agg.contains("Gather [merge]") || agg.contains("Gather [ordered]"),
        "missing gather: {agg}"
    );

    let pinned = cluster
        .coord
        .explain("SELECT T.Val FROM T T WHERE T.Id = 7")
        .expect("explain pinned");
    assert!(
        pinned.contains("3 pruned"),
        "shard-key equality must prune 3 of 4 shards: {pinned}"
    );

    // Second EXPLAIN of the same text is served by the coordinator plan
    // cache; a routed INSERT moves statistics and invalidates it.
    let hits0 = cluster
        .coord
        .stats()
        .plan_cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    cluster
        .coord
        .explain("SELECT T.Val FROM T T WHERE T.Id = 7")
        .expect("explain again");
    let hits1 = cluster
        .coord
        .stats()
        .plan_cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(hits1 > hits0, "repeated explain must hit the plan cache");

    cluster.stop();
}

#[test]
fn killed_shard_fails_typed_and_replace_restores_service() {
    let inserts = insert_statements(&fixture_rows());
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let db = Arc::new(Database::new(NetworkSpec::lan()));
        let h = service::start(db, ServiceConfig::default()).expect("shard service");
        addrs.push(h.local_addr());
        handles.push(h);
    }
    let config = CoordinatorConfig {
        shard_options: QueryOptions::new()
            .with_deadline(Duration::from_secs(5))
            .with_retry(RetryPolicy {
                max_attempts: 2,
                backoff: Backoff::new(Duration::from_millis(1), Duration::from_millis(4), 42),
                deadline: Some(Duration::from_secs(5)),
            }),
        ..CoordinatorConfig::default()
    };
    let coord = Coordinator::connect(&addrs, config).expect("coordinator");
    coord.create_table(CREATE, "Id").expect("create");
    for stmt in &inserts {
        coord.execute(stmt).expect("insert");
    }
    let full = "SELECT T.Grp, COUNT(*) FROM T T GROUP BY T.Grp";
    let baseline = coord.execute(full).expect("healthy gather");

    // Kill shard 1: route it through an injector that refuses every
    // connection. The fan-out must return a typed retryable error naming
    // the shard — not hang the gather.
    let injector = FaultInjector::start(addrs[1], vec![Fault::Refuse; 64]).expect("fault injector");
    let epoch0 = coord.topology_epoch();
    coord
        .replace_shard(1, injector.local_addr())
        .expect("replace with injector");
    let err = coord.execute(full).expect_err("dead shard must error");
    assert!(
        err.retryable(),
        "shard death must classify as retryable, got {:?}: {}",
        err.kind(),
        err.message()
    );
    assert!(
        err.message().contains("shard 1"),
        "error must name the failed shard: {}",
        err.message()
    );

    // Pruned statements pinned to the healthy shard keep working.
    let healthy0 = coord
        .execute("SELECT T.Val FROM T T WHERE T.Id = 0")
        .map(|r| r.rows.len());
    let healthy1 = coord
        .execute("SELECT T.Val FROM T T WHERE T.Id = 1")
        .map(|r| r.rows.len());
    assert!(
        healthy0.is_ok() || healthy1.is_ok(),
        "at least one pinned key must route to the live shard"
    );

    // Failover: point shard 1 back at the real service; the topology epoch
    // must have moved (stale plans replan) and the gather must be whole.
    coord.replace_shard(1, addrs[1]).expect("replace back");
    assert!(
        coord.topology_epoch() >= epoch0 + 2,
        "epoch must bump per swap"
    );
    let restored = coord.execute(full).expect("restored gather");
    let norm = |r: &QueryResult| {
        let mut v: Vec<String> = r.rows.iter().map(|row| format!("{row}")).collect();
        v.sort();
        v
    };
    assert_eq!(norm(&restored), norm(&baseline));
    assert!(
        coord
            .stats()
            .shard_failures
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );

    injector.shutdown();
    for h in handles {
        h.shutdown();
    }
}
