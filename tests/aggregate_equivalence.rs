//! Differential oracle for grouped aggregation (DESIGN.md §7): random
//! schemas' worth of NULL-bearing data, random group keys, and random
//! aggregate-call lists must produce the same groups through
//!
//! * a naive row-at-a-time reference aggregator (independent fold logic,
//!   written here),
//! * the serial [`HashAggregate`],
//! * the partitioned [`Exchange::hash_aggregate`] at 1/2/4/8 workers, and
//! * the decomposed partial/final split shipped through the wire codec
//!   ([`PartialAggSpec`]), with the input cut into 1 or 3 partial sources.
//!
//! Results compare as row multisets; failures compare as error *kinds*
//! (NaN-bearing MIN/MAX groups are exec errors, non-numeric SUM arguments
//! are type errors — on every engine). Failing seeds persist under
//! `proptest-regressions/` via the vendored proptest shim and replay on
//! every `cargo test`.

use proptest::prelude::*;

use csq_common::{CsqError, DataType, Field, Result, Row, Schema, Value};
use csq_exec::{collect, AggSpec, BoxOp, Exchange, HashAggregate, ParallelOpts, RowsOp};
use csq_expr::{AggFunc, PhysExpr};
use csq_ship::PartialAggSpec;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("k1", DataType::Int),
        Field::new("k2", DataType::Int),
        Field::new("v", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Str),
    ])
}

/// Floats are quarter-integers (exactly representable, so sums associate
/// exactly across partial splits) plus the occasional NaN to drive the
/// MIN/MAX error path.
fn arb_row() -> impl Strategy<Value = Row> {
    (
        prop_oneof![(-4i64..4).prop_map(Value::Int), Just(Value::Null)],
        prop_oneof![(-3i64..3).prop_map(Value::Int), Just(Value::Null)],
        prop_oneof![(-6i64..6).prop_map(Value::Int), Just(Value::Null)],
        prop_oneof![
            (-8i64..8).prop_map(|i| Value::Float(i as f64 * 0.25)),
            (-8i64..8).prop_map(|i| Value::Float(i as f64 * 0.25)),
            Just(Value::Float(f64::NAN)),
            Just(Value::Null),
        ],
        prop_oneof![
            (0usize..3).prop_map(|k| match k {
                0 => Value::from("a"),
                1 => Value::from("bb"),
                _ => Value::from("ccc"),
            }),
            Just(Value::Null),
        ],
    )
        .prop_map(|(a, b, c, d, e)| Row::new(vec![a, b, c, d, e]))
}

/// One generated aggregate call. SUM/AVG stay on numeric columns (see the
/// note at the end of [`arb_call`]); the type-error path is covered by the
/// dedicated `sum_over_strings_is_a_type_error_on_every_engine` test.
#[derive(Debug, Clone)]
struct CallSpec {
    func: AggFunc,
    arg: Option<usize>,
}

fn arb_call() -> impl Strategy<Value = CallSpec> {
    prop_oneof![
        Just(CallSpec {
            func: AggFunc::Count,
            arg: None
        }),
        (0usize..5).prop_map(|c| CallSpec {
            func: AggFunc::Count,
            arg: Some(c)
        }),
        (2usize..4).prop_map(|c| CallSpec {
            func: AggFunc::Sum,
            arg: Some(c)
        }),
        (0usize..5).prop_map(|c| CallSpec {
            func: AggFunc::Min,
            arg: Some(c)
        }),
        (0usize..5).prop_map(|c| CallSpec {
            func: AggFunc::Max,
            arg: Some(c)
        }),
        (2usize..4).prop_map(|c| CallSpec {
            func: AggFunc::Avg,
            arg: Some(c)
        }),
        // SUM/AVG stay on numeric columns here so the only generatable
        // failure kind is "exec" (NaN in a MIN/MAX group): when a case can
        // contain two *different* error kinds, which one surfaces first
        // depends on evaluation order (per-row, per-group, per-partition)
        // and is legitimately engine-specific. The type-error path has its
        // own deterministic cross-engine test below.
    ]
}

fn specs_of(calls: &[CallSpec]) -> Vec<AggSpec> {
    calls
        .iter()
        .enumerate()
        .map(|(i, c)| AggSpec::new(c.func, c.arg.map(PhysExpr::Column), format!("a{i}")))
        .collect()
}

/// Group keys: any subset of the two int keys and the string column
/// (including the empty set — a global aggregate).
fn arb_key() -> impl Strategy<Value = Vec<usize>> {
    (0u8..8).prop_map(|mask| {
        [0usize, 1, 4]
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect()
    })
}

// ---- the naive row-at-a-time reference -------------------------------------

/// Independent fold logic: collects each group's argument values and folds
/// them one at a time, mirroring SQL semantics from scratch (NULL skipping,
/// Int overflow checks, Int/Float widening, sql_cmp-based MIN/MAX).
fn naive_reference(rows: &[Row], key: &[usize], calls: &[CallSpec]) -> Result<Vec<Row>> {
    use std::collections::HashMap;
    let mut order: Vec<Row> = Vec::new();
    let mut groups: HashMap<Row, Vec<Vec<Option<Value>>>> = HashMap::new();
    for row in rows {
        let k = row.project(key);
        let entry = groups.entry(k.clone()).or_insert_with(|| {
            order.push(k);
            vec![Vec::new(); calls.len()]
        });
        for (ci, call) in calls.iter().enumerate() {
            entry[ci].push(call.arg.map(|c| row.value(c).clone()));
        }
    }
    if rows.is_empty() && key.is_empty() {
        order.push(Row::new(vec![]));
        groups.insert(Row::new(vec![]), vec![Vec::new(); calls.len()]);
    }
    let mut out = Vec::with_capacity(order.len());
    for k in order {
        let vals = &groups[&k];
        let mut row = k.into_values();
        for (ci, call) in calls.iter().enumerate() {
            row.push(naive_fold(call.func, &vals[ci])?);
        }
        out.push(Row::new(row));
    }
    Ok(out)
}

fn naive_add(acc: Option<Value>, v: &Value) -> Result<Option<Value>> {
    let acc = match acc {
        None => {
            return match v {
                Value::Int(_) | Value::Float(_) => Ok(Some(v.clone())),
                other => Err(CsqError::Type(format!(
                    "aggregate argument must be numeric, got {:?}",
                    other.data_type()
                ))),
            }
        }
        Some(a) => a,
    };
    Ok(Some(match (&acc, v) {
        (Value::Int(a), Value::Int(b)) => Value::Int(
            a.checked_add(*b)
                .ok_or_else(|| CsqError::Exec("integer overflow".into()))?,
        ),
        (a, b) => Value::Float(a.as_f64()? + b.as_f64()?),
    }))
}

fn naive_fold(func: AggFunc, vals: &[Option<Value>]) -> Result<Value> {
    match func {
        AggFunc::Count => {
            let n = vals
                .iter()
                .filter(|v| match v {
                    None => true, // COUNT(*)
                    Some(v) => !v.is_null(),
                })
                .count();
            Ok(Value::Int(n as i64))
        }
        AggFunc::Sum => {
            let mut acc = None;
            for v in vals.iter().flatten() {
                if !v.is_null() {
                    acc = naive_add(acc, v)?;
                }
            }
            Ok(acc.unwrap_or(Value::Null))
        }
        AggFunc::Avg => {
            let mut acc = None;
            let mut n = 0i64;
            for v in vals.iter().flatten() {
                if !v.is_null() {
                    acc = naive_add(acc, v)?;
                    n += 1;
                }
            }
            match acc {
                Some(a) => Ok(Value::Float(a.as_f64()? / n as f64)),
                None => Ok(Value::Null),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut acc: Option<Value> = None;
            for v in vals.iter().flatten() {
                if v.is_null() {
                    continue;
                }
                match &acc {
                    None => acc = Some(v.clone()),
                    Some(a) => {
                        let ord = v.sql_cmp(a)?.ok_or_else(|| {
                            CsqError::Exec("incomparable values in sort key".into())
                        })?;
                        let replace = match func {
                            AggFunc::Min => ord == std::cmp::Ordering::Less,
                            _ => ord == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            acc = Some(v.clone());
                        }
                    }
                }
            }
            Ok(acc.unwrap_or(Value::Null))
        }
    }
}

// ---- runners ----------------------------------------------------------------

fn run_serial(rows: Vec<Row>, key: Vec<usize>, specs: Vec<AggSpec>) -> Result<Vec<Row>> {
    let scan: BoxOp = Box::new(RowsOp::new(base_schema(), rows));
    let mut agg = HashAggregate::new(scan, key, specs);
    collect(&mut agg)
}

fn run_parallel(
    rows: Vec<Row>,
    key: Vec<usize>,
    specs: Vec<AggSpec>,
    workers: usize,
    morsel: usize,
) -> Result<Vec<Row>> {
    let scan: BoxOp = Box::new(RowsOp::new(base_schema(), rows));
    let opts = ParallelOpts {
        workers,
        morsel_rows: morsel,
        ordered: false,
        ..ParallelOpts::default()
    };
    let mut agg = Exchange::hash_aggregate(scan, key, specs, &opts);
    collect(&mut agg)
}

/// Partial-aggregate each contiguous chunk, concatenate the encoded state
/// shipments, decode, and finalize — the shipped partial/final split.
fn run_shipped(
    rows: Vec<Row>,
    key: Vec<usize>,
    specs: Vec<AggSpec>,
    chunks: usize,
) -> Result<Vec<Row>> {
    let spec = PartialAggSpec::new(key, specs);
    let chunk_len = rows.len().div_ceil(chunks).max(1);
    let mut states = Vec::new();
    let mut state_schema = spec.state_schema(&base_schema());
    let mut pieces: Vec<Vec<Row>> = rows.chunks(chunk_len).map(<[Row]>::to_vec).collect();
    if pieces.is_empty() {
        pieces.push(Vec::new());
    }
    for piece in pieces {
        let scan: BoxOp = Box::new(RowsOp::new(base_schema(), piece));
        let mut partial = spec.partial_operator(scan);
        state_schema = csq_exec::Operator::schema(&partial).clone();
        let piece_states = collect(&mut partial)?;
        let mut buf = Vec::new();
        spec.encode_states(&piece_states, &mut buf);
        states.extend(spec.decode_states(&buf)?);
    }
    let mut fin = spec.final_operator(state_schema, states)?;
    collect(&mut fin)
}

fn sorted_display(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r}")).collect();
    out.sort();
    out
}

/// Compare two engine outcomes: equal multisets on success, equal error
/// kinds on failure.
fn assert_agree(label: &str, reference: &Result<Vec<Row>>, other: &Result<Vec<Row>>) {
    match (reference, other) {
        (Ok(a), Ok(b)) => assert_eq!(sorted_display(a), sorted_display(b), "{label}"),
        (Err(a), Err(b)) => assert_eq!(a.kind(), b.kind(), "{label}"),
        (a, b) => panic!("{label}: reference={a:?} other={b:?}"),
    }
}

#[test]
fn sum_over_strings_is_a_type_error_on_every_engine() {
    let rows: Vec<Row> = (0..20)
        .map(|i| {
            Row::new(vec![
                Value::Int(i % 3),
                Value::Null,
                Value::Int(i),
                Value::Float(0.5),
                Value::from("x"),
            ])
        })
        .collect();
    let calls = vec![CallSpec {
        func: AggFunc::Sum,
        arg: Some(4),
    }];
    let key = vec![0usize];
    assert_eq!(
        naive_reference(&rows, &key, &calls).unwrap_err().kind(),
        "type"
    );
    assert_eq!(
        run_serial(rows.clone(), key.clone(), specs_of(&calls))
            .unwrap_err()
            .kind(),
        "type"
    );
    for workers in WORKER_COUNTS {
        assert_eq!(
            run_parallel(rows.clone(), key.clone(), specs_of(&calls), workers, 7)
                .unwrap_err()
                .kind(),
            "type",
            "workers = {workers}"
        );
    }
    for chunks in [1usize, 3] {
        assert_eq!(
            run_shipped(rows.clone(), key.clone(), specs_of(&calls), chunks)
                .unwrap_err()
                .kind(),
            "type",
            "chunks = {chunks}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn naive_reference_matches_hash_aggregate(
        rows in prop::collection::vec(arb_row(), 0..160),
        key in arb_key(),
        calls in prop::collection::vec(arb_call(), 1..4),
    ) {
        let reference = naive_reference(&rows, &key, &calls);
        let serial = run_serial(rows, key, specs_of(&calls));
        assert_agree("serial vs naive", &reference, &serial);
    }

    #[test]
    fn partitioned_aggregate_matches_naive_at_every_worker_count(
        rows in prop::collection::vec(arb_row(), 0..160),
        key in arb_key(),
        calls in prop::collection::vec(arb_call(), 1..4),
        morsel in 1usize..40,
    ) {
        let reference = naive_reference(&rows, &key, &calls);
        for workers in WORKER_COUNTS {
            let par = run_parallel(rows.clone(), key.clone(), specs_of(&calls), workers, morsel);
            assert_agree(&format!("parallel x{workers} vs naive"), &reference, &par);
        }
    }

    #[test]
    fn shipped_partial_final_matches_naive(
        rows in prop::collection::vec(arb_row(), 0..160),
        key in arb_key(),
        calls in prop::collection::vec(arb_call(), 1..4),
        chunks in prop_oneof![Just(1usize), Just(3)],
    ) {
        let reference = naive_reference(&rows, &key, &calls);
        let shipped = run_shipped(rows, key, specs_of(&calls), chunks);
        assert_agree(&format!("shipped x{chunks} vs naive"), &reference, &shipped);
    }
}
