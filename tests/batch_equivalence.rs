//! Property tests for the vectorized engine (extends the `backends_agree`
//! family):
//!
//! 1. Random operator pipelines produce identical results whether driven
//!    row-at-a-time through the compatibility adapter (`Operator::next`) or
//!    batch-wise (`Operator::next_batch`) — including identical error kinds
//!    when a pipeline is ill-typed.
//! 2. Random semi-join / client-join workloads ship byte-for-byte the same
//!    traffic through the threaded engine (batched senders, zero-copy
//!    receive) and the virtual-time simulator.

use std::sync::Arc;

use proptest::prelude::*;

use csq_client::synthetic::ObjectUdf;
use csq_client::{spawn_client, ClientRuntime};
use csq_common::{DataType, Field, Result, Row, Schema, Value};
use csq_exec::{BoxOp, Distinct, Filter, Limit, Project, RowsOp, Sort};
use csq_expr::{BinaryOp, PhysExpr};
use csq_net::{in_memory_duplex, NetworkSpec};
use csq_ship::{
    simulate_client_join, simulate_semijoin, ClientJoinSpec, SemiJoinSpec, ThreadedClientJoin,
    ThreadedSemiJoin, UdfApplication,
};

// ---- random pipelines: row adapter vs. batch driver ------------------------

#[derive(Debug, Clone)]
enum StageSpec {
    /// `col <op> lit` — single-comparison filter (batch fast path).
    FilterCmp {
        col: u8,
        op: u8,
        lit: i64,
    },
    /// `col > lo AND col < hi` — conjunction filter (batch fast path).
    FilterRange {
        col: u8,
        lo: i64,
        hi: i64,
    },
    /// Bare-column projection, possibly plus a computed `c + c` column
    /// (exercises the in-place, move, and eval paths).
    Project {
        cols: Vec<u8>,
        add_sum: bool,
    },
    Distinct {
        on_key: bool,
        col: u8,
    },
    Sort {
        col: u8,
    },
    Limit {
        n: u8,
    },
}

fn cmp_op(sel: u8) -> BinaryOp {
    match sel % 6 {
        0 => BinaryOp::Eq,
        1 => BinaryOp::NotEq,
        2 => BinaryOp::Lt,
        3 => BinaryOp::LtEq,
        4 => BinaryOp::Gt,
        _ => BinaryOp::GtEq,
    }
}

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("c0", DataType::Int),
        Field::new("c1", DataType::Int),
        Field::new("c2", DataType::Int),
        Field::new("s", DataType::Str),
    ])
}

fn arb_cell(kind: usize) -> impl Strategy<Value = Value> {
    prop_oneof![
        (-8i64..8).prop_map(Value::Int),
        (-8i64..8).prop_map(Value::Int),
        (-8i64..8).prop_map(Value::Int),
        Just(Value::Null),
        Just(match kind % 3 {
            0 => Value::from("aa"),
            1 => Value::from("bb"),
            _ => Value::from("longer string payload"),
        }),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        arb_cell(0),
        arb_cell(1),
        arb_cell(2),
        prop_oneof![
            (0usize..3).prop_map(|k| match k {
                0 => Value::from("x"),
                1 => Value::from("yy"),
                _ => Value::from("zzz"),
            }),
            Just(Value::Null),
        ],
    )
        .prop_map(|(a, b, c, d)| Row::new(vec![a, b, c, d]))
}

fn arb_stage() -> impl Strategy<Value = StageSpec> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), -8i64..8).prop_map(|(col, op, lit)| StageSpec::FilterCmp {
            col,
            op,
            lit
        }),
        (any::<u8>(), -8i64..4, -4i64..8).prop_map(|(col, lo, hi)| StageSpec::FilterRange {
            col,
            lo,
            hi
        }),
        (prop::collection::vec(any::<u8>(), 1..4), any::<bool>())
            .prop_map(|(cols, add_sum)| StageSpec::Project { cols, add_sum }),
        (any::<bool>(), any::<u8>()).prop_map(|(on_key, col)| StageSpec::Distinct { on_key, col }),
        any::<u8>().prop_map(|col| StageSpec::Sort { col }),
        any::<u8>().prop_map(|n| StageSpec::Limit { n }),
    ]
}

/// Build the pipeline described by `stages` over a fresh copy of the data.
fn build_pipeline(stages: &[StageSpec], rows: Vec<Row>) -> BoxOp {
    let mut op: BoxOp = Box::new(RowsOp::new(base_schema(), rows));
    for s in stages {
        let w = op.schema().len().max(1);
        op = match s {
            StageSpec::FilterCmp { col, op: sel, lit } => {
                let pred = PhysExpr::Binary {
                    left: Box::new(PhysExpr::Column(*col as usize % w)),
                    op: cmp_op(*sel),
                    right: Box::new(PhysExpr::Literal(Value::Int(*lit))),
                };
                Box::new(Filter::new(op, pred))
            }
            StageSpec::FilterRange { col, lo, hi } => {
                let c = *col as usize % w;
                let gt = PhysExpr::Binary {
                    left: Box::new(PhysExpr::Column(c)),
                    op: BinaryOp::Gt,
                    right: Box::new(PhysExpr::Literal(Value::Int(*lo))),
                };
                let lt = PhysExpr::Binary {
                    left: Box::new(PhysExpr::Column(c)),
                    op: BinaryOp::Lt,
                    right: Box::new(PhysExpr::Literal(Value::Int(*hi))),
                };
                let pred = PhysExpr::Binary {
                    left: Box::new(gt),
                    op: BinaryOp::And,
                    right: Box::new(lt),
                };
                Box::new(Filter::new(op, pred))
            }
            StageSpec::Project { cols, add_sum } => {
                let mut exprs: Vec<(PhysExpr, Field)> = cols
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let ord = *c as usize % w;
                        let dtype = op.schema().field(ord).dtype;
                        (PhysExpr::Column(ord), Field::new(format!("p{i}"), dtype))
                    })
                    .collect();
                if *add_sum {
                    let sum = PhysExpr::Binary {
                        left: Box::new(PhysExpr::Column(0)),
                        op: BinaryOp::Add,
                        right: Box::new(PhysExpr::Column(0)),
                    };
                    exprs.push((sum, Field::new("sum", DataType::Int)));
                }
                Box::new(Project::new(op, exprs))
            }
            StageSpec::Distinct { on_key, col } => {
                if *on_key {
                    Box::new(Distinct::on(op, vec![*col as usize % w]))
                } else {
                    Box::new(Distinct::all(op))
                }
            }
            StageSpec::Sort { col } => Box::new(Sort::new(op, vec![*col as usize % w])),
            StageSpec::Limit { n } => Box::new(Limit::new(op, *n as usize)),
        };
    }
    op
}

/// Drive via the row-compat adapter.
fn run_rows(mut op: BoxOp) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(r) = op.next()? {
        out.push(r);
    }
    Ok(out)
}

/// Drive via the batch interface.
fn run_batches(mut op: BoxOp) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(b) = op.next_batch()? {
        assert!(!b.is_empty(), "operators must never emit empty batches");
        out.extend(b.into_rows());
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn row_adapter_and_batch_engine_agree(
        rows in prop::collection::vec(arb_row(), 0..120),
        stages in prop::collection::vec(arb_stage(), 0..5),
    ) {
        let by_row = run_rows(build_pipeline(&stages, rows.clone()));
        let by_batch = run_batches(build_pipeline(&stages, rows));
        match (by_row, by_batch) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // Ill-typed pipelines (e.g. sorting mixed Int/Str columns) must
            // fail identically through both drivers.
            (Err(a), Err(b)) => prop_assert_eq!(a.kind(), b.kind()),
            (a, b) => prop_assert!(false, "drivers disagree: row={a:?} batch={b:?}"),
        }
    }
}

// ---- shipped-byte accounting: threaded vs simulated ------------------------

fn ship_runtime() -> Arc<ClientRuntime> {
    let rt = ClientRuntime::new();
    rt.register(Arc::new(ObjectUdf::sized("Analyze", 96)))
        .unwrap();
    Arc::new(rt)
}

fn ship_schema() -> Schema {
    Schema::new(vec![
        Field::new("Id", DataType::Int),
        Field::new("Sym", DataType::Str),
        Field::new("Arg", DataType::Blob),
    ])
}

fn ship_rows(n: usize, distinct: usize, arg_size: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::from(format!("S{:02}", i % 7)),
                Value::Blob(csq_common::Blob::synthetic(
                    arg_size,
                    (i % distinct.max(1)) as u64,
                )),
            ])
        })
        .collect()
}

fn analyze_app() -> UdfApplication {
    UdfApplication::new("Analyze", vec![2], Field::new("res", DataType::Blob))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn semijoin_shipped_bytes_agree_between_backends(
        n in 1usize..48,
        distinct_sel in 1usize..48,
        arg_size in 1usize..200,
        k in 1usize..10,
        batch in 1usize..5,
        sorted in any::<bool>(),
    ) {
        let distinct = distinct_sel.min(n);
        let data = ship_rows(n, distinct, arg_size);
        let mut spec = SemiJoinSpec::new(vec![analyze_app()], k);
        spec.batch_size = batch;
        spec.sorted = sorted;

        let (server, client, stats) = in_memory_duplex();
        let handle = spawn_client(ship_runtime(), client).unwrap();
        let input = Box::new(RowsOp::new(ship_schema(), data.clone()));
        let mut op = ThreadedSemiJoin::new(input, spec.clone(), server).unwrap();
        let t_rows = csq_exec::collect(&mut op).unwrap();
        drop(op);
        let _ = handle.join().unwrap();

        let sim = simulate_semijoin(&ship_schema(), data, &spec, ship_runtime(),
                                    &NetworkSpec::lan()).unwrap();
        prop_assert_eq!(t_rows, sim.rows);
        prop_assert_eq!(stats.down_bytes(), sim.down_bytes);
        prop_assert_eq!(stats.up_bytes(), sim.up_bytes);
        prop_assert_eq!(stats.down_messages(), sim.down_messages);
        prop_assert_eq!(stats.up_messages(), sim.up_messages);
    }

    #[test]
    fn client_join_shipped_bytes_agree_between_backends(
        n in 1usize..48,
        arg_size in 1usize..200,
        batch in 1usize..5,
    ) {
        let data = ship_rows(n, n, arg_size);
        let mut spec = ClientJoinSpec::new(vec![analyze_app()]);
        spec.batch_size = batch;

        let (server, client, stats) = in_memory_duplex();
        let handle = spawn_client(ship_runtime(), client).unwrap();
        let input = Box::new(RowsOp::new(ship_schema(), data.clone()));
        let mut op = ThreadedClientJoin::new(input, spec.clone(), server).unwrap();
        let t_rows = csq_exec::collect(&mut op).unwrap();
        drop(op);
        let _ = handle.join().unwrap();

        let sim = simulate_client_join(&ship_schema(), data, &spec, ship_runtime(),
                                       &NetworkSpec::lan()).unwrap();
        prop_assert_eq!(t_rows, sim.rows);
        prop_assert_eq!(stats.down_bytes(), sim.down_bytes);
        prop_assert_eq!(stats.up_bytes(), sim.up_bytes);
        prop_assert_eq!(stats.down_messages(), sim.down_messages);
        prop_assert_eq!(stats.up_messages(), sim.up_messages);
    }
}
