//! Optimizer + engine robustness beyond the paper's example queries:
//! pure-relational queries, three-way joins, cross-relation UDF arguments,
//! and adaptive concurrency tuning on simulated observations.

use std::sync::Arc;

use csq_client::synthetic::ObjectUdf;
use csq_common::{Blob, DataType, Value};
use csq_core::Database;
use csq_net::NetworkSpec;
use csq_ship::ConcurrencyTuner;
use csq_storage::TableBuilder;

fn three_table_db() -> Database {
    let db = Database::new(NetworkSpec::modem_28_8());
    let mut a = TableBuilder::new("A")
        .column("id", DataType::Int)
        .column("obj", DataType::Blob);
    for i in 0..12i64 {
        a = a.row(vec![
            Value::Int(i),
            Value::Blob(Blob::synthetic(64, i as u64)),
        ]);
    }
    db.catalog().register(a.build().unwrap()).unwrap();
    let mut b = TableBuilder::new("B")
        .column("a_id", DataType::Int)
        .column("tag", DataType::Str);
    for i in 0..12i64 {
        b = b.row(vec![
            Value::Int(i),
            Value::from(if i % 2 == 0 { "even" } else { "odd" }),
        ]);
    }
    db.catalog().register(b.build().unwrap()).unwrap();
    let mut c = TableBuilder::new("C")
        .column("tag", DataType::Str)
        .column("weight", DataType::Int);
    c = c.row(vec![Value::from("even"), Value::Int(10)]);
    c = c.row(vec![Value::from("odd"), Value::Int(20)]);
    db.catalog().register(c.build().unwrap()).unwrap();
    db.register_udf(Arc::new(ObjectUdf::sized("Enrich", 32)))
        .unwrap();
    db.register_udf(Arc::new(ObjectUdf::sized_n("Merge", 2, 16)))
        .unwrap();
    db
}

#[test]
fn pure_relational_query_without_udfs() {
    let db = three_table_db();
    let out = db
        .execute(
            "SELECT A.id, C.weight FROM A A, B B, C C \
             WHERE A.id = B.a_id AND B.tag = C.tag AND C.weight > 15",
        )
        .unwrap();
    // Odd ids only: 6 of 12.
    assert_eq!(out.rows.len(), 6);
    for r in &out.rows {
        assert_eq!(r.value(1), &Value::Int(20));
        assert_eq!(r.value(0).as_i64().unwrap() % 2, 1);
    }
}

#[test]
fn three_way_join_with_udf() {
    let db = three_table_db();
    let sql = "SELECT A.id, Enrich(A.obj) FROM A A, B B, C C \
               WHERE A.id = B.a_id AND B.tag = C.tag AND C.weight = 10";
    let out = db.execute(sql).unwrap();
    assert_eq!(out.rows.len(), 6); // even ids
    for r in &out.rows {
        assert_eq!(r.value(1).as_blob().unwrap().len(), 32);
    }
    // 5 units → exponential DP still small.
    let (_, plan) = db.optimize(sql).unwrap();
    assert!(plan.states_explored < 10_000);
}

#[test]
fn udf_with_arguments_from_two_relations() {
    let db = three_table_db();
    // Merge takes one blob from A and... B has no blob, so use A twice via
    // self-join aliases.
    let sql = "SELECT X.id, Merge(X.obj, Y.obj) FROM A X, A Y \
               WHERE X.id = Y.id";
    let out = db.execute(sql).unwrap();
    assert_eq!(out.rows.len(), 12);
    for r in &out.rows {
        assert_eq!(r.value(1).as_blob().unwrap().len(), 16);
    }
    // The UDF unit's prerequisites must span both relations, so it can only
    // be applied after the join.
    let (graph, plan) = db.optimize(sql).unwrap();
    let udf_unit = graph.n_rels;
    assert!(
        plan.root.udf_after_join(udf_unit),
        "{}",
        plan.root.explain(&graph)
    );
}

#[test]
fn self_join_aliases_resolve_independently() {
    let db = three_table_db();
    let out = db
        .execute("SELECT X.id, Y.id FROM A X, A Y WHERE X.id = Y.id AND X.id < 3")
        .unwrap();
    assert_eq!(out.rows.len(), 3);
}

#[test]
fn unknown_table_and_column_errors() {
    let db = three_table_db();
    assert!(db.execute("SELECT Z.id FROM Zed Z").is_err());
    let err = db.execute("SELECT A.missing FROM A A").unwrap_err();
    assert!(matches!(err.kind(), "catalog" | "plan"), "{err}");
}

#[test]
fn ambiguous_unqualified_column_is_rejected() {
    let db = three_table_db();
    // `tag` exists in both B and C.
    let err = db
        .execute("SELECT tag FROM B B, C C WHERE B.tag = C.tag")
        .unwrap_err();
    assert!(matches!(err.kind(), "plan" | "catalog"), "{err}");
}

#[test]
fn tuner_converges_on_simulated_observations() {
    // Drive the adaptive tuner with per-message observations derived from
    // the network spec, as the threaded engine would; it should land near
    // the analytic optimum.
    let net = NetworkSpec::cable_asymmetric();
    let arg_bytes = 1000usize;
    let result_bytes = 500usize;
    let analytic = csq_cost::optimal_concurrency(&net, arg_bytes, result_bytes, 0);

    let down_tx = (arg_bytes as f64 / net.down_bandwidth * 1e6) as u64;
    let up_tx = (result_bytes as f64 / net.up_bandwidth * 1e6) as u64;
    let service = down_tx.max(up_tx);
    let total = down_tx + net.down_latency + up_tx + net.up_latency;

    let mut tuner = ConcurrencyTuner::default();
    for _ in 0..32 {
        tuner.observe(service, total);
    }
    let k = tuner.recommend();
    assert!(
        (k as f64 / analytic as f64 - 1.0).abs() < 0.34,
        "tuner {k} vs analytic {analytic}"
    );
}
