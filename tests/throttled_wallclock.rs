//! Wall-clock validation: the threaded engine over a *throttled* duplex
//! (real sleeping rate limiter) shows the same qualitative behaviour the
//! virtual-time model predicts. Uses a fast link so the test stays quick —
//! the point is that real elapsed time scales the way the model says, not
//! to re-run the modem experiments in real time.

use std::sync::Arc;
use std::time::Instant;

use csq_client::synthetic::ObjectUdf;
use csq_client::{spawn_client, ClientRuntime};
use csq_common::{Blob, DataType, Field, Row, Schema, Value};
use csq_exec::{collect, RowsOp};
use csq_net::{throttled_duplex, NetworkSpec};
use csq_ship::{simulate_semijoin, SemiJoinSpec, ThreadedSemiJoin, UdfApplication};

fn runtime() -> Arc<ClientRuntime> {
    let rt = ClientRuntime::new();
    rt.register(Arc::new(ObjectUdf::sized("F", 500))).unwrap();
    Arc::new(rt)
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("arg", DataType::Blob)])
}

fn rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| Row::new(vec![Value::Blob(Blob::synthetic(495, i as u64))]))
        .collect()
}

fn app() -> UdfApplication {
    UdfApplication::new("F", vec![0], Field::new("res", DataType::Blob))
}

/// Run the threaded semi-join over a throttled link, returning wall seconds.
fn timed_run(net: &NetworkSpec, k: usize, n: usize) -> f64 {
    let (server, client, _) = throttled_duplex(net);
    let handle = spawn_client(runtime(), client).unwrap();
    let input = Box::new(RowsOp::new(schema(), rows(n)));
    let mut op = ThreadedSemiJoin::new(input, SemiJoinSpec::new(vec![app()], k), server).unwrap();
    let start = Instant::now();
    let out = collect(&mut op).unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(out.len(), n);
    drop(op);
    let _ = handle.join().unwrap();
    elapsed
}

#[test]
fn wallclock_concurrency_speedup_matches_model_direction() {
    // 100 KB/s symmetric with 40 ms latency: BDP ≈ 4 messages of ~1 KB.
    let net = NetworkSpec::symmetric(100_000.0, 40_000);
    let n = 24;
    let t1 = timed_run(&net, 1, n);
    let t8 = timed_run(&net, 8, n);
    assert!(
        t1 > t8 * 1.8,
        "concurrency must hide latency in wall-clock too: K=1 {t1:.3}s vs K=8 {t8:.3}s"
    );

    // The virtual-time model predicts the same direction. Its ratio is an
    // *upper bound* on the wall-clock one: the model's client hands
    // responses to the uplink asynchronously, while the real
    // single-threaded client blocks in its throttled send before receiving
    // the next request, which caps achievable pipelining at high
    // utilization.
    let sim1 = simulate_semijoin(
        &schema(),
        rows(n),
        &SemiJoinSpec::new(vec![app()], 1),
        runtime(),
        &net,
    )
    .unwrap();
    let sim8 = simulate_semijoin(
        &schema(),
        rows(n),
        &SemiJoinSpec::new(vec![app()], 8),
        runtime(),
        &net,
    )
    .unwrap();
    let wall_ratio = t1 / t8;
    let sim_ratio = sim1.elapsed_us as f64 / sim8.elapsed_us as f64;
    assert!(
        sim_ratio > wall_ratio * 0.8,
        "simulated ratio {sim_ratio:.2} should bound wall ratio {wall_ratio:.2}"
    );
    assert!(wall_ratio > 1.8, "wall ratio {wall_ratio:.2}");
}

#[test]
fn wallclock_absolute_time_tracks_model() {
    let net = NetworkSpec::symmetric(200_000.0, 10_000);
    let n = 20;
    let wall = timed_run(&net, 8, n);
    let sim = simulate_semijoin(
        &schema(),
        rows(n),
        &SemiJoinSpec::new(vec![app()], 8),
        runtime(),
        &net,
    )
    .unwrap();
    let predicted = sim.elapsed_secs();
    // Thread scheduling adds overhead; require agreement within 2× both ways.
    assert!(
        wall < predicted * 2.0 + 0.05 && wall > predicted * 0.5 - 0.05,
        "wall {wall:.3}s vs simulated {predicted:.3}s"
    );
}
