//! Property tests for the morsel-driven parallel engine (DESIGN.md §4):
//! random pipelines over random data must produce the same result through
//! the serial batch engine and the parallel engine at worker counts
//! 1/2/4/8 — *modulo each operator's declared ordering*:
//!
//! * [`ParallelPipeline`] in ordered mode preserves input order, so
//!   filter/project stage chains must match the serial operators **row for
//!   row**, and ill-typed pipelines must fail with the same error kind at
//!   the same deterministic position.
//! * [`Exchange`] operators are declared order-destroying (partition
//!   interleave), so partitioned distinct and hash join must match the
//!   serial operators **as multisets** — and for distinct, the *same*
//!   first-occurrence rows must survive, not merely the same keys.
//!
//! Failing seeds persist under `proptest-regressions/` (see the vendored
//! proptest shim) and the committed seeds replay on every `cargo test`.

use proptest::prelude::*;

use csq_common::{DataType, Field, Result, Row, Schema, Value};
use csq_exec::{
    collect, BoxOp, Distinct, Exchange, Filter, FilterStageFactory, HashJoin, ParallelOpts,
    ParallelPipeline, Project, ProjectStageFactory, RowsOp, StageFactory,
};
use csq_expr::{BinaryOp, PhysExpr};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("c0", DataType::Int),
        Field::new("c1", DataType::Int),
        Field::new("s", DataType::Str),
    ])
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        prop_oneof![(-6i64..6).prop_map(Value::Int), Just(Value::Null)],
        prop_oneof![(-6i64..6).prop_map(Value::Int), Just(Value::Null)],
        prop_oneof![
            (0usize..4).prop_map(|k| match k {
                0 => Value::from("a"),
                1 => Value::from("bb"),
                2 => Value::from("ccc"),
                _ => Value::from("a longer string payload"),
            }),
            Just(Value::Null),
        ],
    )
        .prop_map(|(a, b, c)| Row::new(vec![a, b, c]))
}

fn cmp_op(sel: u8) -> BinaryOp {
    match sel % 6 {
        0 => BinaryOp::Eq,
        1 => BinaryOp::NotEq,
        2 => BinaryOp::Lt,
        3 => BinaryOp::LtEq,
        4 => BinaryOp::Gt,
        _ => BinaryOp::GtEq,
    }
}

/// One filter/project stage, buildable both as a serial operator layer and
/// as a parallel [`StageFactory`].
#[derive(Debug, Clone)]
enum StageSpec {
    /// `col <op> lit` (typed fast path when col is the literal's type;
    /// general/erroring evaluation when it hits the string column).
    FilterCmp { col: u8, op: u8, lit: i64 },
    /// Bare-column projection, optionally plus a computed `c + c` column
    /// (in-place, move, and eval paths; the eval path can type-error).
    Project { cols: Vec<u8>, add_sum: bool },
}

fn arb_stage() -> impl Strategy<Value = StageSpec> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), -6i64..6).prop_map(|(col, op, lit)| StageSpec::FilterCmp {
            col,
            op,
            lit
        }),
        (prop::collection::vec(any::<u8>(), 1..4), any::<bool>())
            .prop_map(|(cols, add_sum)| StageSpec::Project { cols, add_sum }),
    ]
}

fn stage_pred(col: usize, op: u8, lit: i64) -> PhysExpr {
    PhysExpr::Binary {
        left: Box::new(PhysExpr::Column(col)),
        op: cmp_op(op),
        right: Box::new(PhysExpr::Literal(Value::Int(lit))),
    }
}

fn stage_exprs(
    width: usize,
    schema: &Schema,
    cols: &[u8],
    add_sum: bool,
) -> Vec<(PhysExpr, Field)> {
    let mut exprs: Vec<(PhysExpr, Field)> = cols
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let ord = *c as usize % width;
            let dtype = schema.field(ord).dtype;
            (PhysExpr::Column(ord), Field::new(format!("p{i}"), dtype))
        })
        .collect();
    if add_sum {
        let sum = PhysExpr::Binary {
            left: Box::new(PhysExpr::Column(0)),
            op: BinaryOp::Add,
            right: Box::new(PhysExpr::Column(0)),
        };
        exprs.push((sum, Field::new("sum", DataType::Int)));
    }
    exprs
}

/// The serial pipeline: Filter/Project operators stacked over the source.
fn build_serial(stages: &[StageSpec], rows: Vec<Row>) -> BoxOp {
    let mut op: BoxOp = Box::new(RowsOp::new(base_schema(), rows));
    for s in stages {
        let w = op.schema().len().max(1);
        op = match s {
            StageSpec::FilterCmp { col, op: sel, lit } => {
                Box::new(Filter::new(op, stage_pred(*col as usize % w, *sel, *lit)))
            }
            StageSpec::Project { cols, add_sum } => {
                let exprs = stage_exprs(w, op.schema(), cols, *add_sum);
                Box::new(Project::new(op, exprs))
            }
        };
    }
    op
}

/// The same stages as parallel stage factories (schemas tracked alongside).
fn build_factories(stages: &[StageSpec]) -> Vec<Box<dyn StageFactory>> {
    let mut schema = base_schema();
    let mut out: Vec<Box<dyn StageFactory>> = Vec::new();
    for s in stages {
        let w = schema.len().max(1);
        match s {
            StageSpec::FilterCmp { col, op: sel, lit } => {
                out.push(Box::new(FilterStageFactory::new(stage_pred(
                    *col as usize % w,
                    *sel,
                    *lit,
                ))));
            }
            StageSpec::Project { cols, add_sum } => {
                let exprs = stage_exprs(w, &schema, cols, *add_sum);
                schema = Schema::new(exprs.iter().map(|(_, f)| f.clone()).collect());
                out.push(Box::new(ProjectStageFactory::new(exprs)));
            }
        }
    }
    out
}

fn run_op(mut op: BoxOp) -> Result<Vec<Row>> {
    collect(op.as_mut())
}

fn opts(workers: usize, morsel_rows: usize, ordered: bool) -> ParallelOpts {
    ParallelOpts {
        workers,
        morsel_rows,
        ordered,
        ..ParallelOpts::default()
    }
}

fn sorted_display(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r}")).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serial_and_parallel_pipelines_agree(
        rows in prop::collection::vec(arb_row(), 0..140),
        stages in prop::collection::vec(arb_stage(), 0..4),
        morsel in 1usize..40,
    ) {
        let serial = run_op(build_serial(&stages, rows.clone()));
        for workers in WORKER_COUNTS {
            let scan: BoxOp = Box::new(RowsOp::new(base_schema(), rows.clone()));
            let par = ParallelPipeline::new(scan, build_factories(&stages), opts(workers, morsel, true))
                .and_then(|mut p| collect(&mut p));
            match (&serial, &par) {
                // Ordered mode: exact row-for-row equality.
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "workers = {}", workers),
                // Ill-typed pipelines fail with the same error kind (the
                // ordered gather surfaces the failing morsel's error at the
                // serial engine's position).
                (Err(a), Err(b)) => prop_assert_eq!(a.kind(), b.kind(), "workers = {}", workers),
                (a, b) => prop_assert!(false, "engines disagree at {workers} workers: serial={a:?} parallel={b:?}"),
            }
        }
    }

    #[test]
    fn serial_and_partitioned_distinct_agree(
        rows in prop::collection::vec(arb_row(), 0..140),
        on_key in any::<bool>(),
        key_col in any::<u8>(),
        morsel in 1usize..40,
    ) {
        let key = key_col as usize % base_schema().len();
        let serial = {
            let scan: BoxOp = Box::new(RowsOp::new(base_schema(), rows.clone()));
            let mut d: BoxOp = if on_key {
                Box::new(Distinct::on(scan, vec![key]))
            } else {
                Box::new(Distinct::all(scan))
            };
            collect(d.as_mut()).unwrap()
        };
        for workers in WORKER_COUNTS {
            let scan: BoxOp = Box::new(RowsOp::new(base_schema(), rows.clone()));
            let mut d = if on_key {
                Exchange::distinct_on(scan, vec![key], &opts(workers, morsel, false))
            } else {
                Exchange::distinct_all(scan, &opts(workers, morsel, false))
            };
            let par = collect(&mut d).unwrap();
            // Multiset equality is also row-identity equality here: the
            // same first-occurrence rows must survive, in any order.
            prop_assert_eq!(sorted_display(&par), sorted_display(&serial), "workers = {}", workers);
        }
    }

    #[test]
    fn serial_and_partitioned_hash_join_agree(
        probe in prop::collection::vec(arb_row(), 0..120),
        build in prop::collection::vec(arb_row(), 0..60),
        key_sel in any::<u8>(),
        morsel in 1usize..40,
    ) {
        // Join the Int columns (NULL keys never match, on both engines).
        let k = (key_sel as usize) % 2;
        let serial = {
            let l: BoxOp = Box::new(RowsOp::new(base_schema(), probe.clone()));
            let r: BoxOp = Box::new(RowsOp::new(base_schema(), build.clone()));
            let mut j = HashJoin::new(l, r, vec![k], vec![1 - k]);
            collect(&mut j).unwrap()
        };
        for workers in WORKER_COUNTS {
            let l: BoxOp = Box::new(RowsOp::new(base_schema(), probe.clone()));
            let r: BoxOp = Box::new(RowsOp::new(base_schema(), build.clone()));
            let mut j = Exchange::hash_join(l, r, vec![k], vec![1 - k], &opts(workers, morsel, false))
                .unwrap();
            let par = collect(&mut j).unwrap();
            prop_assert_eq!(sorted_display(&par), sorted_display(&serial), "workers = {}", workers);
        }
    }
}
