//! Chaos differential suite (DESIGN.md §10): the query service behind a
//! seeded, deterministic [`FaultInjector`] must degrade *typedly* — every
//! statement either returns the same rows the serial engine produces or a
//! typed error; never a hang, never a wrong answer — and clients with
//! retry/backoff must recover as soon as the committed fault schedule
//! clears. Also covers the deadline and out-of-band cancellation paths:
//! a timed-out or killed statement answers with `timeout`/`cancelled` and
//! frees its worker for the next statement.

use std::sync::Arc;
use std::time::Duration;

use csq::prelude::*;
use csq_client::Backoff;
use csq_core::service;
use csq_net::{fault_schedule, Fault, FaultInjector};
use csq_storage::TableBuilder;

/// Committed chaos seeds: every run replays these exact fault schedules.
const CHAOS_SEEDS: [u64; 3] = [0xC0FF_EE00, 42, 0x5EED_CAFE];
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_db(rows: usize) -> Arc<Database> {
    let db = Database::new(NetworkSpec::lan());
    let mut b = TableBuilder::new("T")
        .column("Id", DataType::Int)
        .column("Grp", DataType::Int)
        .column("Val", DataType::Int);
    for i in 0..rows {
        b = b.row(vec![
            Value::Int(i as i64),
            Value::Int((i % 7) as i64),
            Value::Int((i as i64 * 31) % 101 - 50),
        ]);
    }
    db.catalog().register(b.build().unwrap()).unwrap();
    Arc::new(db)
}

fn start_service(db: &Arc<Database>, config: ServiceConfig) -> service::ServiceHandle {
    service::start(db.clone(), config).expect("service must start")
}

fn normalize(rows: &[csq_common::Row]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r}")).collect();
    out.sort();
    out
}

/// A small deterministic workload; every statement is replay-safe SELECT.
fn workload() -> Vec<String> {
    vec![
        "SELECT T.Id, T.Val FROM T T WHERE T.Val > 0".into(),
        "SELECT T.Grp, count(*), sum(T.Val) FROM T T GROUP BY T.Grp".into(),
        "SELECT T.Id FROM T T WHERE T.Grp = 3".into(),
        "SELECT T.Grp, count(*) FROM T T GROUP BY T.Grp HAVING count(*) > 10".into(),
    ]
}

/// The capstone: seeded fault schedules at 1–8 clients. Every query either
/// matches the serial oracle or fails with a *typed* error; after the
/// schedule is exhausted (fault cleared) every client recovers.
#[test]
fn seeded_fault_schedules_yield_rows_or_typed_errors_and_recover() {
    let db = build_db(500);
    let queries = workload();
    let oracle: Vec<Vec<String>> = queries
        .iter()
        .map(|q| normalize(&db.execute(q).expect("oracle query must run").rows))
        .collect();

    for seed in CHAOS_SEEDS {
        for clients in CLIENT_COUNTS {
            let workers = clients.clamp(2, 4);
            let handle = start_service(
                &db,
                ServiceConfig {
                    workers,
                    max_sessions: 4 * clients + 8,
                    idle_timeout: Duration::from_millis(20),
                    // Statement-level shedding: once every worker is busy
                    // and two statements are already queued, further ones
                    // get a survivable retryable `limit` answer — chaos
                    // clients absorb it through their retry policy.
                    shed_queue_depth: 2,
                    ..ServiceConfig::default()
                },
            );
            let schedule = fault_schedule(seed ^ clients as u64, 12);
            let injector =
                FaultInjector::start(handle.local_addr(), schedule).expect("injector must start");
            // Connections no longer pin workers (the scheduler parks idle
            // sessions), so the pool can give every client thread its own
            // connection even above the worker count.
            let pool = Arc::new(
                ConnectionPool::new(injector.local_addr(), clients)
                    .expect("pool must build")
                    .with_checkout_wait(Duration::from_secs(10)),
            );

            let threads: Vec<_> = (0..clients)
                .map(|k| {
                    let pool = pool.clone();
                    let queries = queries.clone();
                    let oracle = oracle.clone();
                    std::thread::spawn(move || {
                        let opts = QueryOptions::new()
                            .with_deadline(Duration::from_secs(20))
                            .with_retry(RetryPolicy {
                                max_attempts: 6,
                                backoff: Backoff::new(
                                    Duration::from_millis(2),
                                    Duration::from_millis(50),
                                    seed ^ k as u64,
                                ),
                                deadline: None,
                            });
                        for (i, sql) in queries.iter().enumerate() {
                            match pool.query_with(sql, &opts) {
                                // Rows: must match the serial oracle exactly.
                                Ok(result) => assert_eq!(
                                    normalize(&result.rows),
                                    oracle[i],
                                    "client {k} query {i} returned wrong rows under faults"
                                ),
                                // No rows: the error must be typed, i.e. one
                                // of the protocol's named kinds (the kinds
                                // a fault can legitimately surface as).
                                Err(e) => assert!(
                                    matches!(e.kind(), "net" | "codec" | "timeout" | "limit"),
                                    "client {k} query {i}: fault surfaced untyped: {e}"
                                ),
                            }
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().expect("no client may panic or hang");
            }

            // Fault cleared: the schedule is exhausted (later connections
            // are healthy passthrough), so every client recovers.
            let relaxed = QueryOptions::new()
                .with_deadline(Duration::from_secs(20))
                .with_retry(RetryPolicy {
                    max_attempts: 8,
                    backoff: Backoff::new(
                        Duration::from_millis(2),
                        Duration::from_millis(50),
                        seed,
                    ),
                    deadline: None,
                });
            let result = pool
                .query_with(&queries[0], &relaxed)
                .expect("clients must recover once the fault schedule clears");
            assert_eq!(normalize(&result.rows), oracle[0]);

            drop(pool);
            injector.shutdown();
            handle.shutdown();
        }
    }
}

/// A statement whose deadline expires dies server-side with a typed
/// `timeout`, the session survives, and the service counts it.
#[test]
fn expired_deadline_answers_typed_timeout_and_keeps_the_session() {
    let db = build_db(4_000);
    let handle = start_service(&db, ServiceConfig::default());
    let mut conn = ServiceConn::connect(handle.local_addr()).expect("connect");

    // A quadratic self-join: long enough that a 1ms deadline always
    // expires at a cancellation checkpoint mid-execution.
    let heavy = "SELECT A.Id FROM T A, T B WHERE A.Val > B.Val";
    let err = conn
        .query_with(
            heavy,
            &QueryOptions::new().with_deadline(Duration::from_millis(1)),
        )
        .expect_err("1ms deadline must kill the self-join");
    assert_eq!(err.kind(), "timeout", "{err}");
    assert_eq!(
        conn.last_error_retryable(),
        Some(true),
        "a deadline kill is retryable by classification"
    );
    assert!(!conn.is_broken(), "timeout is a statement error, not fatal");

    // Same session keeps working afterwards.
    let quick = conn
        .query("SELECT T.Id FROM T T WHERE T.Id = 1")
        .expect("session must survive a timed-out statement");
    assert_eq!(quick.rows.len(), 1);
    assert!(
        handle
            .stats()
            .timed_out
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    conn.close();
    handle.shutdown();
}

/// The acceptance demo: an out-of-band `CancelQuery` kills a long-running
/// statement with a typed `cancelled` error, and the freed session worker
/// serves the next client.
#[test]
fn cancel_query_kills_the_statement_and_frees_the_worker() {
    let db = build_db(6_000);
    let handle = start_service(
        &db,
        ServiceConfig {
            // Cancels are handled by the scheduler, not a worker, so even
            // a fully busy pool stays cancellable; two workers just keep
            // the post-cancel probe query snappy.
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let addr = handle.local_addr();

    let mut victim = ServiceConn::connect(addr).expect("victim connects");
    let ticket = victim.session_info().expect("session ticket");

    let runner = std::thread::spawn(move || {
        // No deadline: only the out-of-band cancel can stop this.
        let err = victim
            .query("SELECT A.Id FROM T A, T B WHERE A.Val > B.Val")
            .expect_err("the cancel must kill this statement");
        let alive = !victim.is_broken();
        victim.close();
        (err, alive)
    });

    // Fire cancels until the statement dies (it may not have started yet;
    // a cancel that finds no running statement is a silent no-op).
    let mut canceller = ServiceConn::connect(addr).expect("canceller connects");
    let (err, session_alive) = loop {
        canceller.cancel_query(ticket).expect("cancel sends");
        std::thread::sleep(Duration::from_millis(20));
        if runner.is_finished() {
            break runner.join().expect("victim thread");
        }
    };
    assert_eq!(err.kind(), "cancelled", "{err}");
    assert!(session_alive, "cancellation must not poison the session");
    canceller.close();

    // The freed worker serves the next client promptly.
    let mut next = ServiceConn::connect(addr).expect("next client connects");
    let result = next
        .query("SELECT T.Id FROM T T WHERE T.Id = 0")
        .expect("freed worker must serve the next client");
    assert_eq!(result.rows.len(), 1);
    assert!(
        handle
            .stats()
            .cancelled
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    next.close();
    handle.shutdown();
}

/// Queue-depth load shedding refuses a *statement* with a **retryable**
/// `limit` error the session survives, while the hard admission bound
/// stays fatal and per-connection.
#[test]
fn load_shedding_refuses_retryably() {
    let db = build_db(4_000);
    let handle = start_service(
        &db,
        ServiceConfig {
            workers: 1,
            max_sessions: 16,
            shed_queue_depth: 0, // shed anything that would have to queue
            ..ServiceConfig::default()
        },
    );
    let addr = handle.local_addr();

    // Occupy the only worker with a long-running statement (bounded by its
    // own deadline, so the test cannot hang).
    let holder = std::thread::spawn(move || {
        let mut conn = ServiceConn::connect(addr).expect("holder connects");
        let heavy = "SELECT A.Id FROM T A, T B WHERE A.Val > B.Val";
        // Either outcome is fine — the statement only needs to *occupy*
        // the worker long enough for the shed below.
        let _ = conn.query_with(
            heavy,
            &QueryOptions::new().with_deadline(Duration::from_secs(3)),
        );
        conn.close();
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle
        .scheduler_stats()
        .executing_statements
        .load(std::sync::atomic::Ordering::Relaxed)
        < 1
    {
        assert!(
            std::time::Instant::now() < deadline,
            "holder statement never reached a worker"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // A second client's statement is shed: typed limit error, explicitly
    // retryable, and the *session stays open* (statement-level shedding).
    let mut shed = ServiceConn::connect(addr).expect("shed client connects");
    let err = shed
        .query("SELECT T.Id FROM T T WHERE T.Id = 0")
        .expect_err("queue-depth shedding must refuse");
    assert_eq!(err.kind(), "limit", "{err}");
    assert_eq!(
        shed.last_error_retryable(),
        Some(true),
        "a shed refusal must tell the client to retry"
    );
    assert!(
        !shed.is_broken(),
        "shedding refuses the statement, not the connection"
    );
    assert!(
        handle
            .stats()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    // Once the holder's statement finishes, a retry on the *same shed
    // connection* gets through.
    holder.join().expect("holder thread");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let result = loop {
        match shed.query("SELECT T.Id FROM T T WHERE T.Id = 0") {
            Ok(r) => break r,
            Err(e) => {
                assert_eq!(e.kind(), "limit", "only shed refusals expected: {e}");
                assert!(
                    std::time::Instant::now() < deadline,
                    "shed client never got through after the holder left"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    assert_eq!(result.rows.len(), 1);
    shed.close();
    handle.shutdown();
}

/// Transient connection-killing faults are absorbed by retry/backoff: the
/// client replays (zero rows were delivered) and lands the right answer.
#[test]
fn retry_with_backoff_rides_out_transient_faults() {
    let db = build_db(300);
    let handle = start_service(&db, ServiceConfig::default());
    let schedule = vec![Fault::DropAfter(0), Fault::Refuse, Fault::None];
    let injector = FaultInjector::start(handle.local_addr(), schedule).expect("injector");
    let pool = ConnectionPool::new(injector.local_addr(), 1).expect("pool");

    let oracle = normalize(&db.execute(&workload()[0]).unwrap().rows);
    let result = pool
        .query_with(
            &workload()[0],
            &QueryOptions::new()
                .with_deadline(Duration::from_secs(10))
                .with_retry(RetryPolicy {
                    max_attempts: 6,
                    backoff: Backoff::new(Duration::from_millis(2), Duration::from_millis(30), 11),
                    deadline: None,
                }),
        )
        .expect("the third connection is healthy; retries must reach it");
    assert_eq!(normalize(&result.rows), oracle);
    assert!(
        injector.connections() >= 3,
        "success requires riding through both faulted connections"
    );
    injector.shutdown();
    handle.shutdown();
}
