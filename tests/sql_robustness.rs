//! SQL front-end robustness: fuzzed inputs never panic, and parse→display
//! →parse is stable for expression trees.

use proptest::prelude::*;

use csq_expr::{BinaryOp, Expr};
use csq_sql::{parse_expression, parse_statement, parse_statements};

/// Identifiers must avoid the parser's reserved words (the SQL subset has
/// no quoted identifiers, matching the paper's queries).
fn is_reserved(s: &str) -> bool {
    const KW: &[&str] = &[
        "select", "from", "where", "and", "or", "not", "as", "create", "table", "insert", "into",
        "values", "true", "false", "null", "group", "by", "having",
    ];
    KW.contains(&s.to_ascii_lowercase().as_str())
}

/// Aggregate function names are contextual keywords: `sum(x)` parses as an
/// aggregate, so generated UDF names must avoid them.
fn is_aggregate_name(s: &str) -> bool {
    const AGG: &[&str] = &["count", "sum", "min", "max", "avg"];
    AGG.contains(&s.to_ascii_lowercase().as_str())
}

fn arb_ident(pattern: &'static str) -> impl Strategy<Value = String> {
    pattern.prop_filter("identifier collides with keyword", |s: &String| {
        !is_reserved(s) && !is_aggregate_name(s)
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1i64..1000).prop_map(Expr::lit),
        (0.5f64..100.0).prop_map(Expr::lit),
        arb_ident("[a-z][a-z0-9]{0,6}").prop_map(|s| Expr::col_bare(&s)),
        (
            arb_ident("[A-Z][a-z]{0,6}"),
            arb_ident("[a-z][a-z0-9]{0,6}")
        )
            .prop_map(|(q, c)| Expr::col(&q, &c)),
        Just(Expr::lit(true)),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Add, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Lt, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Or, b)),
            (
                arb_ident("[A-Z][a-z]{0,5}"),
                prop::collection::vec(inner, 1..3)
            )
                .prop_map(|(name, args)| Expr::udf(&name, args)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn display_then_parse_is_identity(e in arb_expr()) {
        let text = e.to_string();
        let reparsed = parse_expression(&text).unwrap();
        // Display adds parentheses, so compare displays (canonical form).
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "[ -~]{0,80}") {
        let _ = parse_statement(&s);
        let _ = parse_statements(&s);
        let _ = parse_expression(&s);
    }

    #[test]
    fn parser_never_panics_on_keyword_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("FROM".to_string()),
                Just("WHERE".to_string()), Just("AND".to_string()),
                Just("INSERT".to_string()), Just("VALUES".to_string()),
                Just("GROUP".to_string()), Just("BY".to_string()),
                Just("HAVING".to_string()), Just("COUNT".to_string()),
                Just("SUM".to_string()), Just("AVG".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just(",".to_string()), Just("*".to_string()),
                Just("t".to_string()), Just("1".to_string()),
                Just("'x'".to_string()),
            ],
            0..16,
        )
    ) {
        let s = words.join(" ");
        let _ = parse_statement(&s);
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut e = String::from("1");
    for _ in 0..200 {
        e = format!("({e} + 1)");
    }
    let sql = format!("SELECT {e} FROM t");
    // Must not stack-overflow; success or graceful error both acceptable.
    let _ = parse_statement(&sql);
}

mod grouped {
    use csq_core::Database;
    use csq_expr::{AggFunc, Expr};
    use csq_net::NetworkSpec;
    use csq_sql::{parse_expression, parse_statement, Statement};

    fn select(sql: &str) -> csq_sql::SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn group_by_having_parse_to_ast() {
        let sel = select(
            "SELECT T.k, COUNT(*), SUM(T.v) AS total FROM T T \
             WHERE T.v > 0 GROUP BY T.k HAVING COUNT(*) > 2",
        );
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.group_by, vec![Expr::col("T", "k")]);
        let having = sel.having.as_ref().unwrap();
        assert_eq!(having.to_string(), "(COUNT(*) > 2)");
        // Aggregate AST shape.
        match &sel.items[1] {
            csq_sql::ast::SelectItem::Expr { expr, .. } => {
                assert_eq!(expr, &Expr::agg(AggFunc::Count, None));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregate_display_reparses_to_identical_ast() {
        // parse → AST → display → parse is stable for every aggregate form.
        for text in [
            "COUNT(*)",
            "SUM(x)",
            "MIN(T.a)",
            "MAX((a + b))",
            "AVG(x)",
            "(SUM(x) > (COUNT(*) * 2))",
        ] {
            let e = parse_expression(text).unwrap();
            let redisplayed = e.to_string();
            let reparsed = parse_expression(&redisplayed).unwrap();
            assert_eq!(reparsed, e, "{text}");
        }
    }

    #[test]
    fn grouped_statement_relowers_through_reparse() {
        // parse → AST → re-render the clauses → parse again: clause-level
        // round trip (the statement has no Display; clauses do).
        let sel = select("SELECT T.k, AVG(T.v) FROM T T GROUP BY T.k HAVING AVG(T.v) > 1.5");
        let items: Vec<String> = sel
            .items
            .iter()
            .map(|i| match i {
                csq_sql::ast::SelectItem::Expr { expr, .. } => expr.to_string(),
                _ => unreachable!(),
            })
            .collect();
        let sql2 = format!(
            "SELECT {} FROM T T GROUP BY {} HAVING {}",
            items.join(", "),
            sel.group_by[0],
            sel.having.as_ref().unwrap()
        );
        let sel2 = select(&sql2);
        assert_eq!(sel2.items, sel.items);
        assert_eq!(sel2.group_by, sel.group_by);
        assert_eq!(sel2.having, sel.having);
    }

    fn grouped_db() -> Database {
        let db = Database::new(NetworkSpec::lan());
        db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (2, NULL), (3, 7)")
            .unwrap();
        db
    }

    #[test]
    fn grouped_query_executes_end_to_end() {
        let db = grouped_db();
        let out = db
            .execute(
                "SELECT t.k, COUNT(*), COUNT(t.v), SUM(t.v), AVG(t.v) \
                 FROM t t GROUP BY t.k",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 3);
        let table = out.to_table();
        assert!(table.contains("COUNT(*)"), "{table}");
        // Group k=1: 2 rows, sum 30, avg 15.
        assert!(table.contains("1 | 2 | 2 | 30 | 15"), "{table}");
        // Group k=2: COUNT(*)=2 but COUNT(v)=1 (one NULL).
        assert!(table.contains("2 | 2 | 1 | 5 | 5"), "{table}");
    }

    #[test]
    fn having_filters_groups() {
        let db = grouped_db();
        let out = db
            .execute("SELECT t.k FROM t t GROUP BY t.k HAVING COUNT(*) > 1")
            .unwrap();
        assert_eq!(out.rows.len(), 2, "{}", out.to_table());
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = grouped_db();
        let out = db.execute("SELECT COUNT(*), MAX(t.v) FROM t t").unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.to_table().contains("5 | 20"), "{}", out.to_table());
    }

    #[test]
    fn rejection_non_grouped_column_in_select() {
        let db = grouped_db();
        let err = db
            .execute("SELECT t.v, COUNT(*) FROM t t GROUP BY t.k")
            .unwrap_err();
        assert_eq!(err.kind(), "plan");
        assert!(err.message().contains("GROUP BY"), "{}", err.message());
    }

    #[test]
    fn rejection_having_without_group_by() {
        let db = grouped_db();
        let err = db
            .execute("SELECT t.k FROM t t HAVING COUNT(*) > 1")
            .unwrap_err();
        assert_eq!(err.kind(), "plan");
        assert!(
            err.message().contains("HAVING requires"),
            "{}",
            err.message()
        );
    }

    #[test]
    fn rejection_aggregate_of_aggregate() {
        // A parse-level rejection: nesting is caught before planning.
        let err = parse_statement("SELECT SUM(COUNT(*)) FROM t t GROUP BY t.k").unwrap_err();
        assert_eq!(err.kind(), "parse");
        assert!(err.message().contains("nested"), "{}", err.message());
    }

    #[test]
    fn rejection_aggregate_in_where() {
        let db = grouped_db();
        let err = db
            .execute("SELECT t.k FROM t t WHERE COUNT(*) > 1 GROUP BY t.k")
            .unwrap_err();
        assert_eq!(err.kind(), "plan");
        assert!(err.message().contains("WHERE"), "{}", err.message());
    }

    #[test]
    fn rejection_wildcard_with_group_by() {
        let db = grouped_db();
        assert_eq!(
            db.execute("SELECT * FROM t t GROUP BY t.k")
                .unwrap_err()
                .kind(),
            "plan"
        );
    }

    #[test]
    fn duplicate_group_by_keys_dedup() {
        // `GROUP BY t.k, t.k` is legal SQL and groups identically to one
        // key; the duplicate must not leak into the output schema (where
        // it would make the final projection ambiguous).
        let db = grouped_db();
        let out = db
            .execute("SELECT t.k, COUNT(*) FROM t t GROUP BY t.k, t.k")
            .unwrap();
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn udf_named_like_an_aggregate_is_rejected_at_registration() {
        // `max(x)` always parses as the aggregate, so a scalar UDF named
        // "Max" could never be invoked — registration must fail loudly
        // instead of letting the aggregate silently shadow it.
        use csq_core::synthetic::ObjectUdf;
        use std::sync::Arc;
        let db = grouped_db();
        let err = db
            .register_udf(Arc::new(ObjectUdf::sized("Max", 10)))
            .unwrap_err();
        assert_eq!(err.kind(), "plan");
        assert!(err.message().contains("aggregate"), "{}", err.message());
        // Non-colliding names still register.
        db.register_udf(Arc::new(ObjectUdf::sized("Maximal", 10)))
            .unwrap();
    }

    #[test]
    fn explain_shows_aggregate_placement() {
        let db = grouped_db();
        let plan = db
            .explain("SELECT t.k, SUM(t.v) FROM t t GROUP BY t.k")
            .unwrap();
        assert!(plan.contains("Aggregate ["), "{plan}");
        assert!(
            plan.contains("client-only") || plan.contains("server-partial"),
            "{plan}"
        );
    }
}

#[test]
fn statement_display_of_results_and_explain() {
    use csq_core::Database;
    use csq_net::NetworkSpec;
    let db = Database::new(NetworkSpec::lan());
    db.execute("CREATE TABLE t (a INT, b STRING)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    let out = db.execute("SELECT t.a AS n, t.b FROM t t").unwrap();
    let table = out.to_table();
    assert!(table.contains("n | t.b"), "{table}");
    assert!(table.contains("1 | 'x'"), "{table}");
    let plan = db.explain("SELECT t.a FROM t t WHERE t.a = 1").unwrap();
    assert!(plan.contains("Scan t"), "{plan}");
    assert!(plan.contains("Filter"), "{plan}");
}
