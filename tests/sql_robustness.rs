//! SQL front-end robustness: fuzzed inputs never panic, and parse→display
//! →parse is stable for expression trees.

use proptest::prelude::*;

use csq_expr::{BinaryOp, Expr};
use csq_sql::{parse_expression, parse_statement, parse_statements};

/// Identifiers must avoid the parser's reserved words (the SQL subset has
/// no quoted identifiers, matching the paper's queries).
fn is_reserved(s: &str) -> bool {
    const KW: &[&str] = &[
        "select", "from", "where", "and", "or", "not", "as", "create", "table", "insert", "into",
        "values", "true", "false", "null",
    ];
    KW.contains(&s.to_ascii_lowercase().as_str())
}

fn arb_ident(pattern: &'static str) -> impl Strategy<Value = String> {
    pattern.prop_filter("identifier collides with keyword", |s: &String| {
        !is_reserved(s)
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1i64..1000).prop_map(Expr::lit),
        (0.5f64..100.0).prop_map(Expr::lit),
        arb_ident("[a-z][a-z0-9]{0,6}").prop_map(|s| Expr::col_bare(&s)),
        (
            arb_ident("[A-Z][a-z]{0,6}"),
            arb_ident("[a-z][a-z0-9]{0,6}")
        )
            .prop_map(|(q, c)| Expr::col(&q, &c)),
        Just(Expr::lit(true)),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Add, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Lt, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Or, b)),
            (
                arb_ident("[A-Z][a-z]{0,5}"),
                prop::collection::vec(inner, 1..3)
            )
                .prop_map(|(name, args)| Expr::udf(&name, args)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn display_then_parse_is_identity(e in arb_expr()) {
        let text = e.to_string();
        let reparsed = parse_expression(&text).unwrap();
        // Display adds parentheses, so compare displays (canonical form).
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "[ -~]{0,80}") {
        let _ = parse_statement(&s);
        let _ = parse_statements(&s);
        let _ = parse_expression(&s);
    }

    #[test]
    fn parser_never_panics_on_keyword_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("FROM".to_string()),
                Just("WHERE".to_string()), Just("AND".to_string()),
                Just("INSERT".to_string()), Just("VALUES".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just(",".to_string()), Just("*".to_string()),
                Just("t".to_string()), Just("1".to_string()),
                Just("'x'".to_string()),
            ],
            0..16,
        )
    ) {
        let s = words.join(" ");
        let _ = parse_statement(&s);
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    let mut e = String::from("1");
    for _ in 0..200 {
        e = format!("({e} + 1)");
    }
    let sql = format!("SELECT {e} FROM t");
    // Must not stack-overflow; success or graceful error both acceptable.
    let _ = parse_statement(&sql);
}

#[test]
fn statement_display_of_results_and_explain() {
    use csq_core::Database;
    use csq_net::NetworkSpec;
    let db = Database::new(NetworkSpec::lan());
    db.execute("CREATE TABLE t (a INT, b STRING)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    let out = db.execute("SELECT t.a AS n, t.b FROM t t").unwrap();
    let table = out.to_table();
    assert!(table.contains("n | t.b"), "{table}");
    assert!(table.contains("1 | 'x'"), "{table}");
    let plan = db.explain("SELECT t.a FROM t t WHERE t.a = 1").unwrap();
    assert!(plan.contains("Scan t"), "{plan}");
    assert!(plan.contains("Filter"), "{plan}");
}
