//! Property-based tests (proptest) on the core invariants.

use std::sync::Arc;

use proptest::prelude::*;

use csq_client::synthetic::ObjectUdf;
use csq_client::ClientRuntime;
use csq_common::codec::{decode_rows, encode_rows, Decoder};
use csq_common::{Blob, DataType, Field, Row, Schema, Value};
use csq_net::{Link, NetworkSpec};
use csq_ship::{
    simulate_client_join, simulate_semijoin, ClientJoinSpec, SemiJoinSpec, UdfApplication,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ']{0,24}".prop_map(Value::from),
        (0usize..200, any::<u64>()).prop_map(|(n, s)| Value::Blob(Blob::synthetic(n, s))),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..6).prop_map(Row::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_any_row_batch(rows in prop::collection::vec(arb_row(), 0..12)) {
        let mut buf = Vec::new();
        encode_rows(&rows, &mut buf);
        let decoded = decode_rows(&buf).unwrap();
        prop_assert_eq!(decoded, rows);
    }

    #[test]
    fn codec_size_contract_holds(v in arb_value()) {
        let mut buf = Vec::new();
        csq_common::codec::encode_value(&v, &mut buf);
        prop_assert_eq!(buf.len(), v.wire_size());
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(d.value().unwrap(), v);
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding must fail gracefully, never panic.
        let _ = decode_rows(&bytes);
        let mut d = Decoder::new(&bytes);
        let _ = d.value();
        let _ = d.row();
    }

    #[test]
    fn link_transmission_is_monotone_and_additive(
        sizes in prop::collection::vec(1usize..10_000, 1..20),
        bw in 100.0f64..1e7,
        latency in 0u64..1_000_000,
    ) {
        let mut link = Link::new(bw, latency);
        let mut last_arrival = 0;
        let mut total = 0u64;
        for s in &sizes {
            let (tx_done, arrival) = link.transmit(0, *s);
            prop_assert!(arrival >= last_arrival, "arrivals are FIFO");
            prop_assert!(arrival == tx_done + latency);
            last_arrival = arrival;
            total += *s as u64;
        }
        prop_assert_eq!(link.bytes_sent(), total);
        // Busy time ≈ total bytes / bandwidth (ceil per message).
        let min_busy = (total as f64 / bw * 1e6) as u64;
        prop_assert!(link.busy_time() >= min_busy);
        prop_assert!(link.busy_time() <= min_busy + sizes.len() as u64 + 1);
    }

    #[test]
    fn semijoin_preserves_cardinality_and_order(
        n in 1usize..40,
        distinct in 1usize..40,
        k in 1usize..12,
        batch in 1usize..5,
        sorted in any::<bool>(),
    ) {
        let distinct = distinct.min(n);
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("arg", DataType::Blob),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![
                Value::Int(i as i64),
                Value::Blob(Blob::synthetic(32, (i % distinct) as u64)),
            ]))
            .collect();
        let rt = ClientRuntime::new();
        rt.register(Arc::new(ObjectUdf::sized("F", 16))).unwrap();
        let rt = Arc::new(rt);
        let mut spec = SemiJoinSpec::new(
            vec![UdfApplication::new("F", vec![1], Field::new("r", DataType::Blob))],
            k,
        );
        spec.batch_size = batch;
        spec.sorted = sorted;
        let run = simulate_semijoin(&schema, rows.clone(), &spec, rt.clone(), &NetworkSpec::lan()).unwrap();
        // One output per input; UDF invoked once per distinct argument.
        prop_assert_eq!(run.rows.len(), n);
        prop_assert_eq!(rt.invocations(), distinct as u64);
        if !sorted {
            // Input order preserved.
            for (i, r) in run.rows.iter().enumerate() {
                prop_assert_eq!(r.value(0), &Value::Int(i as i64));
            }
        }
        // Duplicate arguments ⇒ duplicate results.
        for a in &run.rows {
            for b in &run.rows {
                if a.value(1) == b.value(1) {
                    prop_assert_eq!(a.value(2), b.value(2));
                }
            }
        }
    }

    #[test]
    fn semijoin_never_ships_more_than_client_join(
        n in 1usize..30,
        distinct in 1usize..30,
        arg_size in 1usize..200,
        extra_size in 0usize..200,
    ) {
        let distinct = distinct.min(n);
        let schema = Schema::new(vec![
            Field::new("arg", DataType::Blob),
            Field::new("extra", DataType::Blob),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![
                Value::Blob(Blob::synthetic(arg_size, (i % distinct) as u64)),
                Value::Blob(Blob::synthetic(extra_size, 5000 + i as u64)),
            ]))
            .collect();
        let rt = || {
            let rt = ClientRuntime::new();
            rt.register(Arc::new(ObjectUdf::sized("F", 32))).unwrap();
            Arc::new(rt)
        };
        let app = UdfApplication::new("F", vec![0], Field::new("r", DataType::Blob));
        let sj = simulate_semijoin(
            &schema, rows.clone(),
            &SemiJoinSpec::new(vec![app.clone()], 8),
            rt(), &NetworkSpec::lan(),
        ).unwrap();
        let csj = simulate_client_join(
            &schema, rows,
            &ClientJoinSpec::new(vec![app]),
            rt(), &NetworkSpec::lan(),
        ).unwrap();
        // §3.2: SJ downlink D·A·I ≤ CSJ downlink I (argument subset, dedup).
        prop_assert!(sj.down_bytes <= csj.down_bytes,
            "sj {} vs csj {}", sj.down_bytes, csj.down_bytes);
        prop_assert_eq!(sj.rows.len(), csj.rows.len());
    }

    #[test]
    fn cost_model_relative_time_positive_and_consistent(
        a in 0.05f64..1.0,
        d in 0.05f64..1.0,
        s in 0.0f64..1.0,
        i in 10.0f64..10_000.0,
        r in 1.0f64..10_000.0,
        n in 1.0f64..200.0,
    ) {
        let p = csq_cost::CostParams { a, d, s, p: 1.0, i, r, n }.with_paper_projection();
        prop_assert!(p.validate().is_ok(), "{:?}", p.validate());
        let rel = csq_cost::relative_time(&p);
        prop_assert!(rel.is_finite() && rel > 0.0);
        // Chooser agrees with relative time.
        let strat = csq_cost::choose_strategy(&p);
        if rel < 1.0 {
            prop_assert_eq!(strat, csq_cost::Strategy::ClientJoin);
        } else {
            prop_assert_eq!(strat, csq_cost::Strategy::SemiJoin);
        }
        // Monotonicity: higher selectivity never helps the client join.
        let mut p2 = p;
        p2.s = (s + 0.1).min(1.0);
        prop_assert!(csq_cost::relative_time(&p2) >= rel - 1e-12);
    }

    #[test]
    fn vm_always_terminates_under_fuel(
        ops in prop::collection::vec(0u8..12, 1..60),
        arg in any::<i64>(),
    ) {
        use csq_client::vm::{execute, Instr, Program, VmLimits};
        // Generate a random (valid-jump-free) arithmetic program.
        let mut instrs = vec![Instr::PushInt(arg)];
        for op in ops {
            instrs.push(match op {
                0 => Instr::PushInt(3),
                1 => Instr::PushFloat(0.5),
                2 => Instr::Add,
                3 => Instr::Sub,
                4 => Instr::Mul,
                5 => Instr::Dup,
                6 => Instr::Pop,
                7 => Instr::Swap,
                8 => Instr::Eq,
                9 => Instr::Lt,
                10 => Instr::PushBool(true),
                _ => Instr::PushInt(-1),
            });
        }
        instrs.push(Instr::Return);
        let program = Program::new(instrs).unwrap();
        // Must terminate (ok or error) without panicking, within limits.
        let _ = execute(&program, &[], VmLimits {
            fuel: 10_000,
            stack: 64,
            alloc_bytes: 1024,
        });
    }
}
