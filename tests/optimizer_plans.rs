//! §5 optimizer scenarios: the plan-shape choices of Figures 12 and 13 as
//! network/workload parameters vary, plus the rank-order baseline ablation.

use csq_common::{DataType, Field, Schema};
use csq_net::NetworkSpec;
use csq_opt::{
    optimize, rank_order_baseline, OptContext, PlanNode, TableStats, UdfMeta, UdfStrategy,
};
use csq_sql::{parse_statement, Statement};

fn select(sql: &str) -> csq_sql::SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Select(s) => s,
        _ => unreachable!(),
    }
}

/// The Figure 11 environment: StockQuotes (big Quotes blobs) ⋈ Estimations.
fn fig11_ctx(net: NetworkSpec) -> OptContext {
    let mut ctx = OptContext::new(net);
    ctx.add_table(
        "StockQuotes",
        TableStats {
            schema: Schema::new(vec![
                Field::new("Name", DataType::Str),
                Field::new("Quotes", DataType::Blob),
                Field::new("FuturePrices", DataType::Blob),
            ]),
            rows: 100.0,
            row_bytes: 2025.0,
            col_bytes: vec![25.0, 1000.0, 1000.0],
        },
    );
    ctx.add_table(
        "Estimations",
        TableStats {
            schema: Schema::new(vec![
                Field::new("CompanyName", DataType::Str),
                Field::new("BrokerName", DataType::Str),
                Field::new("Rating", DataType::Int),
            ]),
            rows: 1000.0,
            row_bytes: 59.0,
            col_bytes: vec![25.0, 25.0, 9.0],
        },
    );
    ctx
}

const FIG11: &str = "SELECT S.Name, E.BrokerName \
                     FROM StockQuotes S, Estimations E \
                     WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating";

fn udf_strategies(plan: &PlanNode) -> Vec<UdfStrategy> {
    plan.udf_applications()
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

#[test]
fn small_results_pick_semijoin() {
    // Tiny results, symmetric fast-ish network: the semi-join ships only
    // 1000-byte argument blobs + 9-byte results; shipping whole records
    // (CSJ) cannot win.
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0)
            .with_selectivity(0.001),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let strategies = udf_strategies(&plan.root);
    assert_eq!(strategies.len(), 1);
    assert!(
        matches!(strategies[0], UdfStrategy::SemiJoin { .. }),
        "{}",
        plan.root.explain(&g)
    );
}

#[test]
fn huge_results_on_slow_uplink_pick_client_join_with_pushdown() {
    // 50 KB results over a 28.8k uplink with a selective predicate: the
    // client-site join pushes `ClientAnalysis(S.Quotes) = E.Rating` and
    // ships only survivors; the semi-join must return every huge result.
    let mut ctx = fig11_ctx(NetworkSpec::cable_asymmetric());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(50_000.0)
            .with_selectivity(0.01),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let strategies = udf_strategies(&plan.root);
    // Any uplink-avoiding strategy qualifies: a client-site join with the
    // predicate pushed, or a semi-join that leaves the huge results at the
    // client and filters on delivery (the optimizer may find the latter,
    // which is strictly better — it also dedups arguments).
    let explain = plan.root.explain(&g);
    let avoids_uplink = strategies.iter().any(|s| {
        matches!(
            s,
            UdfStrategy::ClientJoin { pushed_preds, .. } if !pushed_preds.is_empty()
        ) || matches!(
            s,
            UdfStrategy::SemiJoin {
                leave_on_client: true
            } | UdfStrategy::ClientJoin {
                merged_with_final: true,
                ..
            }
        )
    });
    assert!(avoids_uplink, "{explain}");
    // And it must beat the plain return-everything baseline decisively.
    let base = rank_order_baseline(&g, &ctx).unwrap();
    assert!(
        plan.cost_seconds < base.cost_seconds * 0.2,
        "full {} vs baseline {}\n{explain}",
        plan.cost_seconds,
        base.cost_seconds
    );
}

#[test]
fn selective_join_places_udf_after_join() {
    // Fig 12(b): "the number of tuples and/or the number of distinct
    // argument tuples in the relation might be reduced by the join". Here a
    // selective broker filter plus the equi-join leaves ~10 of 100 stocks,
    // so applying the UDF after the join ships far fewer argument blobs.
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0)
            .with_selectivity(0.5),
    );
    let sql = "SELECT S.Name, E.BrokerName \
               FROM StockQuotes S, Estimations E \
               WHERE S.Name = E.CompanyName AND E.BrokerName = 'goldman' \
                 AND ClientAnalysis(S.Quotes) = E.Rating";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    // Find the UDF unit index.
    let udf_unit = g.n_rels; // first UDF unit
    assert!(
        plan.root.udf_after_join(udf_unit),
        "{}",
        plan.root.explain(&g)
    );
}

#[test]
fn exploding_join_keeps_semijoin_insensitive() {
    // §5's point (b): client-site joins are duplicate-sensitive, semi-joins
    // are not. After a row-multiplying join (10 estimations per company),
    // the optimizer must not pick a client-site join that ships every
    // duplicated record when the semi-join dedups arguments.
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(500.0)
            .with_selectivity(0.3),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    // Whatever the placement, a duplicate-blind whole-record CSJ after the
    // exploding join must not be chosen over the dedup'ing semi-join.
    let after_join_csj =
        plan.root.udf_applications().iter().any(|(u, s)| {
            matches!(s, UdfStrategy::ClientJoin { .. }) && plan.root.udf_after_join(*u)
        });
    assert!(!after_join_csj, "{}", plan.root.explain(&g));
}

#[test]
fn final_merge_or_leave_chosen_when_output_is_udf_result() {
    // Fig 12(d): the query returns the UDF result itself; with no further
    // server-site operation the optimizer should avoid returning results
    // (client-join merged with final, or semi-join leaving them at the
    // client) when results are big.
    let mut ctx = fig11_ctx(NetworkSpec::cable_asymmetric());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(20_000.0)
            .with_selectivity(1.0),
    );
    let sql = "SELECT S.Name, ClientAnalysis(S.Quotes) FROM StockQuotes S";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    let merged = udf_strategies(&plan.root).iter().any(|s| {
        matches!(
            s,
            UdfStrategy::ClientJoin {
                merged_with_final: true,
                ..
            } | UdfStrategy::SemiJoin {
                leave_on_client: true
            }
        )
    });
    assert!(merged, "{explain}");
    // The Final node should report client-resident output columns.
    assert!(explain.contains("already at client"), "{explain}");
}

#[test]
fn shared_argument_udfs_group_on_client() {
    // Fig 13: ClientAnalysis(S.Quotes) and Volatility(S.Quotes,
    // S.FuturePrices) share the Quotes argument. The optimizer should pick
    // a plan where the second client-site op reuses client-resident
    // arguments (a leave-on-client step followed by a free-downlink step).
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0)
            .with_selectivity(1.0),
    );
    ctx.add_udf(
        UdfMeta::client(
            "Volatility",
            vec![DataType::Blob, DataType::Blob],
            DataType::Float,
        )
        .with_result_bytes(9.0),
    );
    let sql = "SELECT S.Name, ClientAnalysis(S.Quotes), Volatility(S.Quotes, S.FuturePrices) \
               FROM StockQuotes S";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert!(
        explain.contains("leave-on-client") || explain.contains("merged with final"),
        "expected grouped client-site execution:\n{explain}"
    );
}

#[test]
fn rank_order_baseline_never_cheaper_and_sometimes_much_worse() {
    let configs = [
        (9.0, 0.5, NetworkSpec::modem_28_8()),
        (20_000.0, 0.01, NetworkSpec::cable_asymmetric()),
        (2_000.0, 0.2, NetworkSpec::modem_28_8()),
    ];
    let mut strictly_better = 0;
    for (r, s, net) in configs {
        let mut ctx = fig11_ctx(net);
        ctx.add_udf(
            UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
                .with_result_bytes(r)
                .with_selectivity(s),
        );
        let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
        let full = optimize(&g, &ctx).unwrap();
        let base = rank_order_baseline(&g, &ctx).unwrap();
        assert!(
            full.cost_seconds <= base.cost_seconds + 1e-9,
            "r={r}, s={s}"
        );
        if full.cost_seconds < base.cost_seconds * 0.8 {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 1,
        "the site-aware optimizer should clearly beat rank ordering somewhere"
    );
}

#[test]
fn plan_search_space_is_exponential_but_bounded() {
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0),
    );
    ctx.add_udf(
        UdfMeta::client(
            "Volatility",
            vec![DataType::Blob, DataType::Blob],
            DataType::Float,
        )
        .with_result_bytes(9.0),
    );
    let sql = "SELECT S.Name, Volatility(S.Quotes, S.FuturePrices) \
               FROM StockQuotes S, Estimations E \
               WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    assert_eq!(g.n_units(), 4); // 2 rels + 2 UDFs → 2^4 subsets
    let plan = optimize(&g, &ctx).unwrap();
    assert!(plan.states_explored > 10);
    assert!(plan.states_explored < 100_000);
}

#[test]
fn explain_is_stable_and_readable() {
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let a = optimize(&g, &ctx).unwrap().root.explain(&g);
    let b = optimize(&g, &ctx).unwrap().root.explain(&g);
    assert_eq!(a, b, "optimization must be deterministic");
    assert!(a.contains("Scan"));
    assert!(a.contains("Final"));
}

#[test]
fn dop_discounts_server_cost_without_changing_the_plan() {
    // The degree-of-parallelism knob tells costing that server-side
    // per-tuple work runs on the morsel-driven engine's workers. Network
    // transfer dominates every plan here, so the *chosen* plan must not
    // change — but the estimate must shrink monotonically, and never below
    // the Amdahl bound (some work stays serial).
    let make = |dop: usize| {
        let mut ctx = fig11_ctx(NetworkSpec::modem_28_8()).with_dop(dop);
        ctx.add_udf(
            UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
                .with_result_bytes(9.0)
                .with_selectivity(0.001),
        );
        let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
        let plan = optimize(&g, &ctx).unwrap();
        (plan.root.explain(&g), plan.cost_seconds)
    };
    let (serial_plan, serial_cost) = make(1);
    let (dop4_plan, dop4_cost) = make(4);
    let (dop16_plan, dop16_cost) = make(16);
    assert_eq!(serial_plan, dop4_plan);
    assert_eq!(serial_plan, dop16_plan);
    assert!(dop4_cost < serial_cost);
    assert!(dop16_cost < dop4_cost);
    // Server cost is a tie-breaker, not the bottleneck: the discount must
    // stay a small fraction of the total.
    assert!(dop16_cost > serial_cost * 0.5);
}
