//! §5 optimizer scenarios: the plan-shape choices of Figures 12 and 13 as
//! network/workload parameters vary, plus the rank-order baseline ablation.

use csq_common::{DataType, Field, Schema};
use csq_net::NetworkSpec;
use csq_opt::{
    optimize, rank_order_baseline, OptContext, PlanNode, TableStats, UdfMeta, UdfStrategy,
};
use csq_sql::{parse_statement, Statement};

fn select(sql: &str) -> csq_sql::SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Select(s) => s,
        _ => unreachable!(),
    }
}

/// The Figure 11 environment: StockQuotes (big Quotes blobs) ⋈ Estimations.
fn fig11_ctx(net: NetworkSpec) -> OptContext {
    let mut ctx = OptContext::new(net);
    ctx.add_table(
        "StockQuotes",
        TableStats {
            schema: Schema::new(vec![
                Field::new("Name", DataType::Str),
                Field::new("Quotes", DataType::Blob),
                Field::new("FuturePrices", DataType::Blob),
            ]),
            rows: 100.0,
            row_bytes: 2025.0,
            col_bytes: vec![25.0, 1000.0, 1000.0],
            segments: Vec::new(),
        },
    );
    ctx.add_table(
        "Estimations",
        TableStats {
            schema: Schema::new(vec![
                Field::new("CompanyName", DataType::Str),
                Field::new("BrokerName", DataType::Str),
                Field::new("Rating", DataType::Int),
            ]),
            rows: 1000.0,
            row_bytes: 59.0,
            col_bytes: vec![25.0, 25.0, 9.0],
            segments: Vec::new(),
        },
    );
    ctx
}

const FIG11: &str = "SELECT S.Name, E.BrokerName \
                     FROM StockQuotes S, Estimations E \
                     WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating";

fn udf_strategies(plan: &PlanNode) -> Vec<UdfStrategy> {
    plan.udf_applications()
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

#[test]
fn small_results_pick_semijoin() {
    // Tiny results, symmetric fast-ish network: the semi-join ships only
    // 1000-byte argument blobs + 9-byte results; shipping whole records
    // (CSJ) cannot win.
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0)
            .with_selectivity(0.001),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let strategies = udf_strategies(&plan.root);
    assert_eq!(strategies.len(), 1);
    assert!(
        matches!(strategies[0], UdfStrategy::SemiJoin { .. }),
        "{}",
        plan.root.explain(&g)
    );
}

#[test]
fn huge_results_on_slow_uplink_pick_client_join_with_pushdown() {
    // 50 KB results over a 28.8k uplink with a selective predicate: the
    // client-site join pushes `ClientAnalysis(S.Quotes) = E.Rating` and
    // ships only survivors; the semi-join must return every huge result.
    let mut ctx = fig11_ctx(NetworkSpec::cable_asymmetric());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(50_000.0)
            .with_selectivity(0.01),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let strategies = udf_strategies(&plan.root);
    // Any uplink-avoiding strategy qualifies: a client-site join with the
    // predicate pushed, or a semi-join that leaves the huge results at the
    // client and filters on delivery (the optimizer may find the latter,
    // which is strictly better — it also dedups arguments).
    let explain = plan.root.explain(&g);
    let avoids_uplink = strategies.iter().any(|s| {
        matches!(
            s,
            UdfStrategy::ClientJoin { pushed_preds, .. } if !pushed_preds.is_empty()
        ) || matches!(
            s,
            UdfStrategy::SemiJoin {
                leave_on_client: true
            } | UdfStrategy::ClientJoin {
                merged_with_final: true,
                ..
            }
        )
    });
    assert!(avoids_uplink, "{explain}");
    // And it must beat the plain return-everything baseline decisively.
    let base = rank_order_baseline(&g, &ctx).unwrap();
    assert!(
        plan.cost_seconds < base.cost_seconds * 0.2,
        "full {} vs baseline {}\n{explain}",
        plan.cost_seconds,
        base.cost_seconds
    );
}

#[test]
fn selective_join_places_udf_after_join() {
    // Fig 12(b): "the number of tuples and/or the number of distinct
    // argument tuples in the relation might be reduced by the join". Here a
    // selective broker filter plus the equi-join leaves ~10 of 100 stocks,
    // so applying the UDF after the join ships far fewer argument blobs.
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0)
            .with_selectivity(0.5),
    );
    let sql = "SELECT S.Name, E.BrokerName \
               FROM StockQuotes S, Estimations E \
               WHERE S.Name = E.CompanyName AND E.BrokerName = 'goldman' \
                 AND ClientAnalysis(S.Quotes) = E.Rating";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    // Find the UDF unit index.
    let udf_unit = g.n_rels; // first UDF unit
    assert!(
        plan.root.udf_after_join(udf_unit),
        "{}",
        plan.root.explain(&g)
    );
}

#[test]
fn exploding_join_keeps_semijoin_insensitive() {
    // §5's point (b): client-site joins are duplicate-sensitive, semi-joins
    // are not. After a row-multiplying join (10 estimations per company),
    // the optimizer must not pick a client-site join that ships every
    // duplicated record when the semi-join dedups arguments.
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(500.0)
            .with_selectivity(0.3),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    // Whatever the placement, a duplicate-blind whole-record CSJ after the
    // exploding join must not be chosen over the dedup'ing semi-join.
    let after_join_csj =
        plan.root.udf_applications().iter().any(|(u, s)| {
            matches!(s, UdfStrategy::ClientJoin { .. }) && plan.root.udf_after_join(*u)
        });
    assert!(!after_join_csj, "{}", plan.root.explain(&g));
}

#[test]
fn final_merge_or_leave_chosen_when_output_is_udf_result() {
    // Fig 12(d): the query returns the UDF result itself; with no further
    // server-site operation the optimizer should avoid returning results
    // (client-join merged with final, or semi-join leaving them at the
    // client) when results are big.
    let mut ctx = fig11_ctx(NetworkSpec::cable_asymmetric());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(20_000.0)
            .with_selectivity(1.0),
    );
    let sql = "SELECT S.Name, ClientAnalysis(S.Quotes) FROM StockQuotes S";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    let merged = udf_strategies(&plan.root).iter().any(|s| {
        matches!(
            s,
            UdfStrategy::ClientJoin {
                merged_with_final: true,
                ..
            } | UdfStrategy::SemiJoin {
                leave_on_client: true
            }
        )
    });
    assert!(merged, "{explain}");
    // The Final node should report client-resident output columns.
    assert!(explain.contains("already at client"), "{explain}");
}

#[test]
fn shared_argument_udfs_group_on_client() {
    // Fig 13: ClientAnalysis(S.Quotes) and Volatility(S.Quotes,
    // S.FuturePrices) share the Quotes argument. The optimizer should pick
    // a plan where the second client-site op reuses client-resident
    // arguments (a leave-on-client step followed by a free-downlink step).
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0)
            .with_selectivity(1.0),
    );
    ctx.add_udf(
        UdfMeta::client(
            "Volatility",
            vec![DataType::Blob, DataType::Blob],
            DataType::Float,
        )
        .with_result_bytes(9.0),
    );
    let sql = "SELECT S.Name, ClientAnalysis(S.Quotes), Volatility(S.Quotes, S.FuturePrices) \
               FROM StockQuotes S";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert!(
        explain.contains("leave-on-client") || explain.contains("merged with final"),
        "expected grouped client-site execution:\n{explain}"
    );
}

#[test]
fn rank_order_baseline_never_cheaper_and_sometimes_much_worse() {
    let configs = [
        (9.0, 0.5, NetworkSpec::modem_28_8()),
        (20_000.0, 0.01, NetworkSpec::cable_asymmetric()),
        (2_000.0, 0.2, NetworkSpec::modem_28_8()),
    ];
    let mut strictly_better = 0;
    for (r, s, net) in configs {
        let mut ctx = fig11_ctx(net);
        ctx.add_udf(
            UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
                .with_result_bytes(r)
                .with_selectivity(s),
        );
        let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
        let full = optimize(&g, &ctx).unwrap();
        let base = rank_order_baseline(&g, &ctx).unwrap();
        assert!(
            full.cost_seconds <= base.cost_seconds + 1e-9,
            "r={r}, s={s}"
        );
        if full.cost_seconds < base.cost_seconds * 0.8 {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 1,
        "the site-aware optimizer should clearly beat rank ordering somewhere"
    );
}

#[test]
fn plan_search_space_is_exponential_but_bounded() {
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0),
    );
    ctx.add_udf(
        UdfMeta::client(
            "Volatility",
            vec![DataType::Blob, DataType::Blob],
            DataType::Float,
        )
        .with_result_bytes(9.0),
    );
    let sql = "SELECT S.Name, Volatility(S.Quotes, S.FuturePrices) \
               FROM StockQuotes S, Estimations E \
               WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating";
    let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
    assert_eq!(g.n_units(), 4); // 2 rels + 2 UDFs → 2^4 subsets
    let plan = optimize(&g, &ctx).unwrap();
    assert!(plan.states_explored > 10);
    assert!(plan.states_explored < 100_000);
}

#[test]
fn explain_is_stable_and_readable() {
    let mut ctx = fig11_ctx(NetworkSpec::modem_28_8());
    ctx.add_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(9.0),
    );
    let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
    let a = optimize(&g, &ctx).unwrap().root.explain(&g);
    let b = optimize(&g, &ctx).unwrap().root.explain(&g);
    assert_eq!(a, b, "optimization must be deterministic");
    assert!(a.contains("Scan"));
    assert!(a.contains("Final"));
}

// ---- grouped-aggregation placement (DESIGN.md §7) --------------------------

/// A plain metrics table for the aggregation-placement scenarios: 9-byte
/// int key + 9-byte int value, 1000 rows.
fn metrics_ctx(net: NetworkSpec, key_distinct: f64, dop: usize) -> OptContext {
    let mut ctx = OptContext::new(net).with_dop(dop);
    ctx.add_table(
        "Metrics",
        TableStats {
            schema: Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            rows: 1000.0,
            row_bytes: 18.0,
            col_bytes: vec![9.0, 9.0],
            segments: Vec::new(),
        },
    );
    ctx.set_col_distinct("Metrics", "k", key_distinct);
    ctx
}

const AVG_BY_K: &str = "SELECT M.k, AVG(M.v) FROM Metrics M GROUP BY M.k";

fn placement_of(plan: &csq_opt::OptimizedPlan) -> csq_opt::AggPlacement {
    let mut found = None;
    plan.root.walk(&mut |n| {
        if let PlanNode::Aggregate { placement, .. } = n {
            found = Some(*placement);
        }
    });
    found.expect("grouped query must plan an Aggregate node")
}

#[test]
fn aggregation_placement_flips_at_the_shipping_breakeven() {
    // AVG(v) GROUP BY k: client-only ships 18 B/row (key + value);
    // server-partial ships 27 B/group (key + decomposed sum/count state).
    // The modeled break-even reduction factor is therefore 18/27 = 2/3 —
    // below it (few groups) the server-side partial phase ships less and
    // must win; above it the state overhead loses to shipping raw rows.
    // The flip must hold at dop 1 and dop 4 (the engine discount shrinks
    // server work but bytes decide the break-even).
    for dop in [1usize, 4] {
        for (distinct, expect) in [
            (10.0, csq_opt::AggPlacement::ServerPartial),
            (300.0, csq_opt::AggPlacement::ServerPartial),
            (600.0, csq_opt::AggPlacement::ServerPartial),
            (700.0, csq_opt::AggPlacement::ClientOnly),
            (1000.0, csq_opt::AggPlacement::ClientOnly),
        ] {
            let ctx = metrics_ctx(NetworkSpec::modem_28_8(), distinct, dop);
            let g = csq_opt::query::extract(&select(AVG_BY_K), &ctx).unwrap();
            let plan = optimize(&g, &ctx).unwrap();
            assert_eq!(
                placement_of(&plan),
                expect,
                "dop={dop}, distinct={distinct}\n{}",
                plan.root.explain(&g)
            );
        }
    }
}

#[test]
fn aggregation_placement_explains_and_costs_monotonically() {
    // Golden plan shape at high reduction: server-partial, with the group
    // keys and calls rendered, and a cheaper estimate than the forced
    // client-only shape at the same statistics.
    let ctx = metrics_ctx(NetworkSpec::modem_28_8(), 10.0, 1);
    let g = csq_opt::query::extract(&select(AVG_BY_K), &ctx).unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert!(
        explain.contains("Aggregate [server-partial] by [M.k] [AVG(M.v)]"),
        "{explain}"
    );
    assert!(explain.contains("(~10 groups)"), "{explain}");
    // More groups must never make the plan cheaper.
    let mut last = plan.cost_seconds;
    for distinct in [50.0, 200.0, 600.0, 1000.0] {
        let ctx = metrics_ctx(NetworkSpec::modem_28_8(), distinct, 1);
        let g = csq_opt::query::extract(&select(AVG_BY_K), &ctx).unwrap();
        let cost = optimize(&g, &ctx).unwrap().cost_seconds;
        assert!(
            cost >= last - 1e-12,
            "cost must grow with group count: {cost} < {last} at {distinct}"
        );
        last = cost;
    }
}

#[test]
fn count_star_breakeven_uses_key_bytes_only() {
    // COUNT(*) GROUP BY k ships only the 9-byte key per row client-only,
    // vs 18 B/group (key + count state): break-even reduction 1/2.
    let sql = "SELECT M.k, COUNT(*) FROM Metrics M GROUP BY M.k";
    for (distinct, expect) in [
        (400.0, csq_opt::AggPlacement::ServerPartial),
        (600.0, csq_opt::AggPlacement::ClientOnly),
    ] {
        let ctx = metrics_ctx(NetworkSpec::modem_28_8(), distinct, 1);
        let g = csq_opt::query::extract(&select(sql), &ctx).unwrap();
        let plan = optimize(&g, &ctx).unwrap();
        assert_eq!(
            placement_of(&plan),
            expect,
            "distinct={distinct}\n{}",
            plan.root.explain(&g)
        );
    }
}

#[test]
fn having_shrinks_the_estimated_output() {
    let ctx = metrics_ctx(NetworkSpec::modem_28_8(), 100.0, 1);
    let with_having = {
        let g = csq_opt::query::extract(
            &select("SELECT M.k FROM Metrics M GROUP BY M.k HAVING COUNT(*) > 3"),
            &ctx,
        )
        .unwrap();
        optimize(&g, &ctx).unwrap().est_rows
    };
    let without = {
        let g = csq_opt::query::extract(&select("SELECT M.k FROM Metrics M GROUP BY M.k"), &ctx)
            .unwrap();
        optimize(&g, &ctx).unwrap().est_rows
    };
    assert!((without - 100.0).abs() < 1e-9, "est {without}");
    assert!(with_having < without, "{with_having} vs {without}");
}

#[test]
fn dop_discounts_server_cost_without_changing_the_plan() {
    // The degree-of-parallelism knob tells costing that server-side
    // per-tuple work runs on the morsel-driven engine's workers. Network
    // transfer dominates every plan here, so the *chosen* plan must not
    // change — but the estimate must shrink monotonically, and never below
    // the Amdahl bound (some work stays serial).
    let make = |dop: usize| {
        let mut ctx = fig11_ctx(NetworkSpec::modem_28_8()).with_dop(dop);
        ctx.add_udf(
            UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
                .with_result_bytes(9.0)
                .with_selectivity(0.001),
        );
        let g = csq_opt::query::extract(&select(FIG11), &ctx).unwrap();
        let plan = optimize(&g, &ctx).unwrap();
        (plan.root.explain(&g), plan.cost_seconds)
    };
    let (serial_plan, serial_cost) = make(1);
    let (dop4_plan, dop4_cost) = make(4);
    let (dop16_plan, dop16_cost) = make(16);
    assert_eq!(serial_plan, dop4_plan);
    assert_eq!(serial_plan, dop16_plan);
    assert!(dop4_cost < serial_cost);
    assert!(dop16_cost < dop4_cost);
    // Server cost is a tie-breaker, not the bottleneck: the discount must
    // stay a small fraction of the total.
    assert!(dop16_cost > serial_cost * 0.5);
}

// ---- sharded (N-site) placement, DESIGN.md §13 -----------------------------

fn sharded_ctx(shards: usize) -> OptContext {
    let mut ctx = fig11_ctx(NetworkSpec::lan()).with_shards(shards);
    ctx.set_shard_key("Estimations", "CompanyName");
    ctx
}

#[test]
fn sharded_aggregate_picks_shard_partial_and_renders_fanout() {
    // ~32 expected groups (sqrt default) over 1000 rows: per-shard partial
    // states beat gathering the raw rows, so the enumerator extends the
    // two-site choice to the shard set and EXPLAIN shows the fan-out.
    let ctx = sharded_ctx(4);
    let g = csq_opt::query::extract(
        &select("SELECT E.BrokerName, COUNT(*) FROM Estimations E GROUP BY E.BrokerName"),
        &ctx,
    )
    .unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert!(explain.contains("Aggregate [shard-partial]"), "{explain}");
    assert!(explain.contains("Gather [merge]"), "{explain}");
    assert!(
        explain.contains("Scatter [4 shards, 0 pruned]"),
        "{explain}"
    );
}

#[test]
fn sharded_aggregate_without_reduction_gathers_rows() {
    // Grouping by a unique key (distinct = rows): partial states save
    // nothing and pay per-shard duplication, so the raw rows cross and the
    // coordinator aggregates alone.
    let mut ctx = sharded_ctx(4);
    ctx.set_col_distinct("Estimations", "CompanyName", 1000.0);
    let g = csq_opt::query::extract(
        &select("SELECT E.CompanyName, COUNT(*) FROM Estimations E GROUP BY E.CompanyName"),
        &ctx,
    )
    .unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert!(explain.contains("Aggregate [client-only]"), "{explain}");
    assert!(explain.contains("Gather [ordered]"), "{explain}");
}

#[test]
fn pinned_shard_key_prunes_the_scatter() {
    let ctx = sharded_ctx(4);
    let g = csq_opt::query::extract(
        &select(
            "SELECT E.BrokerName, COUNT(*) FROM Estimations E \
             WHERE E.CompanyName = 'Acme' GROUP BY E.BrokerName",
        ),
        &ctx,
    )
    .unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert!(
        explain.contains("Scatter [4 shards, 3 pruned]"),
        "{explain}"
    );
    // The pruning helper the coordinator routes with agrees with the plan.
    assert!(csq_opt::shard::pinned_shard_value(&g, &ctx, 0).is_some());
}

#[test]
fn sharded_join_gathers_each_relation() {
    // A join is not pushable per shard (rows co-located by different keys):
    // each relation's partitions gather separately and the coordinator
    // joins, repartitioning with its local Exchange operators.
    let ctx = sharded_ctx(4);
    let g = csq_opt::query::extract(
        &select(
            "SELECT S.Name, E.BrokerName FROM StockQuotes S, Estimations E \
             WHERE S.Name = E.CompanyName",
        ),
        &ctx,
    )
    .unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert_eq!(explain.matches("Gather [ordered]").count(), 2, "{explain}");
    assert_eq!(explain.matches("Scatter [4 shards").count(), 2, "{explain}");
    let mut join_above_gather = false;
    plan.root.walk(&mut |n| {
        if let PlanNode::Join { left, right } = n {
            let gathered = |side: &PlanNode| {
                let mut found = false;
                side.walk(&mut |m| {
                    if matches!(m, PlanNode::Gather { .. }) {
                        found = true;
                    }
                });
                found
            };
            join_above_gather = gathered(left) && gathered(right);
        }
    });
    assert!(join_above_gather, "{explain}");
}

#[test]
fn unsharded_context_never_scatters() {
    let ctx = fig11_ctx(NetworkSpec::lan());
    let g = csq_opt::query::extract(
        &select("SELECT E.BrokerName, COUNT(*) FROM Estimations E GROUP BY E.BrokerName"),
        &ctx,
    )
    .unwrap();
    let plan = optimize(&g, &ctx).unwrap();
    let explain = plan.root.explain(&g);
    assert!(!explain.contains("Scatter"), "{explain}");
    assert!(!explain.contains("Gather"), "{explain}");
}
