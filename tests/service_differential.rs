//! Differential oracle for the query service (DESIGN.md §8): random
//! workloads served over **real TCP sockets** at 1/2/4/8 concurrent
//! clients must be indistinguishable from the serial in-process engine —
//! per query, the row multiset must match and failures must carry the same
//! error kind. This is the acceptance gate for the transport + session
//! layer: framing, session scheduling, plan-cache sharing, and error
//! propagation all sit between the two sides being compared.
//!
//! Failing seeds persist under `proptest-regressions/` (vendored proptest
//! shim) and committed seeds replay on every `cargo test`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use csq::prelude::*;
use csq_client::synthetic::ObjectUdf;
use csq_common::Blob;
use csq_core::service;
use csq_storage::TableBuilder;

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One generated table row: (group, value, name selector, blob seed).
type RowSpec = (i64, i64, u8, u64);

fn arb_row() -> impl Strategy<Value = RowSpec> {
    (0i64..5, -20i64..20, any::<u8>(), any::<u64>())
}

/// One generated statement; a workload mixes well-formed and failing ones.
#[derive(Debug, Clone)]
enum QuerySpec {
    /// Filter + projection.
    Filter { lo: i64 },
    /// Grouped aggregation, optionally with HAVING.
    Agg { having: Option<i64> },
    /// Client-site UDF application (exercises the shipping engine inside a
    /// session).
    Udf { lo: i64 },
    /// Unknown column: fails at planning.
    BadColumn,
    /// Lexically broken SQL: fails at parse.
    BadSyntax,
}

impl QuerySpec {
    fn sql(&self) -> String {
        match self {
            QuerySpec::Filter { lo } => {
                format!("SELECT T.Id, T.Name FROM T T WHERE T.Val > {lo}")
            }
            QuerySpec::Agg { having: None } => {
                "SELECT T.Grp, count(*), sum(T.Val) FROM T T GROUP BY T.Grp".into()
            }
            QuerySpec::Agg { having: Some(h) } => format!(
                "SELECT T.Grp, count(*), sum(T.Val) FROM T T GROUP BY T.Grp \
                 HAVING count(*) > {h}"
            ),
            QuerySpec::Udf { lo } => {
                format!("SELECT T.Id, Enrich(T.Obj) FROM T T WHERE T.Id > {lo}")
            }
            QuerySpec::BadColumn => "SELECT T.Nope FROM T T".into(),
            QuerySpec::BadSyntax => "SELECT T.Id FROM T T WHERE".into(),
        }
    }
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    // The vendored shim's prop_oneof! is unweighted; the duplicated
    // well-formed arms keep failing statements a minority of the mix.
    prop_oneof![
        (-25i64..25).prop_map(|lo| QuerySpec::Filter { lo }),
        (-25i64..25).prop_map(|lo| QuerySpec::Filter { lo }),
        prop_oneof![Just(None), (0i64..4).prop_map(Some)]
            .prop_map(|having| QuerySpec::Agg { having }),
        prop_oneof![Just(None), (0i64..4).prop_map(Some)]
            .prop_map(|having| QuerySpec::Agg { having }),
        (-5i64..30).prop_map(|lo| QuerySpec::Udf { lo }),
        (-5i64..30).prop_map(|lo| QuerySpec::Udf { lo }),
        Just(QuerySpec::BadColumn),
        Just(QuerySpec::BadSyntax),
    ]
}

fn build_db(rows: &[RowSpec]) -> Arc<Database> {
    let db = Database::new(NetworkSpec::lan());
    let names = ["alpha", "bee", "ccc", "delta"];
    let mut b = TableBuilder::new("T")
        .column("Id", DataType::Int)
        .column("Grp", DataType::Int)
        .column("Val", DataType::Int)
        .column("Name", DataType::Str)
        .column("Obj", DataType::Blob);
    for (i, (grp, val, name, seed)) in rows.iter().enumerate() {
        b = b.row(vec![
            Value::Int(i as i64),
            Value::Int(*grp),
            Value::Int(*val),
            Value::from(names[(*name as usize) % names.len()]),
            Value::Blob(Blob::synthetic(24, *seed)),
        ]);
    }
    db.catalog().register(b.build().unwrap()).unwrap();
    db.register_udf(Arc::new(ObjectUdf::sized("Enrich", 16)))
        .unwrap();
    Arc::new(db)
}

/// What one statement produced, normalized for comparison: the row
/// multiset (display-rendered, sorted) or the error kind.
type Outcome = std::result::Result<Vec<String>, &'static str>;

fn normalize_rows(rows: &[csq_common::Row]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r}")).collect();
    out.sort();
    out
}

fn serial_outcome(db: &Database, sql: &str) -> Outcome {
    match db.execute(sql) {
        Ok(result) => Ok(normalize_rows(&result.rows)),
        Err(e) => Err(e.kind()),
    }
}

/// Run every query through the service at `clients` concurrent
/// connections; outcomes come back indexed so each is compared against its
/// serial twin.
fn served_outcomes(
    db: &Arc<Database>,
    queries: &[String],
    clients: usize,
) -> Vec<(usize, Outcome)> {
    let handle = service::start(
        db.clone(),
        ServiceConfig {
            workers: clients.clamp(2, 4),
            max_sessions: clients + 4, // never refuse: this suite tests results
            idle_timeout: Duration::from_millis(20),
            ..ServiceConfig::default()
        },
    )
    .expect("service must start");
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..clients)
        .map(|k| {
            let mine: Vec<(usize, String)> = queries
                .iter()
                .enumerate()
                .skip(k)
                .step_by(clients)
                .map(|(i, q)| (i, q.clone()))
                .collect();
            std::thread::spawn(move || {
                let mut conn = ServiceConn::connect(addr).expect("client must connect");
                let mut out = Vec::with_capacity(mine.len());
                for (i, sql) in mine {
                    let outcome = match conn.query(&sql) {
                        Ok(result) => Ok(normalize_rows(&result.rows)),
                        Err(e) => Err(e.kind()),
                    };
                    assert!(
                        !conn.is_broken(),
                        "statement errors must not poison the session (query {i}: {sql})"
                    );
                    out.push((i, outcome));
                }
                conn.close();
                out
            })
        })
        .collect();

    let mut all = Vec::with_capacity(queries.len());
    for t in threads {
        all.extend(t.join().expect("client thread must not panic"));
    }
    handle.shutdown();
    all.sort_by_key(|(i, _)| *i);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn served_queries_match_serial_engine(
        rows in prop::collection::vec(arb_row(), 0..80),
        specs in prop::collection::vec(arb_query(), 1..14),
    ) {
        let db = build_db(&rows);
        let queries: Vec<String> = specs.iter().map(QuerySpec::sql).collect();
        let serial: Vec<Outcome> =
            queries.iter().map(|q| serial_outcome(&db, q)).collect();

        for clients in CLIENT_COUNTS {
            for (i, served) in served_outcomes(&db, &queries, clients) {
                prop_assert_eq!(
                    &served,
                    &serial[i],
                    "clients = {}, query {} = {}",
                    clients,
                    i,
                    &queries[i]
                );
            }
        }
    }
}
