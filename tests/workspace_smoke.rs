//! Workspace smoke test: the `csq` facade alone must be enough to build a
//! database over the paper's modem link, register a client-site UDF, and run
//! a query — guarding the facade's re-export surface (a pure re-export
//! regression breaks this file at compile time).

use std::sync::Arc;

use csq::synthetic::ObjectUdf;
use csq::{DataType, Database, NetworkSpec, TableBuilder, Value};

#[test]
fn facade_builds_database_with_udf_over_modem() {
    let db = Database::new(NetworkSpec::modem_28_8());
    let table = TableBuilder::new("R")
        .column("Id", DataType::Int)
        .column("Obj", DataType::Blob)
        .row(vec![
            Value::Int(1),
            Value::Blob(csq::Blob::synthetic(64, 1)),
        ])
        .row(vec![
            Value::Int(2),
            Value::Blob(csq::Blob::synthetic(64, 2)),
        ])
        .build()
        .unwrap();
    db.catalog().register(table).unwrap();
    db.register_udf(Arc::new(ObjectUdf::sized("F", 32)))
        .unwrap();

    let out = db
        .execute("SELECT R.Id, F(R.Obj) FROM R R WHERE R.Id > 0")
        .unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.schema.len(), 2);
}

#[test]
fn facade_exposes_result_and_simulation_types() {
    let db = Database::new(NetworkSpec::lan());
    db.execute("CREATE TABLE T (A INT)").unwrap();
    db.execute("INSERT INTO T VALUES (7)").unwrap();
    let (result, summary): (csq::QueryResult, csq::SimSummary) =
        db.execute_simulated("SELECT T.A FROM T T").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert!(summary.elapsed_secs() >= 0.0);
}
