//! §4.3's asymmetric-network tradeoff: on a cable/ADSL-style link the
//! uplink is ~100× slower than the downlink, so "send more downlink to save
//! uplink" becomes the central planning decision. Sweeps selectivity and
//! prints measured CSJ/SJ ratios next to the §3.2 cost-model predictions.
//!
//! ```sh
//! cargo run --example asymmetric_tradeoff
//! ```

use std::sync::Arc;

use csq_client::synthetic::{ObjectUdf, PredicateUdf};
use csq_client::ClientRuntime;
use csq_common::{Blob, DataType, Field, Row, Schema, Value};
use csq_cost::CostParams;
use csq_net::NetworkSpec;
use csq_ship::{
    simulate_client_join, simulate_semijoin, ClientJoinSpec, SemiJoinSpec, UdfApplication,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::cable_asymmetric();
    println!(
        "network: downlink {:.0} B/s, uplink {:.0} B/s (N = {:.0})\n",
        net.down_bandwidth,
        net.up_bandwidth,
        net.asymmetry()
    );

    // The Figure 9 workload: 5 KB records, 4 KB of which are UDF arguments.
    let schema = Schema::new(vec![
        Field::new("Argument", DataType::Blob),
        Field::new("NonArgument", DataType::Blob),
    ]);
    let rows: Vec<Row> = (0..40)
        .map(|i| {
            Row::new(vec![
                Value::Blob(Blob::synthetic(3995, i)),
                Value::Blob(Blob::synthetic(995, 10_000 + i)),
            ])
        })
        .collect();

    let result_size = 1000usize;
    println!("result size {result_size} B; CSJ/SJ relative time vs selectivity:");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "S", "measured", "predicted", "winner"
    );

    for s in [0.01, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let runtime = || {
            let rt = ClientRuntime::new();
            rt.register(Arc::new(PredicateUdf::new("UDF1", s))).unwrap();
            rt.register(Arc::new(ObjectUdf::sized("UDF2", result_size)))
                .unwrap();
            Arc::new(rt)
        };
        let udf1 = UdfApplication::new("UDF1", vec![0], Field::new("pass", DataType::Bool));
        let udf2 = UdfApplication::new("UDF2", vec![0], Field::new("res", DataType::Blob));

        let sj = simulate_semijoin(
            &schema,
            rows.clone(),
            &SemiJoinSpec::new(vec![udf1.clone(), udf2.clone()], 32),
            runtime(),
            &net,
        )?;

        let mut csj_spec = ClientJoinSpec::new(vec![udf1, udf2]);
        csj_spec.pushed_predicate = Some(csq_expr::PhysExpr::Binary {
            left: Box::new(csq_expr::PhysExpr::Column(2)),
            op: csq_expr::BinaryOp::Eq,
            right: Box::new(csq_expr::PhysExpr::Literal(Value::Bool(true))),
        });
        csj_spec.return_cols = Some(vec![1, 3]);
        let csj = simulate_client_join(&schema, rows.clone(), &csj_spec, runtime(), &net)?;

        let measured = csj.elapsed_us as f64 / sj.elapsed_us as f64;

        let i = 5010.0; // wire size of one record
        let params = CostParams {
            a: 4000.0 / i,
            d: 1.0,
            s,
            p: 1.0,
            i,
            r: (result_size + 7) as f64,
            n: net.asymmetry(),
        }
        .with_paper_projection();
        let predicted = csq_cost::relative_time(&params);
        let winner = if measured < 1.0 { "CSJ" } else { "SJ" };
        println!("{s:>6.2} {measured:>12.3} {predicted:>12.3} {winner:>10}");
    }

    println!(
        "\nAt low selectivity the client-site join wins despite shipping 5x \
         the downlink bytes — exactly the paper's asymmetric tradeoff: the \
         28.8k uplink, not the cable downlink, is the scarce resource."
    );
    Ok(())
}
