//! Quickstart: create a table, register a client-site UDF, run a query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use csq::prelude::*;
use csq_client::synthetic::RatingUdf;
use csq_common::Blob;
use csq_storage::TableBuilder;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // A database whose client is connected over a 28.8 kbit/s modem (the
    // paper's testbed). The network only affects simulated timings and the
    // optimizer's choices; execution itself runs in-process.
    let db = Database::new(NetworkSpec::modem_28_8());

    // Plain SQL works for scalar data...
    db.execute("CREATE TABLE Watchlist (Ticker STRING, Shares INT)")?;
    db.execute("INSERT INTO Watchlist VALUES ('ACME', 100), ('GLOBEX', 250)")?;

    // ...and the storage API handles blob-valued columns (price histories).
    let mut quotes = TableBuilder::new("StockQuotes")
        .column("Name", DataType::Str)
        .column("Quotes", DataType::Blob);
    for (i, name) in ["ACME", "GLOBEX", "INITECH", "HOOLI"].iter().enumerate() {
        quotes = quotes.row(vec![
            Value::from(*name),
            Value::Blob(Blob::synthetic(500, i as u64)),
        ]);
    }
    db.catalog().register(quotes.build()?)?;

    // The client registers its proprietary analysis function. The server
    // never sees the implementation — only name, types, and cost hints.
    db.register_udf(Arc::new(RatingUdf::new("ClientAnalysis", 1000)))?;

    // A query mixing a server predicate with a client-site UDF predicate.
    let sql = "SELECT S.Name, ClientAnalysis(S.Quotes) AS rating \
               FROM StockQuotes S \
               WHERE ClientAnalysis(S.Quotes) > 250";

    println!("plan:\n{}", db.explain(sql)?);

    let result = db.execute(sql)?;
    println!("results:\n{}", result.to_table());

    // The same query on the virtual-time engine reports what it would have
    // cost over the modem.
    let (_, sim) = db.execute_simulated(sql)?;
    println!(
        "simulated over 28.8k modem: {:.2}s, {} B down / {} B up, {} client invocations",
        sim.elapsed_secs(),
        sim.down_bytes,
        sim.up_bytes,
        db.client_runtime().invocations(),
    );
    Ok(())
}
