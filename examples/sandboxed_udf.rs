//! Safe execution of *untrusted* client extensions — the [GMHE98]/[CSM98]
//! angle of the paper. UDFs written for the sandboxed stack VM run under
//! fuel, stack, and allocation limits: a runaway or hostile extension is
//! terminated without harming the host or the query session.
//!
//! ```sh
//! cargo run --example sandboxed_udf
//! ```

use std::sync::Arc;

use csq::prelude::*;
use csq_client::vm::{assemble, VmLimits, VmUdf};
use csq_common::Blob;
use csq_storage::TableBuilder;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let db = Database::new(NetworkSpec::lan());

    let mut t = TableBuilder::new("Docs")
        .column("Id", DataType::Int)
        .column("Body", DataType::Blob);
    for i in 0..8i64 {
        t = t.row(vec![
            Value::Int(i),
            Value::Blob(Blob::synthetic((100 * (i as usize + 1)) % 700, i as u64)),
        ]);
    }
    db.catalog().register(t.build()?)?;

    // A well-behaved VM UDF: "is this document big?" — the Figure 1 idea
    // (ClientAnalysis(blob) compared to a threshold) written in VM assembly.
    let big_doc = assemble(
        "load_arg 0    -- the document blob\n\
         blob_len\n\
         push_int 400\n\
         gt\n\
         ret",
    )?;
    db.register_udf(Arc::new(VmUdf::new(
        "IsBigDoc",
        vec![DataType::Blob],
        DataType::Bool,
        big_doc,
    )))?;

    let out = db.execute("SELECT D.Id FROM Docs D WHERE IsBigDoc(D.Body)")?;
    println!("big documents: {} of 8", out.rows.len());

    // A hostile UDF: infinite loop. The fuel limit terminates it and the
    // error surfaces as an ordinary query failure — the server, the client
    // runtime, and subsequent queries are unaffected.
    let hostile = assemble("spin:\njump spin")?;
    db.register_udf(Arc::new(
        VmUdf::new("Hostile", vec![DataType::Blob], DataType::Bool, hostile).with_limits(
            VmLimits {
                fuel: 100_000,
                stack: 64,
                alloc_bytes: 1 << 20,
            },
        ),
    ))?;
    let err = db
        .execute("SELECT D.Id FROM Docs D WHERE Hostile(D.Body)")
        .unwrap_err();
    println!("hostile UDF terminated: {err}");

    // A memory bomb: blob allocations beyond the cap are refused.
    let bomb = assemble(
        "push_int 1000000000\n\
         push_int 1\n\
         blob_fill\n\
         ret",
    )?;
    db.register_udf(Arc::new(
        VmUdf::new("Bomb", vec![DataType::Blob], DataType::Blob, bomb).with_limits(VmLimits {
            fuel: u64::MAX,
            stack: 64,
            alloc_bytes: 1 << 20,
        }),
    ))?;
    let err = db.execute("SELECT Bomb(D.Body) FROM Docs D").unwrap_err();
    println!("memory bomb refused:   {err}");

    // The session is still healthy.
    let out = db.execute("SELECT D.Id FROM Docs D WHERE IsBigDoc(D.Body)")?;
    println!("session still works: {} big documents", out.rows.len());
    Ok(())
}
