//! §5's optimizer in action: the same Figure 11 query gets different plans
//! as the network and UDF statistics change — UDF before/after the join,
//! semi-join vs client-site join, pushdowns, grouping, final merging.
//!
//! ```sh
//! cargo run --example optimizer_explain
//! ```

use std::sync::Arc;

use csq::prelude::*;
use csq_client::synthetic::{ObjectUdf, RatingUdf};
use csq_common::Blob;
use csq_opt::UdfMeta;
use csq_storage::TableBuilder;

fn build_db(net: NetworkSpec) -> std::result::Result<Database, Box<dyn std::error::Error>> {
    let db = Database::new(net);
    let mut stocks = TableBuilder::new("StockQuotes")
        .column("Name", DataType::Str)
        .column("Quotes", DataType::Blob)
        .column("FuturePrices", DataType::Blob);
    for i in 0..100 {
        stocks = stocks.row(vec![
            Value::from(format!("company{i:03}")),
            Value::Blob(Blob::synthetic(1000, i)),
            Value::Blob(Blob::synthetic(1000, 50_000 + i)),
        ]);
    }
    db.catalog().register(stocks.build()?)?;

    let mut est = TableBuilder::new("Estimations")
        .column("CompanyName", DataType::Str)
        .column("BrokerName", DataType::Str)
        .column("Rating", DataType::Int);
    for i in 0..100 {
        for b in 0..10 {
            est = est.row(vec![
                Value::from(format!("company{i:03}")),
                Value::from(format!("broker{b}")),
                Value::Int(((i * 13 + b) % 100) as i64),
            ]);
        }
    }
    db.catalog().register(est.build()?)?;

    db.register_udf(Arc::new(RatingUdf::new("ClientAnalysis", 100)))?;
    db.register_udf(Arc::new(ObjectUdf::sized_n("Volatility", 2, 64)))?;
    Ok(db)
}

const FIG11: &str = "SELECT S.Name, E.BrokerName \
                     FROM StockQuotes S, Estimations E \
                     WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating";

const FIG13: &str = "SELECT S.Name, E.BrokerName, Volatility(S.Quotes, S.FuturePrices) \
                     FROM StockQuotes S, Estimations E \
                     WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 11 query, symmetric modem, small results ==");
    let db = build_db(NetworkSpec::modem_28_8())?;
    println!("{}", db.explain(FIG11)?);

    println!("== Same query, asymmetric cable link, 20 KB results ==");
    let db = build_db(NetworkSpec::cable_asymmetric())?;
    db.advertise_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(20_000.0)
            .with_selectivity(0.01),
    );
    println!("{}", db.explain(FIG11)?);

    println!("== Figure 13 query (two UDFs sharing S.Quotes), modem ==");
    let db = build_db(NetworkSpec::modem_28_8())?;
    println!("{}", db.explain(FIG13)?);

    println!("== Output-is-the-UDF-result query: final merging ==");
    let db = build_db(NetworkSpec::cable_asymmetric())?;
    db.advertise_udf(
        UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
            .with_result_bytes(20_000.0)
            .with_selectivity(1.0),
    );
    println!(
        "{}",
        db.explain("SELECT S.Name, ClientAnalysis(S.Quotes) FROM StockQuotes S")?
    );

    println!("== And the chosen Figure 11 plan actually runs ==");
    let db = build_db(NetworkSpec::modem_28_8())?;
    let out = db.execute(FIG11)?;
    println!("{} matching (company, broker) pairs", out.rows.len());
    let (_, sim) = db.execute_simulated(FIG11)?;
    println!(
        "simulated: {:.2}s over the modem ({} B down, {} B up)",
        sim.elapsed_secs(),
        sim.down_bytes,
        sim.up_bytes
    );
    Ok(())
}
