//! Scale-out quick-start (DESIGN.md §13): three shard services behind a
//! coordinator, a hash-sharded table, and a GROUP BY whose aggregation is
//! computed as per-shard partials merged at the coordinator.
//!
//! Run with: `cargo run --example sharded_service`

use std::sync::Arc;

use csq::prelude::*;
use csq_core::service;

fn main() {
    // Three independent shard services, each an ordinary single-node
    // engine behind TCP (in production these are separate processes).
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..3 {
        let db = Arc::new(Database::new(NetworkSpec::lan()));
        let handle = service::start(db, ServiceConfig::default()).expect("shard service");
        addrs.push(handle.local_addr());
        handles.push(handle);
    }

    // The coordinator hash-partitions every table across the shards.
    let coord = Coordinator::connect(&addrs, CoordinatorConfig::default()).expect("coordinator");
    coord
        .create_table(
            "CREATE TABLE Trades (Id INT, Sym STR, Qty INT, Px FLOAT)",
            "Sym", // hash-partitioning column
        )
        .expect("create");

    // INSERTs route row-by-row to the shard owning each symbol's bucket.
    let syms = ["AA", "BB", "CC", "DD", "EE"];
    let mut values = Vec::new();
    for i in 0..500i64 {
        let sym = syms[(i % 5) as usize];
        values.push(format!(
            "({i}, '{sym}', {}, {:.1})",
            1 + i % 9,
            10.0 + (i % 37) as f64
        ));
    }
    coord
        .execute(&format!("INSERT INTO Trades VALUES {}", values.join(", ")))
        .expect("insert");

    // A grouped aggregate: each shard computes partial states for its
    // local rows (AVG decomposes into SUM + COUNT), and the coordinator
    // merges and finalizes. The EXPLAIN shows the scatter/gather fan-out.
    let sql = "SELECT Trades.Sym, COUNT(*), SUM(Trades.Qty), AVG(Trades.Px) \
               FROM Trades Trades GROUP BY Trades.Sym";
    println!("EXPLAIN {sql}\n");
    println!("{}", coord.explain(sql).expect("explain"));

    let result = coord.execute(sql).expect("grouped aggregate");
    println!("Sym   n     qty   avg(px)");
    for row in &result.rows {
        println!("{row}");
    }

    // A filter that pins the shard key is pruned to a single shard.
    let pinned = "SELECT Trades.Qty FROM Trades Trades WHERE Trades.Sym = 'CC'";
    println!("\nEXPLAIN {pinned}\n");
    println!("{}", coord.explain(pinned).expect("explain pinned"));
    let cc = coord.execute(pinned).expect("pinned filter");
    println!("{} CC trades (1 of 3 shards contacted)", cc.rows.len());

    use std::sync::atomic::Ordering::Relaxed;
    let stats = coord.stats();
    println!(
        "coordinator: {} queries ({} partial-agg), {} shard statements, {} pruned contacts",
        stats.queries.load(Relaxed),
        stats.partial_agg_queries.load(Relaxed),
        stats.shard_statements.load(Relaxed),
        stats.shards_pruned.load(Relaxed),
    );

    drop(coord);
    for handle in handles {
        handle.shutdown();
    }
}
