//! The paper's motivating scenario (§1, Figure 1): a WWW stock-data server,
//! an investor whose analysis code and thresholds are confidential, and a
//! slow link between them. Compares all three execution strategies on the
//! virtual-time engine.
//!
//! ```sh
//! cargo run --example stock_analysis
//! ```

use std::sync::Arc;

use csq_client::synthetic::{ObjectUdf, PredicateUdf};
use csq_client::ClientRuntime;
use csq_common::{Blob, DataType, Field, Row, Schema, Value};
use csq_net::NetworkSpec;
use csq_ship::{
    simulate_client_join, simulate_naive, simulate_semijoin, ClientJoinSpec, SemiJoinSpec,
    UdfApplication,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::modem_28_8();

    // 100 companies, 1 KB of price-history per company.
    let schema = Schema::new(vec![
        Field::new("Name", DataType::Str),
        Field::new("Quotes", DataType::Blob),
    ]);
    let rows: Vec<Row> = (0..100)
        .map(|i| {
            Row::new(vec![
                Value::from(format!("company{i:03}")),
                Value::Blob(Blob::synthetic(1000, i)),
            ])
        })
        .collect();

    // The investor's confidential UDFs: a screen (keeps ~20%) and a report
    // generator producing 2 KB analysis objects.
    let runtime = || {
        let rt = ClientRuntime::new();
        rt.register(Arc::new(PredicateUdf::new("Screen", 0.2)))
            .unwrap();
        rt.register(Arc::new(ObjectUdf::sized("Analyze", 2000)))
            .unwrap();
        Arc::new(rt)
    };
    let screen = UdfApplication::new("Screen", vec![1], Field::new("keep", DataType::Bool));
    let analyze = UdfApplication::new("Analyze", vec![1], Field::new("report", DataType::Blob));

    println!("query: screen 100 companies, build reports for survivors");
    println!(
        "network: 28.8 kbit/s modem, RTT {:.2}s\n",
        net.rtt() as f64 / 1e6
    );

    // Naive tuple-at-a-time (§2.1): blocking round trip per tuple.
    let naive = simulate_naive(
        &schema,
        rows.clone(),
        &SemiJoinSpec::new(vec![screen.clone(), analyze.clone()], 1),
        runtime(),
        &net,
    )?;

    // Semi-join with a properly sized pipeline (§2.3.1).
    let k = csq_cost::optimal_concurrency(&net, 1005, 2005, 0);
    let sj = simulate_semijoin(
        &schema,
        rows.clone(),
        &SemiJoinSpec::new(vec![screen.clone(), analyze.clone()], k),
        runtime(),
        &net,
    )?;

    // Client-site join with the screen pushed down (§2.3.2): only survivors'
    // names + reports return.
    let mut csj_spec = ClientJoinSpec::new(vec![screen, analyze]);
    csj_spec.pushed_predicate = Some(csq_expr::PhysExpr::Binary {
        left: Box::new(csq_expr::PhysExpr::Column(2)),
        op: csq_expr::BinaryOp::Eq,
        right: Box::new(csq_expr::PhysExpr::Literal(Value::Bool(true))),
    });
    csj_spec.return_cols = Some(vec![0, 3]); // Name + report
    let csj = simulate_client_join(&schema, rows, &csj_spec, runtime(), &net)?;

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>8}",
        "strategy", "time", "down", "up", "rows"
    );
    for (name, run, rows_out) in [
        ("naive tuple-at-a-time", &naive, naive.rows.len()),
        (&format!("semi-join (K={k})"), &sj, sj.rows.len()),
        ("client-site join", &csj, csj.rows.len()),
    ] {
        println!(
            "{:<22} {:>8.1}s {:>10} B {:>10} B {:>8}",
            name,
            run.elapsed_secs(),
            run.down_bytes,
            run.up_bytes,
            rows_out
        );
    }
    println!(
        "\nnaive/semi-join speedup: {:.1}x (latency hiding, Figure 2)",
        naive.elapsed_us as f64 / sj.elapsed_us as f64
    );
    println!(
        "client-site join vs semi-join: {:.2}x (selective pushdown trades \
         downlink for uplink, Figure 5)",
        csj.elapsed_us as f64 / sj.elapsed_us as f64
    );
    Ok(())
}
