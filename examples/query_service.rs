//! The query service end to end (DESIGN.md §8, §12): start a server over real
//! loopback TCP, query it from a single connection with a prepared
//! statement, then from a bounded connection pool shared by threads.
//!
//! ```sh
//! cargo run --example query_service
//! ```

use std::sync::Arc;

use csq::prelude::*;

fn main() {
    let db = Arc::new(Database::new(NetworkSpec::lan()));
    db.execute("CREATE TABLE T (Id INT, Grp INT)").unwrap();
    db.execute("INSERT INTO T VALUES (1, 0), (2, 1), (3, 0), (4, 1), (5, 0)")
        .unwrap();

    // Server: idle sessions park in the connection scheduler; only
    // executing statements occupy the worker pool. Bounded admission,
    // graceful shutdown.
    let server = csq::service::start(db.clone(), ServiceConfig::default()).unwrap();
    println!("serving on {}", server.local_addr());

    // One connection: ad-hoc queries and prepared statements.
    let mut conn = ServiceConn::connect(server.local_addr()).unwrap();
    let (stmt, _) = conn.prepare("SELECT T.Id FROM T T WHERE T.Id > 1").unwrap();
    let first = conn.execute(stmt).unwrap();
    let second = conn.execute(stmt).unwrap();
    assert_eq!(first.rows.len(), 4);
    assert!(second.plan_cache_hit, "repeat execution reuses the plan");
    println!(
        "prepared statement: {} rows, plan cached = {}",
        second.rows.len(),
        second.plan_cache_hit
    );
    conn.close();

    // A bounded pool shared by many threads: size it for the client's
    // concurrency — idle pooled connections cost the server ~nothing.
    let pool = Arc::new(ConnectionPool::new(server.local_addr(), 4).unwrap());
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut conn = pool.get().unwrap();
                let out = conn
                    .query("SELECT T.Grp, count(*) FROM T T GROUP BY T.Grp")
                    .unwrap();
                assert_eq!(out.rows.len(), 2);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let out = pool
        .get()
        .unwrap()
        .query("SELECT count(*) FROM T T")
        .unwrap();
    assert_eq!(out.rows[0].value(0), &Value::Int(5));
    println!("pooled queries done; stats: {:?}", db.plan_cache_stats());

    server.shutdown();
    println!("server drained and stopped");
}
