//! SQL lexer.

use csq_common::{CsqError, Result};

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source where the token starts.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True when the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `src` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_simple(&mut tokens, TokenKind::LParen, start, &mut i),
            ')' => push_simple(&mut tokens, TokenKind::RParen, start, &mut i),
            ',' => push_simple(&mut tokens, TokenKind::Comma, start, &mut i),
            '.' => push_simple(&mut tokens, TokenKind::Dot, start, &mut i),
            '*' => push_simple(&mut tokens, TokenKind::Star, start, &mut i),
            '+' => push_simple(&mut tokens, TokenKind::Plus, start, &mut i),
            '-' => push_simple(&mut tokens, TokenKind::Minus, start, &mut i),
            '/' => push_simple(&mut tokens, TokenKind::Slash, start, &mut i),
            ';' => push_simple(&mut tokens, TokenKind::Semicolon, start, &mut i),
            '=' => push_simple(&mut tokens, TokenKind::Eq, start, &mut i),
            '<' => {
                i += 1;
                let kind = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    TokenKind::LtEq
                } else if i < bytes.len() && bytes[i] == b'>' {
                    i += 1;
                    TokenKind::NotEq
                } else {
                    TokenKind::Lt
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            '>' => {
                i += 1;
                let kind = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            '!' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                } else {
                    return Err(err_at(src, start, "expected '=' after '!'"));
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err_at(src, start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        // '' escapes a quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    // Strings are UTF-8; copy byte-wise (valid since src is str).
                    let ch_len = utf8_len(bytes[i]);
                    s.push_str(&src[i..i + ch_len]);
                    i += ch_len;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                    end += 1;
                }
                if end < bytes.len()
                    && bytes[end] == b'.'
                    && end + 1 < bytes.len()
                    && (bytes[end + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    end += 1;
                    while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                        end += 1;
                    }
                }
                if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
                    let mut j = end + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            j += 1;
                        }
                        end = j;
                    }
                }
                let text = &src[i..end];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse::<f64>()
                            .map_err(|e| err_at(src, start, &format!("bad float: {e}")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse::<i64>()
                            .map_err(|e| err_at(src, start, &format!("bad integer: {e}")))?,
                    )
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let c = bytes[end] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[i..end].to_string()),
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(err_at(
                    src,
                    start,
                    &format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

fn push_simple(tokens: &mut Vec<Token>, kind: TokenKind, start: usize, i: &mut usize) {
    *i += 1;
    tokens.push(Token {
        kind,
        offset: start,
    });
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Build a parse error showing line/column.
pub fn err_at(src: &str, offset: usize, msg: &str) -> CsqError {
    let clamped = offset.min(src.len());
    let prefix = &src[..clamped];
    let line = prefix.matches('\n').count() + 1;
    let col = clamped - prefix.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
    CsqError::Parse(format!("line {line}, column {col}: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_query_tokens() {
        let ks = kinds("SELECT S.Name FROM StockQuotes S WHERE ClientAnalysis(S.Quotes) > 500");
        assert!(ks.contains(&TokenKind::Ident("ClientAnalysis".into())));
        assert!(ks.contains(&TokenKind::Gt));
        assert!(ks.contains(&TokenKind::Int(500)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(
            kinds("1 2.5 0.2 1e3 2.5E-2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(0.2),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dotted_reference_is_ident_dot_ident() {
        assert_eq!(
            kinds("S.Close"),
            vec![
                TokenKind::Ident("S".into()),
                TokenKind::Dot,
                TokenKind::Ident("Close".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(
            kinds("'it''s' 'héllo'"),
            vec![
                TokenKind::Str("it's".into()),
                TokenKind::Str("héllo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- this is a comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors_with_position() {
        let e = tokenize("SELECT 'oops").unwrap_err();
        assert_eq!(e.kind(), "parse");
        assert!(e.message().contains("line 1"));
    }

    #[test]
    fn bad_char_errors() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
