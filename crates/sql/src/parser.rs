//! Recursive-descent parser.
//!
//! Expression grammar (lowest to highest precedence):
//!
//! ```text
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp_expr
//! cmp_expr   := add_expr ((= | <> | < | <= | > | >=) add_expr)?
//! add_expr   := mul_expr ((+ | -) mul_expr)*
//! mul_expr   := unary ((* | /) unary)*
//! unary      := - unary | primary
//! primary    := literal | ident args? | ident.ident | ( or_expr )
//! ```

use csq_common::{CsqError, DataType, Result, Value};
use csq_expr::{analysis, AggFunc, BinaryOp, ColumnRef, Expr, UnaryOp};

use crate::ast::{SelectItem, SelectStmt, Statement, TableRef};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a single statement (an optional trailing `;` is allowed).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(src: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat_if(&TokenKind::Semicolon) {}
        if p.peek_kind() == &TokenKind::Eof {
            break;
        }
        out.push(p.statement()?);
        if p.peek_kind() != &TokenKind::Eof && !p.eat_if(&TokenKind::Semicolon) {
            return Err(p.err_here("expected ';' between statements"));
        }
    }
    Ok(out)
}

/// Parse a standalone scalar expression (used by tests and the REPL-ish API).
pub fn parse_expression(src: &str) -> Result<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.or_expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>> {
        Ok(Parser {
            src,
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_kind().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token> {
        if self.peek_kind() == kind {
            Ok(self.advance())
        } else {
            Err(self.err_here(&format!("expected {what}")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected keyword {kw}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) if !is_reserved(&s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.err_here(&format!("expected {what}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek_kind() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err_here("unexpected trailing input"))
        }
    }

    fn err_here(&self, msg: &str) -> CsqError {
        let t = self.peek();
        crate::lexer::err_at(self.src, t.offset, &format!("{msg} (found {:?})", t.kind))
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kind().is_keyword("CREATE") {
            self.create_table()
        } else if self.peek_kind().is_keyword("INSERT") {
            self.insert()
        } else if self.peek_kind().is_keyword("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else {
            Err(self.err_here("expected CREATE, INSERT, or SELECT"))
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.expect_ident("table name")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            let ty_name = self.expect_ident("type name")?;
            let dtype = DataType::parse(&ty_name)?;
            columns.push((col, dtype));
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        if columns.is_empty() {
            return Err(CsqError::Parse(
                "CREATE TABLE needs at least one column".into(),
            ));
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_ident("table name")?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.or_expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            rows.push(row);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat_if(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.or_expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.expect_ident("output alias")?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let name = self.expect_ident("table name")?;
            // Optional alias: a bare identifier that isn't a clause keyword.
            let alias = match self.peek_kind() {
                TokenKind::Ident(s) if !is_reserved(s) => {
                    let a = s.clone();
                    self.advance();
                    a
                }
                _ => name.clone(),
            };
            from.push(TableRef { name, alias });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.or_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.or_expr()?;
                if analysis::contains_aggregate(&e) {
                    return Err(self.err_here("aggregate calls are not allowed in GROUP BY"));
                }
                group_by.push(e);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.or_expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    // ---- expressions -----------------------------------------------------

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.add_expr()?;
            Ok(Expr::binary(left, op, right))
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.mul_expr()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_if(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negation of numeric literals so INSERT can use -5 directly.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::from(s)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.or_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if is_reserved(&name) {
                    return Err(self.err_here("expected expression"));
                }
                self.advance();
                // Aggregate call? (COUNT/SUM/MIN/MAX/AVG are contextual:
                // only special when directly followed by an argument list.)
                if let Some(func) = AggFunc::parse(&name) {
                    if self.peek_kind() == &TokenKind::LParen {
                        return self.aggregate_call(func);
                    }
                }
                // Function call?
                if self.eat_if(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek_kind() != &TokenKind::RParen {
                        loop {
                            args.push(self.or_expr()?);
                            if !self.eat_if(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Expr::Udf { name, args });
                }
                // Qualified column?
                if self.eat_if(&TokenKind::Dot) {
                    let col = self.expect_ident("column name")?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, col)));
                }
                Ok(Expr::Column(ColumnRef::bare(name)))
            }
            _ => Err(self.err_here("expected expression")),
        }
    }

    /// Parse the argument list of an aggregate call; the name and the
    /// lookahead `(` have already been seen.
    fn aggregate_call(&mut self, func: AggFunc) -> Result<Expr> {
        self.expect(&TokenKind::LParen, "'('")?;
        // COUNT(*) — the only aggregate that takes `*`.
        if func == AggFunc::Count && self.eat_if(&TokenKind::Star) {
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Expr::agg(AggFunc::Count, None));
        }
        if self.peek_kind() == &TokenKind::RParen {
            return Err(self.err_here(&format!(
                "{} takes exactly one argument (or * for COUNT)",
                func.name()
            )));
        }
        let arg = self.or_expr()?;
        if analysis::contains_aggregate(&arg) {
            return Err(self.err_here(&format!(
                "aggregate calls cannot be nested inside {}",
                func.name()
            )));
        }
        if self.eat_if(&TokenKind::Comma) {
            return Err(self.err_here(&format!("{} takes exactly one argument", func.name())));
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(Expr::agg(func, Some(arg)))
    }
}

/// Keywords that cannot be identifiers (kept minimal so e.g. `Name` works).
fn is_reserved(s: &str) -> bool {
    const KW: &[&str] = &[
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "AS", "CREATE", "TABLE", "INSERT", "INTO",
        "VALUES", "TRUE", "FALSE", "NULL", "GROUP", "BY", "HAVING",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SelectItem;

    #[test]
    fn parses_figure1_query() {
        let stmt = parse_statement(
            "SELECT S.Name, S.Report \
             FROM StockQuotes S \
             WHERE S.Change / S.Close > 0.2 AND ClientAnalysis(S.Quotes) > 500",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected SELECT")
        };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(
            sel.from,
            vec![TableRef {
                name: "StockQuotes".into(),
                alias: "S".into()
            }]
        );
        let w = sel.where_clause.unwrap();
        assert_eq!(
            w.to_string(),
            "(((S.Change / S.Close) > 0.2) AND (ClientAnalysis(S.Quotes) > 500))"
        );
    }

    #[test]
    fn parses_figure11_two_table_query() {
        let stmt = parse_statement(
            "SELECT S.Name, E.BrokerName \
             FROM StockQuotes S, Estimations E \
             WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[1].alias, "E");
    }

    #[test]
    fn parses_udf_in_select_list() {
        // The Volatility extension of Section 5.1.2.
        let stmt = parse_statement(
            "SELECT S.Name, Volatility(S.Quotes, S.FuturePrices) FROM StockQuotes S",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        match &sel.items[1] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "Volatility(S.Quotes, S.FuturePrices)");
            }
            _ => panic!("expected expression item"),
        }
    }

    #[test]
    fn select_star_and_alias() {
        let stmt = parse_statement("SELECT *, Close AS c FROM q").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.items[0], SelectItem::Wildcard);
        match &sel.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("c")),
            _ => panic!(),
        }
        assert_eq!(sel.from[0].alias, "q");
    }

    #[test]
    fn create_table_parses_types() {
        let stmt =
            parse_statement("CREATE TABLE t (a INT, b FLOAT, c STRING, d BLOB, e BOOL)").unwrap();
        let Statement::CreateTable { name, columns } = stmt else {
            panic!()
        };
        assert_eq!(name, "t");
        assert_eq!(columns.len(), 5);
        assert_eq!(columns[3].1, DataType::Blob);
    }

    #[test]
    fn insert_multi_row_with_negatives() {
        let stmt = parse_statement("INSERT INTO t VALUES (1, -2.5, 'x'), (-3, 4.0, NULL)").unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Expr::Literal(Value::Float(-2.5)));
        assert_eq!(rows[1][0], Expr::Literal(Value::Int(-3)));
        assert_eq!(rows[1][2], Expr::Literal(Value::Null));
    }

    #[test]
    fn precedence_and_parens() {
        let e = parse_expression("1 + 2 * 3 > 6 AND NOT false OR a = b").unwrap();
        assert_eq!(
            e.to_string(),
            "((((1 + (2 * 3)) > 6) AND NOT (false)) OR (a = b))"
        );
        let e = parse_expression("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "((1 + 2) * 3)");
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_statement("SELECT FROM t").unwrap_err();
        assert_eq!(e.kind(), "parse");
        assert!(e.message().contains("line 1"), "{}", e.message());
        assert!(parse_statement("SELECT a FROM").is_err());
        assert!(parse_statement("CREATE TABLE t ()").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage here").is_err());
    }

    #[test]
    fn reserved_words_cannot_be_identifiers() {
        assert!(parse_statement("SELECT a FROM select").is_err());
    }

    #[test]
    fn function_with_no_args() {
        let e = parse_expression("now()").unwrap();
        assert_eq!(e, Expr::udf("now", vec![]));
    }
}
