//! Statement-level AST produced by the parser.

use csq_common::DataType;
use csq_expr::Expr;

/// A table reference in FROM: `name [alias]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Catalog table name.
    pub name: String,
    /// Alias (defaults to the table name when omitted).
    pub alias: String,
}

/// One SELECT item: an expression with an optional output alias, or `*`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of the FROM product.
    Wildcard,
    /// `expr [AS alias]`.
    Expr { expr: Expr, alias: Option<String> },
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM tables (implicit cross product, constrained by WHERE).
    pub from: Vec<TableRef>,
    /// WHERE predicate, if any.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions (empty when absent).
    pub group_by: Vec<Expr>,
    /// HAVING predicate, if any (requires GROUP BY).
    pub having: Option<Expr>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions in order.
        columns: Vec<(String, DataType)>,
    },
    /// `INSERT INTO name VALUES (..), (..)` — values must be literals
    /// (possibly signed numbers).
    Insert {
        /// Target table.
        table: String,
        /// Rows of literal expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// A SELECT query.
    Select(SelectStmt),
}
