//! # csq-sql — SQL front end
//!
//! A hand-written lexer and recursive-descent parser for the SQL subset the
//! paper's queries use:
//!
//! ```sql
//! CREATE TABLE StockQuotes (Name STRING, Close FLOAT, Quotes BLOB);
//! INSERT INTO StockQuotes VALUES ('acme', 100.0, NULL);
//! SELECT S.Name, S.Report
//! FROM   StockQuotes S
//! WHERE  S.Change / S.Close > 0.2 AND ClientAnalysis(S.Quotes) > 500;
//! ```
//!
//! UDF calls parse as ordinary function-call expressions; whether a function
//! is client-site is resolved later against the function registry.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{SelectStmt, Statement, TableRef};
pub use parser::{parse_expression, parse_statement, parse_statements};
