//! # csq-cost — the paper's bandwidth cost model (§3.2)
//!
//! The model quantifies, per input tuple, how many bytes each strategy puts
//! on the client's downlink and uplink, weighs the uplink by the network
//! asymmetry `N`, and takes the **bottleneck link** (the maximum) as the
//! strategy's cost:
//!
//! ```text
//! semi-join:        down = D·A·I          up(weighted) = N·D·R
//! client-site join: down = I              up(weighted) = N·(I+R)·P·S
//! cost(strategy)  = max(down, weighted up)
//! ```
//!
//! with `A` = argument fraction of the record, `D` = distinct-argument
//! fraction, `S` = pushable-predicate selectivity, `P` = pushable-projection
//! column selectivity, `I` = input record bytes, `R` = result bytes,
//! `N` = downlink/uplink bandwidth ratio.
//!
//! The module also provides the §3.1.2 analysis of the optimal pipeline
//! concurrency factor (the bandwidth-delay product), the breakpoints the
//! paper reads off Figures 8–10, and a strategy chooser used by the
//! optimizer.

use csq_net::{NetworkSpec, SimTime};

/// The seven parameters of §3.2.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// `A`: size of argument columns / total input record size, in (0,1].
    pub a: f64,
    /// `D`: distinct argument tuples / input cardinality, in (0,1].
    pub d: f64,
    /// `S`: selectivity of the pushable predicates, in \[0,1].
    pub s: f64,
    /// `P`: pushable-projection output fraction of `(I+R)`, in (0,1].
    pub p: f64,
    /// `I`: one input record, bytes.
    pub i: f64,
    /// `R`: one UDF result, bytes.
    pub r: f64,
    /// `N`: downlink bandwidth / uplink bandwidth.
    pub n: f64,
}

impl CostParams {
    /// Parameters with the paper's "default" shape: no duplicates, no
    /// pushdown reductions, symmetric network.
    pub fn new(i: f64, r: f64) -> CostParams {
        CostParams {
            a: 1.0,
            d: 1.0,
            s: 1.0,
            p: 1.0,
            i,
            r,
            n: 1.0,
        }
    }

    /// The paper's Figure 7/8 convention for `P`: only non-argument columns
    /// and results are returned, i.e. `P·(I+R) = I·(1−A) + R`.
    pub fn with_paper_projection(mut self) -> CostParams {
        self.p = (self.i * (1.0 - self.a) + self.r) / (self.i + self.r);
        self
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("A", self.a, 0.0, 1.0),
            ("D", self.d, 0.0, 1.0),
            ("S", self.s, 0.0, 1.0),
            ("P", self.p, 0.0, 1.0),
        ];
        for (name, v, lo, hi) in checks {
            if !(lo..=hi).contains(&v) || v.is_nan() {
                return Err(format!("{name} = {v} outside [{lo}, {hi}]"));
            }
        }
        if self.i < 0.0 || self.r < 0.0 {
            return Err("I and R must be non-negative".into());
        }
        if self.n <= 0.0 {
            return Err("N must be positive".into());
        }
        Ok(())
    }
}

/// Per-tuple byte costs of one strategy on both links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCosts {
    /// Bytes on the downlink per input tuple.
    pub down: f64,
    /// Bytes on the uplink per input tuple, *weighted by N* so the two
    /// directions are comparable in transfer time.
    pub up_weighted: f64,
}

impl LinkCosts {
    /// The bottleneck cost: `max(down, up_weighted)` (§3.2.1).
    pub fn bottleneck(&self) -> f64 {
        self.down.max(self.up_weighted)
    }

    /// Which link dominates.
    pub fn bottleneck_link(&self) -> Bottleneck {
        if self.down >= self.up_weighted {
            Bottleneck::Downlink
        } else {
            Bottleneck::Uplink
        }
    }
}

/// Which link limits a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    Downlink,
    Uplink,
}

/// Semi-join per-tuple costs: dedup'd argument columns down, dedup'd results
/// up, no pushdowns possible.
pub fn semijoin_costs(p: &CostParams) -> LinkCosts {
    LinkCosts {
        down: p.d * p.a * p.i,
        up_weighted: p.n * p.d * p.r,
    }
}

/// Client-site join per-tuple costs: whole records down (duplicates
/// included), filtered/projected records + results up.
pub fn client_join_costs(p: &CostParams) -> LinkCosts {
    LinkCosts {
        down: p.i,
        up_weighted: p.n * (p.i + p.r) * p.p * p.s,
    }
}

/// Relative execution time CSJ/SJ predicted by the model — the y-axis of
/// Figures 8, 9, and 10.
pub fn relative_time(p: &CostParams) -> f64 {
    client_join_costs(p).bottleneck() / semijoin_costs(p).bottleneck()
}

/// The two client-site strategies the model chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    SemiJoin,
    ClientJoin,
}

/// Pick the cheaper strategy under the model (ties go to the semi-join,
/// which needs no pushdown analysis).
pub fn choose_strategy(p: &CostParams) -> Strategy {
    if client_join_costs(p).bottleneck() < semijoin_costs(p).bottleneck() {
        Strategy::ClientJoin
    } else {
        Strategy::SemiJoin
    }
}

/// Predicted wall-clock seconds to process `tuples` input tuples: the
/// bottleneck link's bytes divided by that link's bandwidth. (Latency adds a
/// constant pipeline-fill term which the paper's model ignores; so do we.)
pub fn predicted_seconds(
    p: &CostParams,
    tuples: usize,
    strategy: Strategy,
    net: &NetworkSpec,
) -> f64 {
    let costs = match strategy {
        Strategy::SemiJoin => semijoin_costs(p),
        Strategy::ClientJoin => client_join_costs(p),
    };
    let down_secs = costs.down * tuples as f64 / net.down_bandwidth;
    // `up_weighted` folded N in; undo it and charge the real uplink.
    let up_bytes = costs.up_weighted / p.n;
    let up_secs = up_bytes * net.uplink_inflation * tuples as f64 / net.up_bandwidth;
    down_secs.max(up_secs)
}

/// Selectivity below which the client-site join is downlink-bound (the flat
/// region of Figures 8/9): `S* = I / (N·P·(I+R))`, clamped to \[0,1].
pub fn csj_flat_region_end(p: &CostParams) -> f64 {
    let denom = p.n * p.p * (p.i + p.r);
    if denom <= 0.0 {
        return 1.0;
    }
    (p.i / denom).clamp(0.0, 1.0)
}

/// The selectivity at which CSJ and SJ cost the same, if one exists in
/// (0,1]. Below it the client-site join wins. The paper reads these
/// crossings off Figures 8–10: they satisfy `S·P·(I+R) = D·R` when both
/// strategies are uplink-bound.
pub fn crossover_selectivity(p: &CostParams) -> Option<f64> {
    let sj = semijoin_costs(p).bottleneck();
    // CSJ cost as a function of S: max(I, N·(I+R)·P·S) — monotone in S.
    let at = |s: f64| {
        let mut q = *p;
        q.s = s;
        client_join_costs(&q).bottleneck()
    };
    if at(0.0) > sj {
        return None; // CSJ already loses with S=0 (downlink too dear).
    }
    if at(1.0) <= sj {
        return Some(1.0); // CSJ wins everywhere.
    }
    // Solve N·(I+R)·P·S = sj.
    let s = sj / (p.n * (p.i + p.r) * p.p);
    Some(s.clamp(0.0, 1.0))
}

/// The result size at which CSJ and SJ cost the same for a fixed
/// selectivity — the Figure 10 crossings. Solved numerically by bisection
/// because `R` appears on both sides. Returns `None` when CSJ never matches
/// SJ within `(0, r_max]`.
pub fn crossover_result_size(p: &CostParams, r_max: f64) -> Option<f64> {
    let rel = |r: f64| {
        let mut q = *p;
        q.r = r;
        if q.p != 1.0 {
            // Preserve the paper's projection convention when in use:
            // recompute P from A and the new R.
            q = q.with_paper_projection();
        }
        relative_time(&q)
    };
    let (mut lo, mut hi) = (1e-9, r_max);
    let (f_lo, f_hi) = (rel(lo) - 1.0, rel(hi) - 1.0);
    if f_lo.signum() == f_hi.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let f_mid = rel(mid) - 1.0;
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// §3.1.2: the optimal pipeline concurrency factor is the number of tuples
/// the pipeline can hold — bottleneck throughput × end-to-end time
/// (bandwidth-delay product in tuples).
///
/// `arg_msg_bytes` / `result_msg_bytes` are the per-tuple message sizes on
/// each link; `client_us` is the client's per-tuple CPU time.
pub fn optimal_concurrency(
    net: &NetworkSpec,
    arg_msg_bytes: usize,
    result_msg_bytes: usize,
    client_us: u64,
) -> usize {
    let down_t = arg_msg_bytes as f64 / net.down_bandwidth * 1e6;
    let up_t = result_msg_bytes as f64 * net.uplink_inflation / net.up_bandwidth * 1e6;
    let service = down_t.max(up_t).max(client_us as f64);
    if service <= 0.0 {
        return 1;
    }
    let total = down_t + net.down_latency as f64 + client_us as f64 + up_t + net.up_latency as f64;
    (total / service).ceil().max(1.0) as usize
}

/// Amdahl's-law speedup of the local engine at degree-of-parallelism `dop`
/// with parallelizable fraction `f`: `1 / ((1 − f) + f / dop)`.
///
/// Plan costing uses this to discount server-side per-tuple work when the
/// morsel-driven engine (DESIGN.md §4) runs a plan with `dop` workers: the
/// paper treats server cost as negligible, so this only sharpens the
/// tie-breaker between network-equal plans, but it keeps the knob honest —
/// doubling workers never halves cost (the serial fraction stays).
pub fn parallel_scale(dop: usize, parallel_fraction: f64) -> f64 {
    let dop = dop.max(1) as f64;
    let f = parallel_fraction.clamp(0.0, 1.0);
    1.0 / ((1.0 - f) + f / dop)
}

// ---- grouped-aggregation placement (DESIGN.md §7) --------------------------

/// Where a grouped aggregation's partial phase runs relative to the
/// client-server split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggPlacement {
    /// Ship the pre-aggregation rows; the client aggregates everything.
    ClientOnly,
    /// The server partially aggregates (rows → groups) and ships decomposed
    /// state; the client merges and finishes.
    ServerPartial,
    /// N-site generalization (DESIGN.md §13): every shard of a hash-sharded
    /// table partially aggregates its local rows, the per-shard decomposed
    /// states are gathered, and the coordinator merges and finishes. The
    /// two-site `ServerPartial` is the `shards = 1` degenerate case.
    ShardPartial,
}

impl AggPlacement {
    /// Explain label.
    pub fn label(self) -> &'static str {
        match self {
            AggPlacement::ClientOnly => "client-only",
            AggPlacement::ServerPartial => "server-partial",
            AggPlacement::ShardPartial => "shard-partial",
        }
    }
}

/// Estimate the number of groups a GROUP BY produces: the product of the
/// key columns' distinct counts (independence assumption), capped by the
/// input cardinality. No keys = one global group.
pub fn estimate_group_count(rows: f64, key_distincts: &[f64]) -> f64 {
    if rows <= 0.0 {
        return 0.0;
    }
    let mut d = 1.0f64;
    for &k in key_distincts {
        d *= k.max(1.0);
    }
    d.min(rows)
}

/// The partial-aggregation reduction factor `groups / rows` in (0, 1]: the
/// fraction of the input cardinality that survives server-side partial
/// aggregation and has to cross the wire.
pub fn agg_reduction_factor(rows: f64, groups: f64) -> f64 {
    if rows <= 0.0 {
        return 1.0;
    }
    (groups / rows).clamp(0.0, 1.0)
}

/// Wire bytes of one shipped partial-aggregate state (per group, excluding
/// the key columns): COUNT ships a 9-byte Int, SUM/MIN/MAX ship their
/// running value (the argument's width), AVG ships running sum + count.
pub fn agg_state_bytes(func: csq_expr::AggFunc, arg_bytes: f64) -> f64 {
    use csq_expr::AggFunc;
    const INT_WIRE: f64 = 9.0; // 1 tag + 8 payload
    match func {
        AggFunc::Count => INT_WIRE,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg_bytes,
        AggFunc::Avg => INT_WIRE + INT_WIRE, // running sum + count
    }
}

/// Shipping-volume inputs of the placement choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggPlacementParams {
    /// Pre-aggregation input cardinality at the server.
    pub rows: f64,
    /// Estimated group count ([`estimate_group_count`]).
    pub groups: f64,
    /// Bytes per *row* the client-only placement ships (group-key columns +
    /// aggregate argument columns).
    pub row_bytes: f64,
    /// Bytes per *group* the server-partial placement ships (group-key
    /// columns + decomposed state, [`agg_state_bytes`]).
    pub state_bytes: f64,
}

impl AggPlacementParams {
    /// Downlink bytes a placement puts on the wire. `ShardPartial` here is
    /// the single-site degenerate figure; [`ShardedAggParams::gather_bytes`]
    /// gives the N-shard gather volume (a group's state crosses once per
    /// shard that holds any of its rows).
    pub fn down_bytes(&self, placement: AggPlacement) -> f64 {
        match placement {
            AggPlacement::ClientOnly => self.rows * self.row_bytes,
            AggPlacement::ServerPartial | AggPlacement::ShardPartial => {
                self.groups * self.state_bytes
            }
        }
    }

    /// The reduction factor below which server-partial ships fewer bytes:
    /// `groups/rows < row_bytes/state_bytes`. Above 1.0 the state overhead
    /// never loses; at 0 it never wins.
    pub fn breakeven_reduction(&self) -> f64 {
        if self.state_bytes <= 0.0 {
            return 1.0;
        }
        self.row_bytes / self.state_bytes
    }
}

/// Pick the placement that ships fewer bytes across the bottleneck link;
/// ties go to client-only (no extra server work, no state framing).
pub fn choose_agg_placement(p: &AggPlacementParams) -> AggPlacement {
    if p.down_bytes(AggPlacement::ServerPartial) < p.down_bytes(AggPlacement::ClientOnly) {
        AggPlacement::ServerPartial
    } else {
        AggPlacement::ClientOnly
    }
}

/// Shipping-volume inputs of the N-site placement choice (DESIGN.md §13):
/// the two-site [`AggPlacementParams`] plus the shard count the table's rows
/// are hash-partitioned over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedAggParams {
    /// The two-site volume inputs; `rows` and `groups` describe the *whole*
    /// table, not one shard.
    pub base: AggPlacementParams,
    /// Number of shards holding the table's rows (≥ 1).
    pub shards: usize,
}

impl ShardedAggParams {
    /// Expected groups present on a single shard. Hash partitioning spreads
    /// rows evenly, so a shard sees `rows / shards` rows and can hold at
    /// most that many groups — and never more than the table's total group
    /// count. `min(groups, rows/shards)` keeps the same cap-style estimate
    /// as [`estimate_group_count`].
    pub fn per_shard_groups(&self) -> f64 {
        let n = self.shards.max(1) as f64;
        self.base.groups.min((self.base.rows / n).max(1.0))
    }

    /// Gather volume of the shard-partial placement: each shard ships the
    /// decomposed state of every group it holds, so a wide-spread group's
    /// state crosses the wire once per shard (the coordinator merges the
    /// duplicates).
    pub fn gather_bytes(&self) -> f64 {
        self.shards.max(1) as f64 * self.per_shard_groups() * self.base.state_bytes
    }

    /// The reduction factor below which shard-partial ships fewer bytes than
    /// gathering the raw rows, accounting for per-shard state duplication.
    pub fn breakeven_reduction(&self) -> f64 {
        if self.base.state_bytes <= 0.0 {
            return 1.0;
        }
        self.base.row_bytes / self.base.state_bytes
    }
}

/// N-site analogue of [`choose_agg_placement`]: shard-partial when the
/// per-shard partial states (with their cross-shard group duplication) ship
/// fewer bytes than the raw pre-aggregation rows; ties go to client-only.
/// At `shards = 1` this agrees with the two-site chooser by construction.
pub fn choose_sharded_agg_placement(p: &ShardedAggParams) -> AggPlacement {
    if p.gather_bytes() < p.base.down_bytes(AggPlacement::ClientOnly) {
        AggPlacement::ShardPartial
    } else {
        AggPlacement::ClientOnly
    }
}

/// Measure `I`, `A`, and `D` from actual rows: the average record wire
/// size, the argument fraction, and the distinct-argument fraction over the
/// given argument column ordinals.
pub fn measure_params(rows: &[csq_common::Row], arg_cols: &[usize]) -> (f64, f64, f64) {
    if rows.is_empty() {
        return (0.0, 1.0, 1.0);
    }
    let mut total = 0usize;
    let mut arg_total = 0usize;
    let mut distinct = std::collections::HashSet::new();
    for row in rows {
        total += row.wire_size();
        let key = row.project(arg_cols);
        arg_total += key.wire_size();
        distinct.insert(key);
    }
    let i = total as f64 / rows.len() as f64;
    let a = if total > 0 {
        arg_total as f64 / total as f64
    } else {
        1.0
    };
    let d = distinct.len() as f64 / rows.len() as f64;
    (i, a, d)
}

/// Timing components for a single-tuple round trip — exposes what the naive
/// strategy pays per tuple (Figure 2a) and what concurrency hides (2b).
pub fn naive_roundtrip_us(
    net: &NetworkSpec,
    arg_msg_bytes: usize,
    result_msg_bytes: usize,
    client_us: u64,
) -> SimTime {
    let down_t = (arg_msg_bytes as f64 / net.down_bandwidth * 1e6).ceil() as SimTime;
    let up_t =
        (result_msg_bytes as f64 * net.uplink_inflation / net.up_bandwidth * 1e6).ceil() as SimTime;
    down_t + net.down_latency + client_us + up_t + net.up_latency
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameters of the Figure 8 experiment.
    fn fig8_params(r: f64, s: f64) -> CostParams {
        CostParams {
            a: 0.5,
            d: 1.0,
            s,
            p: 1.0, // replaced below
            i: 1000.0,
            r,
            n: 1.0,
        }
        .with_paper_projection()
    }

    /// Parameters of the Figure 9 experiment.
    fn fig9_params(r: f64, s: f64) -> CostParams {
        CostParams {
            a: 0.8,
            d: 1.0,
            s,
            p: 1.0,
            i: 5000.0,
            r,
            n: 100.0,
        }
        .with_paper_projection()
    }

    #[test]
    fn paper_projection_identity() {
        // P·(I+R) must equal I·(1−A)+R.
        let p = fig8_params(1000.0, 0.5);
        assert!((p.p * (p.i + p.r) - (p.i * 0.5 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn fig8_flat_then_linear() {
        // R=1000: flat while downlink-bound; kink near S ≈ I/(P·(I+R)) = 2/3.
        let kink = csj_flat_region_end(&fig8_params(1000.0, 0.0));
        assert!((kink - 1000.0 / 1500.0).abs() < 1e-9, "kink = {kink}");
        let r_low = relative_time(&fig8_params(1000.0, 0.1));
        let r_low2 = relative_time(&fig8_params(1000.0, 0.5));
        assert!((r_low - r_low2).abs() < 1e-12, "flat region");
        let r_hi = relative_time(&fig8_params(1000.0, 0.9));
        assert!(r_hi > r_low, "rises after the kink");
    }

    #[test]
    fn fig8_larger_results_run_deeper() {
        // "With larger result sizes the flat part of the curve ... will run
        // deeper" — at S=0.2 the relative time decreases with R.
        let rels: Vec<f64> = [100.0, 1000.0, 2000.0, 5000.0]
            .iter()
            .map(|&r| relative_time(&fig8_params(r, 0.2)))
            .collect();
        assert!(rels.windows(2).all(|w| w[1] < w[0]), "{rels:?}");
        // The 2000-byte curve flattens at 0.5 (paper: "the curve for 2000
        // goes flat at 0.5 (1000 bytes on s.j.downlink / 2000 bytes on
        // c.s.j.uplink)"): relative time in the flat region = I_down / (N·D·R).
        let rel2000 = relative_time(&fig8_params(2000.0, 0.1));
        assert!((rel2000 - 0.5).abs() < 1e-9, "rel2000 = {rel2000}");
    }

    #[test]
    fn fig9_downlink_never_bottleneck() {
        // N=100: the paper predicts the downlink only matters below
        // S = I/(N·P·(R+I)) ≈ 0.0083 for R=5000.
        let end = csj_flat_region_end(&fig9_params(5000.0, 0.0));
        assert!((end - 0.008333).abs() < 1e-4, "end = {end}");
        // So for any realistic S the ratio is linear through ~the origin.
        let r1 = relative_time(&fig9_params(1000.0, 0.2));
        let r2 = relative_time(&fig9_params(1000.0, 0.4));
        assert!((r2 / r1 - 2.0).abs() < 1e-6, "linear in S");
    }

    #[test]
    fn fig10_crossover_brackets_and_monotone() {
        // Fig 10 setup: A=0.2 (arg 100 of 500), I=500, symmetric net. For
        // each selectivity < 1 there is a result size above which the
        // client-site join wins; below it the semi-join wins.
        for s in [0.25, 0.5, 0.75] {
            let base = CostParams {
                a: 0.2,
                d: 1.0,
                s,
                p: 1.0,
                i: 500.0,
                r: 1.0,
                n: 1.0,
            }
            .with_paper_projection();
            let r_star = crossover_result_size(&base, 4000.0)
                .unwrap_or_else(|| panic!("expected a crossover for s={s}"));
            let rel_at = |r: f64| {
                let mut q = base;
                q.r = r;
                relative_time(&q.with_paper_projection())
            };
            assert!((rel_at(r_star) - 1.0).abs() < 0.01, "s={s}, r*={r_star}");
            assert!(rel_at(r_star * 0.5) > 1.0, "SJ wins for small results");
            assert!(rel_at(r_star * 1.5) < 1.0, "CSJ wins for large results");
        }
    }

    #[test]
    fn fig10_paper_identity_when_uplink_bound() {
        // The paper's crossing identity S·P·(I+R) = D·R holds exactly when
        // both strategies are uplink-bound at the crossing — force that
        // regime with an asymmetric network (N = 10).
        let base = CostParams {
            a: 0.2,
            d: 1.0,
            s: 0.5,
            p: 1.0,
            i: 500.0,
            r: 1.0,
            n: 10.0,
        }
        .with_paper_projection();
        let r_star = crossover_result_size(&base, 4000.0).expect("crossover");
        let q = {
            let mut q = base;
            q.r = r_star;
            q.with_paper_projection()
        };
        assert_eq!(client_join_costs(&q).bottleneck_link(), Bottleneck::Uplink);
        assert_eq!(semijoin_costs(&q).bottleneck_link(), Bottleneck::Uplink);
        let lhs = q.s * q.p * (q.i + q.r);
        let rhs = q.d * q.r;
        assert!((lhs - rhs).abs() / rhs < 0.01, "lhs={lhs}, rhs={rhs}");
    }

    #[test]
    fn fig10_selectivity_one_never_crosses() {
        // "The curve for selectivity one will never cross that line."
        let base = CostParams {
            a: 0.2,
            d: 1.0,
            s: 1.0,
            p: 1.0,
            i: 500.0,
            r: 1.0,
            n: 1.0,
        }
        .with_paper_projection();
        for r in [10.0, 100.0, 500.0, 1000.0, 2000.0, 10000.0] {
            let mut q = base;
            q.r = r;
            let q = q.with_paper_projection();
            assert!(
                relative_time(&q) >= 1.0 - 1e-9,
                "r={r}: {}",
                relative_time(&q)
            );
        }
    }

    #[test]
    fn duplicates_help_semijoin_only() {
        let mut p = CostParams::new(1000.0, 500.0);
        p.a = 0.5;
        let rel_nodup = relative_time(&p);
        p.d = 0.25;
        let rel_dup = relative_time(&p);
        assert!(
            rel_dup > rel_nodup,
            "duplicates shrink SJ cost, raising CSJ/SJ"
        );
        // CSJ costs are unchanged by D.
        assert_eq!(client_join_costs(&p).down, 1000.0);
    }

    #[test]
    fn strategy_chooser_matches_relative_time() {
        for (s, r) in [(0.1, 2000.0), (0.9, 100.0), (0.5, 1000.0)] {
            let p = fig8_params(r, s);
            let strat = choose_strategy(&p);
            if relative_time(&p) < 1.0 {
                assert_eq!(strat, Strategy::ClientJoin);
            } else {
                assert_eq!(strat, Strategy::SemiJoin);
            }
        }
    }

    #[test]
    fn crossover_selectivity_brackets() {
        let p = fig8_params(2000.0, 0.0);
        let s_star = crossover_selectivity(&p).expect("crossover exists");
        let mut below = p;
        below.s = (s_star - 0.05).max(0.0);
        let mut above = p;
        above.s = (s_star + 0.05).min(1.0);
        assert!(relative_time(&below) < 1.0 + 1e-9);
        assert!(relative_time(&above) > 1.0 - 1e-9);
    }

    #[test]
    fn optimal_concurrency_is_bdp() {
        // The paper's §4.1 reading: ~5000 bytes of pipeline ⇒ K≈5 for
        // 1000-byte objects, K≈10 for 500-byte ones.
        let net = NetworkSpec::modem_28_8();
        let k1000 = optimal_concurrency(&net, 1000, 1000, 0);
        let k500 = optimal_concurrency(&net, 500, 500, 0);
        let k100 = optimal_concurrency(&net, 100, 100, 0);
        assert!((5..=8).contains(&k1000), "k1000 = {k1000}");
        assert!((10..=14).contains(&k500), "k500 = {k500}");
        assert!((50..=60).contains(&k100), "k100 = {k100}");
    }

    #[test]
    fn predicted_seconds_uses_bottleneck_link() {
        let net = NetworkSpec::symmetric(1000.0, 0);
        let mut p = CostParams::new(1000.0, 100.0);
        p.a = 1.0;
        // SJ: 1000 B down per tuple at 1000 B/s → 1 s/tuple.
        let secs = predicted_seconds(&p, 10, Strategy::SemiJoin, &net);
        assert!((secs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn measure_params_from_rows() {
        use csq_common::{Blob, Row, Value};
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                Row::new(vec![
                    Value::Blob(Blob::synthetic(95, (i % 5) as u64)), // arg, wire 100
                    Value::Blob(Blob::synthetic(95, i as u64)),       // rest, wire 100
                ])
            })
            .collect();
        let (i, a, d) = measure_params(&rows, &[0]);
        assert!((i - 200.0).abs() < 1e-9);
        assert!((a - 0.5).abs() < 1e-9);
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_scale_follows_amdahl() {
        assert_eq!(parallel_scale(1, 0.9), 1.0);
        assert_eq!(parallel_scale(0, 0.9), 1.0, "dop clamps to 1");
        // Monotone in dop, bounded by the serial fraction.
        let s2 = parallel_scale(2, 0.9);
        let s4 = parallel_scale(4, 0.9);
        let s1024 = parallel_scale(1024, 0.9);
        assert!(1.0 < s2 && s2 < s4 && s4 < s1024);
        assert!(s1024 < 10.0, "cap is 1/(1-f) = 10");
        // Fully parallel work scales linearly.
        assert!((parallel_scale(8, 1.0) - 8.0).abs() < 1e-12);
        // Fully serial work does not scale.
        assert_eq!(parallel_scale(8, 0.0), 1.0);
    }

    #[test]
    fn group_count_estimate_caps_and_multiplies() {
        assert_eq!(estimate_group_count(1000.0, &[10.0]), 10.0);
        assert_eq!(estimate_group_count(1000.0, &[50.0, 40.0]), 1000.0, "cap");
        assert_eq!(estimate_group_count(1000.0, &[]), 1.0, "global group");
        assert_eq!(estimate_group_count(0.0, &[10.0]), 0.0);
        // Degenerate distincts clamp to 1, never shrinking the estimate.
        assert_eq!(estimate_group_count(100.0, &[0.0, 5.0]), 5.0);
    }

    #[test]
    fn agg_placement_flips_at_breakeven_reduction() {
        // AVG over a 9-byte int with a 9-byte key: client-only ships 18 B/row,
        // server-partial ships 27 B/group → break-even at reduction 2/3.
        let p = |groups: f64| AggPlacementParams {
            rows: 1000.0,
            groups,
            row_bytes: 18.0,
            state_bytes: 27.0,
        };
        assert!((p(1.0).breakeven_reduction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(choose_agg_placement(&p(300.0)), AggPlacement::ServerPartial);
        assert_eq!(choose_agg_placement(&p(900.0)), AggPlacement::ClientOnly);
        // Exactly at break-even the tie goes to client-only.
        assert_eq!(
            choose_agg_placement(&p(1000.0 * 2.0 / 3.0)),
            AggPlacement::ClientOnly
        );
    }

    #[test]
    fn sharded_agg_placement_generalizes_two_site() {
        let base = |groups: f64| AggPlacementParams {
            rows: 1000.0,
            groups,
            row_bytes: 18.0,
            state_bytes: 27.0,
        };
        // shards = 1 agrees with the two-site chooser (modulo the label).
        for groups in [10.0, 300.0, 900.0] {
            let two = choose_agg_placement(&base(groups));
            let n = choose_sharded_agg_placement(&ShardedAggParams {
                base: base(groups),
                shards: 1,
            });
            match two {
                AggPlacement::ClientOnly => assert_eq!(n, AggPlacement::ClientOnly),
                _ => assert_eq!(n, AggPlacement::ShardPartial),
            }
        }
        // Few groups: every shard holds (nearly) all of them, so the gather
        // volume grows with the shard count — but 4 × 10 groups × 27 B still
        // beats 1000 rows × 18 B.
        let p4 = ShardedAggParams {
            base: base(10.0),
            shards: 4,
        };
        assert_eq!(p4.per_shard_groups(), 10.0);
        assert_eq!(p4.gather_bytes(), 4.0 * 10.0 * 27.0);
        assert_eq!(
            choose_sharded_agg_placement(&p4),
            AggPlacement::ShardPartial
        );
        // No reduction (groups ≈ rows): shard-partial ships state overhead
        // for nothing and loses.
        let flat = ShardedAggParams {
            base: base(1000.0),
            shards: 4,
        };
        assert_eq!(flat.per_shard_groups(), 250.0, "capped by rows/shards");
        assert_eq!(
            choose_sharded_agg_placement(&flat),
            AggPlacement::ClientOnly
        );
        // Shard fan-out can flip a two-site win back to client-only: at 600
        // groups the single-site state gather (16.2 kB) beats raw rows
        // (18 kB), but 4 shards × 250 groups × 27 B = 27 kB does not.
        assert_eq!(
            choose_agg_placement(&base(600.0)),
            AggPlacement::ServerPartial
        );
        assert_eq!(
            choose_sharded_agg_placement(&ShardedAggParams {
                base: base(600.0),
                shards: 4,
            }),
            AggPlacement::ClientOnly
        );
    }

    #[test]
    fn state_bytes_by_function() {
        use csq_expr::AggFunc;
        assert_eq!(agg_state_bytes(AggFunc::Count, 100.0), 9.0);
        assert_eq!(agg_state_bytes(AggFunc::Sum, 9.0), 9.0);
        assert_eq!(agg_state_bytes(AggFunc::Min, 24.0), 24.0);
        assert_eq!(agg_state_bytes(AggFunc::Avg, 9.0), 18.0);
    }

    #[test]
    fn reduction_factor_clamps() {
        assert_eq!(agg_reduction_factor(100.0, 10.0), 0.1);
        assert_eq!(agg_reduction_factor(100.0, 200.0), 1.0);
        assert_eq!(agg_reduction_factor(0.0, 5.0), 1.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut p = CostParams::new(100.0, 10.0);
        p.a = 1.5;
        assert!(p.validate().is_err());
        p.a = 0.5;
        p.n = 0.0;
        assert!(p.validate().is_err());
        p.n = 1.0;
        assert!(p.validate().is_ok());
    }
}
