//! A file with zero violations: errors are returned, unsafe is justified,
//! sync goes through the vendored shims, capacities are guarded.

use parking_lot::Mutex;

pub fn handler(input: Option<u32>) -> Result<u32, Error> {
    input.ok_or(Error::Missing)
}

pub fn view(bytes: &[u8]) -> &str {
    // SAFETY: every constructor validated the bytes as UTF-8.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

pub fn decode(buf: &mut Cursor) -> Result<Vec<u8>, Error> {
    let n = take_count(buf, 1)?;
    let mut v = Vec::with_capacity(n);
    fill(&mut v, buf)?;
    Ok(v)
}

pub fn retry_wait(backoff: &Backoff, attempt: u32) -> bool {
    // Deadline-aware waiting through the sanctioned helper, not a bare
    // thread::sleep (which no-bare-sleep would flag).
    backoff.sleep(attempt, None)
}
