//! Seeded violations for the analyzer's regression tests. This file is
//! never compiled — it is linter input only (the real workspace run
//! excludes `crates/analyze/fixtures` via the root analyze.toml).

use std::sync::Mutex; // seeded: no-raw-sync

pub fn handler(input: Option<u32>) -> u32 {
    let v = input.unwrap(); // seeded: no-panic-path (.unwrap)
    let w = input.expect("present"); // seeded: no-panic-path (.expect)
    if v == 0 {
        panic!("zero"); // seeded: no-panic-path (panic!)
    }
    v + w
}

pub fn not_yet() {
    todo!() // seeded: no-panic-path (todo!)
}

pub fn raw_view(bytes: &[u8]) -> &str {
    unsafe { std::str::from_utf8_unchecked(bytes) } // seeded: safety-comment
}

pub fn wait_a_bit() {
    std::thread::sleep(Duration::from_millis(100)); // seeded: no-bare-sleep
}

pub fn justified_view(bytes: &[u8]) -> &str {
    // SAFETY: callers validated UTF-8 at construction; fixture shows the
    // rule accepting a properly documented block.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

pub fn suppressed(input: Option<u32>) -> u32 {
    input.expect("allowlisted: length checked two lines above")
}

// Strings and comments must stay invisible to the lexer:
// .unwrap() panic!("in a comment")
pub const DOC: &str = "call .unwrap() and panic!(\"in a string\") freely here";

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // exempt: inside #[cfg(test)]
    }
}
