//! Seeded wire-capacity violations (linter input only, never compiled).

pub fn decode_inline(buf: &mut Cursor) -> Result<Vec<u8>, Error> {
    // seeded: wire-capacity (inline take_u32 feeds with_capacity)
    let mut v = Vec::with_capacity(take_u32(buf)? as usize);
    fill(&mut v, buf)?;
    Ok(v)
}

pub fn decode_bound(buf: &mut Cursor) -> Result<Vec<u8>, Error> {
    let n = take_u32(buf)? as usize;
    // seeded: wire-capacity (unguarded binding feeds with_capacity)
    let mut v = Vec::with_capacity(n);
    fill(&mut v, buf)?;
    Ok(v)
}

pub fn decode_guarded(buf: &mut Cursor) -> Result<Vec<u8>, Error> {
    // clean: take_count validates the count against remaining bytes first
    let n = take_count(buf, 1)?;
    let mut v = Vec::with_capacity(n);
    fill(&mut v, buf)?;
    Ok(v)
}

pub fn decode_clamped(buf: &mut Cursor) -> Result<Vec<u8>, Error> {
    // clean: the wire value is clamped before allocation
    let n = (take_u32(buf)? as usize).min(MAX_FRAME);
    let mut v = Vec::with_capacity(n);
    fill(&mut v, buf)?;
    Ok(v)
}
