//! End-to-end analyzer tests over the committed fixture trees in
//! `crates/analyze/fixtures/`. The `bad/` tree has one seeded violation
//! per rule (the same tree the CI `analyze` job asserts a non-zero exit
//! on); `clean/` must stay spotless.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_fixture(name: &str, config: &str) -> csq_analyze::Report {
    let root = fixture(name);
    let cfg = csq_analyze::load_config(&root.join(config)).expect("fixture config must load");
    csq_analyze::run(&root, &cfg).expect("fixture tree must scan")
}

#[test]
fn bad_tree_reports_every_seeded_violation() {
    let report = run_fixture("bad", "analyze.toml");
    assert!(!report.is_clean());

    let count = |rule: &str| report.violations.iter().filter(|v| v.rule == rule).count();
    // service.rs seeds: .unwrap, .expect, panic!, todo! (the fifth panic
    // site is allowlisted and must NOT appear here).
    assert_eq!(count("no-panic-path"), 4, "{:#?}", report.violations);
    assert_eq!(count("no-raw-sync"), 1, "{:#?}", report.violations);
    assert_eq!(count("safety-comment"), 1, "{:#?}", report.violations);
    assert_eq!(count("no-bare-sleep"), 1, "{:#?}", report.violations);
    // codec.rs seeds: inline shape + bound shape (guarded/clamped stay clean).
    assert_eq!(count("wire-capacity"), 2, "{:#?}", report.violations);
}

#[test]
fn violations_carry_usable_locations() {
    let report = run_fixture("bad", "analyze.toml");
    let unsafe_v = report
        .violations
        .iter()
        .find(|v| v.rule == "safety-comment")
        .expect("seeded safety violation");
    assert_eq!(unsafe_v.path, "src/service.rs");
    assert!(unsafe_v.line > 0);
    assert!(unsafe_v.excerpt.contains("from_utf8_unchecked"));
}

#[test]
fn allowlisted_site_is_suppressed_and_not_stale() {
    let report = run_fixture("bad", "analyze.toml");
    assert_eq!(report.allowed.len(), 1, "{:#?}", report.allowed);
    assert!(
        report.stale_allows.is_empty(),
        "the entry matched, so it must not be stale"
    );
    assert!(report.allowed[0]
        .0
        .excerpt
        .contains("allowlisted: length checked two lines above"));
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let report = run_fixture("bad", "analyze-stale.toml");
    assert_eq!(report.stale_allows, vec![0]);
    assert!(!report.is_clean(), "stale entries must fail the run");
}

#[test]
fn clean_tree_is_clean() {
    let report = run_fixture("clean", "analyze.toml");
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_csq-analyze");
    let run = |root: &str, config: &str| {
        Command::new(bin)
            .arg("--root")
            .arg(fixture(root))
            .arg("--config")
            .arg(fixture(root).join(config))
            .output()
            .expect("analyzer binary must spawn")
    };

    // Seeded violations: exit 1, and the report names rule and site.
    let bad = run("bad", "analyze.toml");
    assert_eq!(bad.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("no-panic-path"), "{stdout}");
    assert!(stdout.contains("src/service.rs"), "{stdout}");

    // Clean tree: exit 0.
    assert_eq!(run("clean", "analyze.toml").status.code(), Some(0));

    // Reason-less allowlist entry: config rejected, exit 2.
    let noreason = run("bad", "analyze-noreason.toml");
    assert_eq!(noreason.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&noreason.stderr);
    assert!(stderr.contains("reason"), "{stderr}");
}

#[test]
fn workspace_tree_passes_its_own_linter() {
    // The real gate also runs in CI; running it here keeps `cargo test`
    // self-contained. CARGO_MANIFEST_DIR = crates/analyze → workspace root
    // is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root must resolve");
    let cfg = csq_analyze::load_config(&root.join("analyze.toml"))
        .expect("workspace analyze.toml must load");
    let report = csq_analyze::run(&root, &cfg).expect("workspace tree must scan");
    assert!(
        report.is_clean(),
        "workspace violations: {:#?}\nstale allowlist entries: {:?}",
        report.violations,
        report.stale_allows
    );
}
