//! Hand-rolled parser for `analyze.toml`. The container has no crates.io
//! access, so instead of a TOML dependency we parse the small dialect the
//! config actually uses: `[paths]` with string-array keys, and repeated
//! `[[allow]]` tables with string keys. Unknown keys are errors — a typo'd
//! allowlist entry that silently matches nothing would defeat the point.

/// One allowlist entry: suppresses violations of `rule` in `file` whose
/// source line contains `pattern`. `reason` is mandatory — the allowlist is
/// a burn-down list, and every entry must say why the site is sound.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub pattern: String,
    pub reason: String,
}

/// Parsed `analyze.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes where the service-path rules apply.
    pub service_paths: Vec<String>,
    /// Path prefixes where the wire-capacity rule applies.
    pub codec_paths: Vec<String>,
    /// Path prefixes excluded from the walk entirely (e.g. fixtures).
    pub exclude: Vec<String>,
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// Parse the config text. Errors are `(line, message)`.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        #[derive(PartialEq)]
        enum Section {
            None,
            Paths,
            Allow,
        }
        let mut section = Section::None;

        // Logical lines: a `key = [` array may span physical lines until
        // its closing `]`.
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln0, raw)) = lines.next() {
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let lineno = ln0 + 1;
            if line == "[paths]" {
                section = Section::Paths;
                continue;
            }
            if line == "[[allow]]" {
                section = Section::Allow;
                cfg.allow.push(AllowEntry::default());
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {lineno}: unknown section {line}"));
            }
            // Accumulate multi-line arrays.
            if line.contains('[') && !line.contains(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont);
                    line.push(' ');
                    line.push_str(cont.trim());
                    if cont.contains(']') {
                        break;
                    }
                }
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
            let (key, value) = (key.trim(), value.trim());
            match section {
                Section::Paths => {
                    let list = parse_string_array(value)
                        .ok_or_else(|| format!("line {lineno}: `{key}` must be a string array"))?;
                    match key {
                        "service" => cfg.service_paths = list,
                        "codec" => cfg.codec_paths = list,
                        "exclude" => cfg.exclude = list,
                        _ => return Err(format!("line {lineno}: unknown [paths] key `{key}`")),
                    }
                }
                Section::Allow => {
                    let s = parse_string(value)
                        .ok_or_else(|| format!("line {lineno}: `{key}` must be a string"))?;
                    let entry = cfg
                        .allow
                        .last_mut()
                        .ok_or_else(|| format!("line {lineno}: key outside [[allow]]"))?;
                    match key {
                        "rule" => entry.rule = s,
                        "file" => entry.file = s,
                        "pattern" => entry.pattern = s,
                        "reason" => entry.reason = s,
                        _ => return Err(format!("line {lineno}: unknown [[allow]] key `{key}`")),
                    }
                }
                Section::None => {
                    return Err(format!("line {lineno}: key `{key}` outside any section"));
                }
            }
        }

        for (i, e) in cfg.allow.iter().enumerate() {
            if e.rule.is_empty() || e.file.is_empty() || e.pattern.is_empty() {
                return Err(format!(
                    "[[allow]] entry #{} is missing rule/file/pattern",
                    i + 1
                ));
            }
            if e.reason.trim().is_empty() {
                return Err(format!(
                    "[[allow]] entry #{} ({} in {}) has no `reason`; every allowlisted \
                     site must justify why it is sound",
                    i + 1,
                    e.rule,
                    e.file
                ));
            }
        }
        Ok(cfg)
    }
}

/// Drop a `#`-to-end-of-line comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Parse `"some string"` (with \" and \\ escapes).
fn parse_string(v: &str) -> Option<String> {
    let v = v.trim();
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut escaped = false;
    for c in inner.chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return None; // unescaped quote mid-string: malformed
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Parse `["a", "b", "c"]` (trailing comma tolerated).
fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let v = v.trim();
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Some(out)
}

/// Split on commas that sit outside string literals.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paths_and_allow_entries() {
        let cfg = Config::parse(
            r#"
# workspace invariants
[paths]
service = ["crates/net/src", "crates/core/src"]  # prefixes
codec = ["crates/common/src/codec.rs"]
exclude = [
    "crates/analyze/fixtures",
]

[[allow]]
rule = "no-panic-path"
file = "crates/client/src/pool.rs"
pattern = "pooled connection taken"
reason = "Deref on a pool guard; invariant holds until Drop"
"#,
        )
        .expect("config must parse");
        assert_eq!(cfg.service_paths.len(), 2);
        assert_eq!(cfg.codec_paths, vec!["crates/common/src/codec.rs"]);
        assert_eq!(cfg.exclude, vec!["crates/analyze/fixtures"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].rule, "no-panic-path");
    }

    #[test]
    fn missing_reason_is_rejected() {
        let err = Config::parse(
            "[[allow]]\nrule = \"no-panic-path\"\nfile = \"f.rs\"\npattern = \"x\"\n",
        )
        .expect_err("entries without a reason must be rejected");
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(Config::parse("[paths]\nservcie = [\"a\"]\n").is_err());
        assert!(Config::parse("[[allow]]\nrules = \"x\"\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"r\"\nfile = \"f\"\npattern = \"a # b\"\nreason = \"ok\"\n",
        )
        .expect("must parse");
        assert_eq!(cfg.allow[0].pattern, "a # b");
    }
}
