//! The invariant rules. Each rule scans the token stream produced by
//! [`crate::lexer`] and emits [`Violation`]s; path scoping (which rules
//! apply to which files) is decided by the caller from `analyze.toml`.

use crate::lexer::{LexOut, Token};

/// One rule violation at a specific site.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable rule name, e.g. `no-panic-path`.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of what was found.
    pub message: String,
    /// The full source line, used for allowlist pattern matching.
    pub excerpt: String,
}

/// Which rule families apply to the file being scanned.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// `no-panic-path` applies (service-path code).
    pub service: bool,
    /// `wire-capacity` applies (codec / frame-decode code).
    pub codec: bool,
    /// `no-raw-sync` applies (all production code outside `vendor/` — the
    /// shims themselves are the one place raw `std::sync` belongs).
    pub sync: bool,
    /// `no-bare-sleep` applies (service-path code minus the sanctioned
    /// backoff helper, which is the one place a service-path sleep belongs).
    pub sleep: bool,
}

/// Panicking constructs banned on service paths: methods called as
/// `.name(` and macros invoked as `name!`.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// `std::sync` items that must go through the vendored shims instead.
const RAW_SYNC: [&str; 4] = ["Mutex", "RwLock", "Condvar", "mpsc"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: u32 = 5;

/// Run every applicable rule over one lexed file.
pub fn check_file(path: &str, src: &str, lexed: &LexOut, scope: Scope) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let toks = &lexed.tokens;
    let exempt = test_exempt_mask(toks);
    let mut out = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };

        // Rule: no-panic-path. `.unwrap(` / `.expect(` / `panic!(` etc. in
        // service-path production code. `#[cfg(test)]` and `#[test]` blocks
        // are exempt — tests may assert by panicking.
        if scope.service && !exempt[i] {
            let called_as_method = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if called_as_method && PANIC_METHODS.contains(&id) {
                out.push(Violation {
                    rule: "no-panic-path",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        ".{id}() on a service path can abort a worker thread mid-query; \
                         return a CsqError instead (or allowlist with a proof of infallibility)"
                    ),
                    excerpt: excerpt(t.line),
                });
            }
            if PANIC_MACROS.contains(&id) && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                out.push(Violation {
                    rule: "no-panic-path",
                    path: path.to_string(),
                    line: t.line,
                    message: format!("{id}! on a service path; return a CsqError instead"),
                    excerpt: excerpt(t.line),
                });
            }
        }

        // Rule: no-bare-sleep. `thread::sleep` (or `std::thread::sleep`, or
        // a `use` that imports it) on a service path pins a worker thread
        // for a hard-coded interval: it ignores deadlines, shutdown flags,
        // and cancellation. Waits belong on the deadline-aware choke points
        // (`Backoff::sleep`, `recv_timeout`, the connection idle timeout).
        if scope.sleep && !exempt[i] && id == "sleep" {
            let via_thread_path = i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].ident() == Some("thread");
            if via_thread_path {
                out.push(Violation {
                    rule: "no-bare-sleep",
                    path: path.to_string(),
                    line: t.line,
                    message: "bare thread::sleep on a service path pins a worker for a fixed \
                              interval, ignoring deadlines and cancellation; wait through \
                              Backoff::sleep / recv_timeout / an idle timeout instead"
                        .to_string(),
                    excerpt: excerpt(t.line),
                });
            }
        }

        // Rule: safety-comment. Every `unsafe` keyword needs a `// SAFETY:`
        // comment on the same line or within the preceding window. Applies
        // everywhere, vendor and tests included: the justification is the
        // point, not the code's location.
        if id == "unsafe" {
            let ok = lexed
                .safety_comment_lines
                .iter()
                .any(|&l| l <= t.line && t.line - l <= SAFETY_WINDOW);
            if !ok {
                out.push(Violation {
                    rule: "safety-comment",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} \
                         lines above it"
                    ),
                    excerpt: excerpt(t.line),
                });
            }
        }

        // Rule: no-raw-sync. `std::sync::{Mutex, RwLock, Condvar, mpsc}`
        // outside vendor/. The vendored parking_lot / crossbeam shims are
        // the mandated choke points (that is what makes lockcheck able to
        // see every acquisition); raw std::sync bypasses them. Atomics and
        // Arc via std::sync are fine.
        if scope.sync && !exempt[i] && id == "std" {
            if let Some((bad, bad_line)) = match_raw_sync(toks, i) {
                out.push(Violation {
                    rule: "no-raw-sync",
                    path: path.to_string(),
                    line: bad_line,
                    message: format!(
                        "std::sync::{bad} bypasses the vendored sync shims (and the \
                         lockcheck instrumentation); use parking_lot::/crossbeam:: instead"
                    ),
                    excerpt: excerpt(bad_line),
                });
            }
        }

        // Rule: wire-capacity. In codec paths, `Vec::with_capacity(n)` where
        // `n` comes straight from a wire-supplied `take_u32` without a
        // `take_count`/`.min(` guard lets a 4-byte frame request a 4 GiB
        // allocation.
        if scope.codec && !exempt[i] && id == "with_capacity" {
            if let Some(v) = check_wire_capacity(path, toks, i, &excerpt) {
                out.push(v);
            }
        }
    }
    out
}

/// Mark every token inside a `#[cfg(test)]`- or `#[test]`-attributed item's
/// braces as exempt from the service-path rules.
fn test_exempt_mask(toks: &[Token]) -> Vec<bool> {
    let mut exempt = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // Attribute: `#[ ... ]` (outer) or `#![ ... ]` (inner).
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                // Collect the attribute body up to the matching `]`.
                let mut depth = 0usize;
                let mut body: Vec<&Token> = Vec::new();
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if depth >= 1 {
                        body.push(&toks[k]);
                    }
                    k += 1;
                }
                if attr_is_test(&body) {
                    // Find the attributed item's block: scan forward to the
                    // first `{` (an intervening `;` means a block-less item
                    // like `#[cfg(test)] use …;` — nothing to exempt).
                    let mut m = k + 1;
                    while m < toks.len() && !toks[m].is_punct('{') && !toks[m].is_punct(';') {
                        m += 1;
                    }
                    if m < toks.len() && toks[m].is_punct('{') {
                        let mut bd = 0usize;
                        let mut e = m;
                        while e < toks.len() {
                            if toks[e].is_punct('{') {
                                bd += 1;
                            } else if toks[e].is_punct('}') {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            e += 1;
                        }
                        for slot in exempt.iter_mut().take(e.min(toks.len() - 1) + 1).skip(m) {
                            *slot = true;
                        }
                    }
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    exempt
}

/// Does an attribute body (tokens between `[` and `]`) mark test-only code?
/// Matches `test`, `cfg(test)`, `cfg(any(test, …))`, and `foo::test`-style
/// custom test macros.
fn attr_is_test(body: &[&Token]) -> bool {
    let idents: Vec<&str> = body.iter().filter_map(|t| t.ident()).collect();
    match idents.as_slice() {
        // Bare `#[test]`.
        ["test"] => true,
        // `#[cfg(test)]` and nested forms mentioning `test`.
        _ => idents.first() == Some(&"cfg") && idents.contains(&"test"),
    }
}

/// Match `std :: sync :: X` (or `std :: sync :: { … }` use-lists) starting
/// at the `std` token; return the banned item and its line if found.
fn match_raw_sync(toks: &[Token], i: usize) -> Option<(String, u32)> {
    let p = |k: usize, c: char| toks.get(k).is_some_and(|t| t.is_punct(c));
    let id = |k: usize| toks.get(k).and_then(|t| t.ident());
    if !(p(i + 1, ':') && p(i + 2, ':') && id(i + 3) == Some("sync")) {
        return None;
    }
    if !(p(i + 4, ':') && p(i + 5, ':')) {
        return None;
    }
    // Direct path: std::sync::Mutex / std::sync::mpsc::channel / …
    if let Some(x) = id(i + 6) {
        if RAW_SYNC.contains(&x) {
            return Some((x.to_string(), toks[i + 6].line));
        }
        return None;
    }
    // Brace list: use std::sync::{Arc, Mutex, atomic::…};
    if p(i + 6, '{') {
        let mut depth = 0usize;
        let mut k = i + 6;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let Some(x) = toks[k].ident() {
                if RAW_SYNC.contains(&x) {
                    return Some((x.to_string(), toks[k].line));
                }
            }
            k += 1;
        }
    }
    None
}

/// `with_capacity(` at index `i`: flag when the capacity is wire-supplied
/// and unguarded. Two shapes are recognised:
///   1. inline — `Vec::with_capacity(take_u32(buf)? as usize)`
///   2. via binding — `let n = take_u32(buf)?; … with_capacity(n as usize)`
///      where the binding line lacks a `take_count` / `.min(` guard.
///
/// The guarded idiom this codebase uses everywhere is
/// `take_count(buf, min_bytes_each)`.
fn check_wire_capacity(
    path: &str,
    toks: &[Token],
    i: usize,
    excerpt: &dyn Fn(u32) -> String,
) -> Option<Violation> {
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    // Collect argument tokens to the matching `)`.
    let mut depth = 0usize;
    let mut k = i + 1;
    let mut args: Vec<&Token> = Vec::new();
    while k < toks.len() {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if depth >= 1 && k > i + 1 {
            args.push(&toks[k]);
        }
        k += 1;
    }
    let arg_idents: Vec<&str> = args.iter().filter_map(|t| t.ident()).collect();

    // Shape 1: take_u32 appears inline in the argument, unguarded.
    if arg_idents.contains(&"take_u32")
        && !arg_idents.contains(&"take_count")
        && !arg_idents.contains(&"min")
    {
        return Some(Violation {
            rule: "wire-capacity",
            path: path.to_string(),
            line: toks[i].line,
            message: "Vec::with_capacity fed directly by a wire-supplied take_u32; \
                      validate with take_count (or clamp with .min) first"
                .to_string(),
            excerpt: excerpt(toks[i].line),
        });
    }

    // Shape 2: single-identifier argument (modulo casts) bound from an
    // unguarded take_u32 earlier in the same function. We look backwards
    // for `let [mut] <name> =` and inspect that statement's tokens.
    let name = match arg_idents.as_slice() {
        [n] => *n,
        [n, "as", _] => *n,
        _ => return None,
    };
    let mut j = i;
    while j > 0 {
        j -= 1;
        if toks[j].ident() == Some(name) {
            let prev = toks[..j].iter().rev().take(2).filter_map(|t| t.ident());
            let is_let_binding = prev.clone().any(|s| s == "let");
            if !is_let_binding {
                continue;
            }
            // Statement tokens from the binding to the next `;`.
            let stmt: Vec<&str> = toks[j..]
                .iter()
                .take_while(|t| !t.is_punct(';'))
                .filter_map(|t| t.ident())
                .collect();
            if stmt.contains(&"take_u32") && !stmt.contains(&"take_count") && !stmt.contains(&"min")
            {
                return Some(Violation {
                    rule: "wire-capacity",
                    path: path.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "Vec::with_capacity({name}) where `{name}` is a wire-supplied \
                         take_u32 value (bound on line {}) without a take_count/.min \
                         guard",
                        toks[j].line
                    ),
                    excerpt: excerpt(toks[i].line),
                });
            }
            return None; // nearest binding is guarded or not wire-fed
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, scope: Scope) -> Vec<Violation> {
        check_file("x.rs", src, &lex(src), scope)
    }

    const SERVICE: Scope = Scope {
        service: true,
        codec: false,
        sync: true,
        sleep: true,
    };
    const CODEC: Scope = Scope {
        service: false,
        codec: true,
        sync: false,
        sleep: false,
    };

    #[test]
    fn unwrap_in_service_code_is_flagged() {
        let v = run("fn f() { x.unwrap(); }", SERVICE);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic-path");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let v = run(
            "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }",
            SERVICE,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn expect_attribute_is_not_flagged() {
        // `#[expect(lint)]` is an attribute, not the panicking method.
        let v = run("#[expect(dead_code)]\nfn f() {}", SERVICE);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_macros_are_flagged() {
        let v = run("fn f() { panic!(\"boom\"); todo!(); }", SERVICE);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "no-panic-path"));
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); panic!(); }\n}\n";
        assert!(run(src, SERVICE).is_empty());
    }

    #[test]
    fn test_fn_is_exempt_but_code_after_is_not() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn prod() { y.unwrap(); }\n";
        let v = run(src, SERVICE);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let v = run("fn f() { unsafe { g() } }", SERVICE);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");
    }

    #[test]
    fn unsafe_with_nearby_safety_comment_is_clean() {
        let src = "// SAFETY: g has no preconditions here\nfn f() { unsafe { g() } }";
        assert!(run(src, SERVICE).is_empty());
    }

    #[test]
    fn safety_comment_too_far_away_does_not_count() {
        let src = "// SAFETY: stale\n\n\n\n\n\n\nfn f() { unsafe { g() } }";
        let v = run(src, SERVICE);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn raw_sync_mutex_is_flagged_and_atomics_are_not() {
        let v = run(
            "use std::sync::Mutex;\nuse std::sync::atomic::AtomicU64;\nuse std::sync::Arc;",
            SERVICE,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-raw-sync");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn raw_sync_in_use_brace_list_is_flagged() {
        let v = run("use std::sync::{Arc, Mutex};", SERVICE);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Mutex"));
    }

    #[test]
    fn mpsc_is_flagged() {
        let v = run("use std::sync::mpsc::channel;", SERVICE);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("mpsc"));
    }

    #[test]
    fn bare_sleep_is_flagged_in_both_spellings() {
        let v = run(
            "fn f() { std::thread::sleep(D); }\nfn g() { thread::sleep(D); }",
            SERVICE,
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "no-bare-sleep"));
        assert_eq!((v[0].line, v[1].line), (1, 2));
    }

    #[test]
    fn sleep_import_is_flagged() {
        let v = run("use std::thread::sleep;", SERVICE);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-bare-sleep");
    }

    #[test]
    fn other_sleeps_are_not_flagged() {
        // A method or free fn named `sleep` that is not thread::sleep —
        // e.g. the sanctioned Backoff::sleep — is fine.
        let v = run(
            "fn f(b: &Backoff) { b.sleep(0, None); Backoff::sleep(b, 0, None); }",
            SERVICE,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn sleep_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { std::thread::sleep(D); }\n}";
        assert!(run(src, SERVICE).is_empty());
    }

    #[test]
    fn inline_wire_capacity_is_flagged() {
        let v = run(
            "fn d(b: &mut B) { let v = Vec::with_capacity(take_u32(b)? as usize); }",
            CODEC,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wire-capacity");
    }

    #[test]
    fn bound_wire_capacity_is_flagged() {
        let src = "fn d(b: &mut B) {\n let n = take_u32(b)? as usize;\n \
                   let v = Vec::with_capacity(n);\n}";
        let v = run(src, CODEC);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("line 2"), "{}", v[0].message);
    }

    #[test]
    fn take_count_guard_is_clean() {
        let src = "fn d(b: &mut B) {\n let n = take_count(b, 2)?;\n \
                   let v = Vec::with_capacity(n);\n}";
        assert!(run(src, CODEC).is_empty());
    }

    #[test]
    fn clamped_capacity_is_clean() {
        let src = "fn d(b: &mut B) {\n let n = (take_u32(b)? as usize).min(MAX);\n \
                   let v = Vec::with_capacity(n);\n}";
        assert!(run(src, CODEC).is_empty());
    }

    #[test]
    fn literal_capacity_is_clean() {
        assert!(run("fn f() { let v = Vec::with_capacity(16); }", CODEC).is_empty());
    }
}
