//! A small hand-rolled Rust lexer — just enough fidelity for invariant
//! linting: identifiers and punctuation with line numbers, with string
//! literals (including raw/byte strings), char literals, lifetimes,
//! numbers, and comments stripped so rule matching never fires on text
//! inside a literal or a comment. Comment *contents* are not discarded
//! entirely: lines whose comments contain `SAFETY:` are recorded for the
//! unsafe-block rule.

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            Tok::Punct(_) => None,
        }
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct LexOut {
    pub tokens: Vec<Token>,
    /// 1-based lines on which a comment containing `SAFETY:` appears (the
    /// comment's starting line for multi-line block comments).
    pub safety_comment_lines: Vec<u32>,
}

/// Tokenize `src`. Unterminated literals/comments are tolerated (the rest
/// of the file is simply consumed): the linter must never panic on weird
/// but compiling — or even non-compiling — input.
pub fn lex(src: &str) -> LexOut {
    let b: Vec<char> = src.chars().collect();
    let mut out = LexOut::default();
    let mut i = 0;
    let mut line: u32 = 1;

    // Advance over `n` chars starting at `i`, counting newlines.
    fn bump(b: &[char], i: &mut usize, line: &mut u32, n: usize) {
        for _ in 0..n {
            if *i < b.len() {
                if b[*i] == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump(&b, &mut i, &mut line, 1);
            continue;
        }
        // Line comment (//, ///, //!).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let start_line = line;
            let mut text = String::new();
            while i < b.len() && b[i] != '\n' {
                text.push(b[i]);
                bump(&b, &mut i, &mut line, 1);
            }
            if text.contains("SAFETY:") {
                out.safety_comment_lines.push(start_line);
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    bump(&b, &mut i, &mut line, 2);
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    bump(&b, &mut i, &mut line, 2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i]);
                    bump(&b, &mut i, &mut line, 1);
                }
            }
            if text.contains("SAFETY:") {
                out.safety_comment_lines.push(start_line);
            }
            continue;
        }
        // Identifier (possibly a raw/byte string prefix).
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut ident = String::new();
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                ident.push(b[i]);
                bump(&b, &mut i, &mut line, 1);
            }
            // r"..." / b"..." / br#"..."# style literal prefixes.
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
            if is_str_prefix && (b.get(i) == Some(&'"') || b.get(i) == Some(&'#')) {
                let raw = ident.contains('r');
                // Count leading hashes of a raw string.
                let mut hashes = 0usize;
                while raw && b.get(i) == Some(&'#') {
                    hashes += 1;
                    bump(&b, &mut i, &mut line, 1);
                }
                if b.get(i) == Some(&'"') {
                    bump(&b, &mut i, &mut line, 1); // opening quote
                    consume_string(&b, &mut i, &mut line, raw, hashes);
                    continue;
                }
                // `r#ident` raw identifier: emit the identifier that follows.
                if hashes == 1 && raw {
                    continue; // next loop iteration lexes the identifier
                }
            }
            out.tokens.push(Token {
                tok: Tok::Ident(ident),
                line: start_line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            bump(&b, &mut i, &mut line, 1);
            consume_string(&b, &mut i, &mut line, false, 0);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(&n1) = b.get(i + 1) {
                if n1 == '\\' {
                    // Escaped char literal: skip to the closing quote.
                    bump(&b, &mut i, &mut line, 2);
                    while i < b.len() && b[i] != '\'' {
                        bump(&b, &mut i, &mut line, 1);
                    }
                    bump(&b, &mut i, &mut line, 1);
                    continue;
                }
                if b.get(i + 2) == Some(&'\'') {
                    // 'x' char literal.
                    bump(&b, &mut i, &mut line, 3);
                    continue;
                }
            }
            // Lifetime: consume the quote and trailing identifier.
            bump(&b, &mut i, &mut line, 1);
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                bump(&b, &mut i, &mut line, 1);
            }
            continue;
        }
        // Number (skipped entirely; suffixes ride along).
        if c.is_ascii_digit() {
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                bump(&b, &mut i, &mut line, 1);
            }
            // Fractional part — but not `1..2` range syntax.
            if b.get(i) == Some(&'.') && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                bump(&b, &mut i, &mut line, 1);
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    bump(&b, &mut i, &mut line, 1);
                }
            }
            continue;
        }
        // Anything else: single punctuation character.
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        bump(&b, &mut i, &mut line, 1);
    }
    out
}

/// Consume a (raw) string body starting just after the opening quote.
fn consume_string(b: &[char], i: &mut usize, line: &mut u32, raw: bool, hashes: usize) {
    while *i < b.len() {
        let c = b[*i];
        if !raw && c == '\\' {
            if b[*i] == '\n' {
                *line += 1;
            }
            *i += 1;
            if *i < b.len() {
                if b[*i] == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
            continue;
        }
        if c == '"' {
            // A raw string only closes when followed by its hash count.
            let closes = (0..hashes).all(|k| b.get(*i + 1 + k) == Some(&'#'));
            if closes {
                *i += 1 + hashes;
                return;
            }
        }
        if c == '\n' {
            *line += 1;
        }
        *i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r##"
            // panic!("in comment") and .unwrap()
            /* block .expect( */
            let s = "panic!(\"in string\") .unwrap()";
            let r = r#"raw .unwrap() "quoted" panic!"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_are_skipped() {
        let ids = idents("let c = 'x'; let nl = '\\n'; after('q')");
        assert_eq!(
            ids,
            vec!["let", "c", "let", "nl", "after"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn safety_comment_lines_are_recorded() {
        let src = "line1();\n// SAFETY: fine\nunsafe { x() }\n";
        let out = lex(src);
        assert_eq!(out.safety_comment_lines, vec![2]);
        let unsafe_tok = out
            .tokens
            .iter()
            .find(|t| t.ident() == Some("unsafe"))
            .expect("unsafe token");
        assert_eq!(unsafe_tok.line, 3);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line\nline\nline\";\ntarget();\n";
        let out = lex(src);
        let t = out
            .tokens
            .iter()
            .find(|t| t.ident() == Some("target"))
            .expect("target token");
        assert_eq!(t.line, 4);
    }

    #[test]
    fn double_colon_arrives_as_two_puncts() {
        let out = lex("std::sync::Mutex");
        let shape: Vec<String> = out
            .tokens
            .iter()
            .map(|t| match &t.tok {
                Tok::Ident(s) => s.clone(),
                Tok::Punct(c) => c.to_string(),
            })
            .collect();
        assert_eq!(shape, vec!["std", ":", ":", "sync", ":", ":", "Mutex"]);
    }
}
