//! CLI for the invariant linter. Exit codes: 0 = clean, 1 = violations or
//! stale allowlist entries, 2 = usage/config/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a path"),
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("analyze.toml"));

    let cfg = match csq_analyze::load_config(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("csq-analyze: config error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match csq_analyze::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("csq-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        if !v.excerpt.is_empty() {
            println!("    {}", v.excerpt);
        }
    }
    for &idx in &report.stale_allows {
        let a = &cfg.allow[idx];
        println!(
            "analyze.toml: stale [[allow]] entry #{} ({} in {}, pattern \"{}\"): it no \
             longer matches anything — delete it so the burn-down list stays honest",
            idx + 1,
            a.rule,
            a.file,
            a.pattern
        );
    }
    println!(
        "csq-analyze: {} files scanned, {} violations, {} allowlisted, {} stale allowlist \
         entries",
        report.files_scanned,
        report.violations.len(),
        report.allowed.len(),
        report.stale_allows.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("csq-analyze: {msg}");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!(
        "usage: csq-analyze [--root <workspace-root>] [--config <analyze.toml>]\n\
         \n\
         Walks crates/, src/, vendor/ and tests/ under the root and enforces the\n\
         concurrency-correctness invariants described in DESIGN.md §9.\n\
         Exit codes: 0 clean, 1 violations or stale allowlist entries, 2 errors."
    );
}
