//! `csq-analyze`: a dependency-free static pass enforcing the workspace's
//! concurrency-correctness invariants. See DESIGN.md §9 for the rule
//! catalogue and the allowlist burn-down policy.
//!
//! The analyzer lexes (it does not fully parse) every `.rs` file under the
//! walked roots and matches token patterns. That makes it fast and robust
//! to non-compiling input, at the cost of heuristics documented per-rule in
//! [`rules`]. False positives are burned down explicitly through the
//! `analyze.toml` allowlist — never silently.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{AllowEntry, Config};
pub use rules::{Scope, Violation};

/// Directory roots walked relative to the workspace root.
const WALK_ROOTS: [&str; 4] = ["crates", "src", "vendor", "tests"];

/// Path components that are never production code; the service-path rules
/// skip files living under them (the safety-comment rule still applies).
const TEST_DIR_MARKERS: [&str; 4] = ["tests", "benches", "examples", "fixtures"];

/// The one sanctioned sleep site on the service paths: the seeded,
/// deadline-aware backoff helper. Structurally exempt from `no-bare-sleep`
/// (not allowlisted — the helper is permanent, and the allowlist is a
/// burn-down list).
const SANCTIONED_SLEEP: &str = "crates/client/src/backoff.rs";

/// Outcome of an analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by any allowlist entry.
    pub violations: Vec<Violation>,
    /// Violations suppressed by the allowlist (counted for the summary).
    pub allowed: Vec<(Violation, usize)>,
    /// Indices (into `config.allow`) of entries that matched nothing: the
    /// underlying site was fixed, so the entry must be deleted.
    pub stale_allows: Vec<usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean: no live violations and no stale
    /// allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }
}

/// Run the analyzer over the workspace rooted at `root`.
pub fn run(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    let mut allow_hits = vec![0usize; cfg.allow.len()];

    for abs in &files {
        let rel = rel_path(root, abs);
        if cfg.exclude.iter().any(|p| path_matches(&rel, p)) {
            continue;
        }
        let src = fs::read_to_string(abs)?;
        let service =
            cfg.service_paths.iter().any(|p| path_matches(&rel, p)) && !is_test_path(&rel);
        let scope = Scope {
            service,
            codec: cfg.codec_paths.iter().any(|p| path_matches(&rel, p)) && !is_test_path(&rel),
            sync: !rel.starts_with("vendor/") && !is_test_path(&rel),
            sleep: service && rel != SANCTIONED_SLEEP,
        };
        report.files_scanned += 1;
        let lexed = lexer::lex(&src);
        for v in rules::check_file(&rel, &src, &lexed, scope) {
            match cfg.allow.iter().position(|a| allow_matches(a, &v)) {
                Some(idx) => {
                    allow_hits[idx] += 1;
                    report.allowed.push((v, idx));
                }
                None => report.violations.push(v),
            }
        }
    }

    report.stale_allows = allow_hits
        .iter()
        .enumerate()
        .filter(|(_, &hits)| hits == 0)
        .map(|(i, _)| i)
        .collect();
    Ok(report)
}

/// Load `analyze.toml` from `path`.
pub fn load_config(path: &Path) -> io::Result<Config> {
    let text = fs::read_to_string(path)?;
    Config::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

fn allow_matches(a: &AllowEntry, v: &Violation) -> bool {
    a.rule == v.rule && a.file == v.path && v.excerpt.contains(&a.pattern)
}

/// Is `rel` under `prefix` (whole-component match, so `crates/net` does not
/// match `crates/network`) or exactly equal to it (file prefix)?
fn path_matches(rel: &str, prefix: &str) -> bool {
    rel == prefix || rel.starts_with(&format!("{}/", prefix.trim_end_matches('/')))
}

/// Test/bench/example/fixture files are exempt from service-path rules.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|comp| TEST_DIR_MARKERS.contains(&comp))
}

fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_prefix_matching_is_component_wise() {
        assert!(path_matches("crates/net/src/tcp.rs", "crates/net/src"));
        assert!(path_matches(
            "crates/net/src/tcp.rs",
            "crates/net/src/tcp.rs"
        ));
        assert!(!path_matches("crates/network/src/x.rs", "crates/net"));
    }

    #[test]
    fn test_paths_are_recognised() {
        assert!(is_test_path("crates/net/tests/framing.rs"));
        assert!(is_test_path("crates/exec/benches/scan.rs"));
        assert!(is_test_path("crates/analyze/fixtures/bad/src/lib.rs"));
        assert!(!is_test_path("crates/net/src/tcp.rs"));
    }
}
