//! Real (threaded) in-memory duplex transport.
//!
//! The threaded execution engine in `csq-ship` runs actual sender/receiver
//! threads (Figure 3 of the paper); this module gives them a duplex message
//! channel with byte accounting, and optionally wall-clock bandwidth/latency
//! enforcement for end-to-end demos. The timing *experiments* use the
//! virtual-time model instead (deterministic and instant) — see `csq-ship`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use csq_common::{CsqError, Result};

use crate::spec::NetworkSpec;
use crate::stats::NetStats;

/// Which way an endpoint's sends flow, for stats accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Server→client (downlink).
    Down,
    /// Client→server (uplink).
    Up,
}

/// Wall-clock rate limiting state for one direction.
#[derive(Debug)]
struct Throttle {
    bandwidth: f64,
    latency: Duration,
    /// When the (serial) transmitter is next free.
    next_free: Mutex<Instant>,
}

impl Throttle {
    fn new(bandwidth: f64, latency: Duration) -> Throttle {
        Throttle {
            bandwidth,
            latency,
            next_free: Mutex::new(Instant::now()),
        }
    }

    /// Block for the transmission time of `size` bytes; return the instant
    /// at which the message may be delivered (tx end + propagation).
    fn admit(&self, size: usize) -> Instant {
        let tx = Duration::from_secs_f64(size as f64 / self.bandwidth);
        let deliver_at;
        {
            let mut free = self.next_free.lock();
            let start = (*free).max(Instant::now());
            let tx_done = start + tx;
            *free = tx_done;
            deliver_at = tx_done + self.latency;
        }
        // Backpressure: the sender experiences the transmitter being busy.
        let now = Instant::now();
        if deliver_at - self.latency > now {
            std::thread::sleep(deliver_at - self.latency - now);
        }
        deliver_at
    }
}

struct Message {
    deliver_at: Option<Instant>,
    payload: Vec<u8>,
}

/// What actually carries a sender's messages: the in-memory channel (with
/// optional wall-clock throttling) or a framed TCP connection.
enum SendHalf {
    Chan {
        tx: Sender<Message>,
        throttle: Option<Arc<Throttle>>,
    },
    Tcp(Arc<crate::tcp::TcpConn>),
}

/// Sending half of an endpoint.
pub struct NetSender {
    half: SendHalf,
    stats: NetStats,
    direction: Direction,
    overhead: usize,
}

impl NetSender {
    /// Send one message. Blocks for transmission time when throttled.
    pub fn send(&self, payload: Vec<u8>) -> Result<()> {
        let wire_bytes = payload.len() + self.overhead;
        match self.direction {
            Direction::Down => self.stats.record_down(wire_bytes),
            Direction::Up => self.stats.record_up(wire_bytes),
        }
        match &self.half {
            SendHalf::Chan { tx, throttle } => {
                let deliver_at = throttle.as_ref().map(|t| t.admit(wire_bytes));
                tx.send(Message {
                    deliver_at,
                    payload,
                })
                .map_err(|_| CsqError::Net("peer endpoint closed".into()))
            }
            SendHalf::Tcp(conn) => conn.send(&payload),
        }
    }
}

/// What a receiver drains: the in-memory channel or a framed TCP
/// connection.
enum RecvHalf {
    Chan(Receiver<Message>),
    Tcp(Arc<crate::tcp::TcpConn>),
}

/// Receiving half of an endpoint.
pub struct NetReceiver {
    rx: RecvHalf,
}

impl NetReceiver {
    /// Receive the next message, blocking; `None` when the peer closed.
    /// On a TCP endpoint any transport failure (truncated frame, reset)
    /// also reads as `None` — the peer is gone either way; consumers that
    /// need the distinction use [`crate::tcp::TcpConn`] directly.
    pub fn recv(&self) -> Option<Vec<u8>> {
        match &self.rx {
            RecvHalf::Chan(rx) => {
                let msg = rx.recv().ok()?;
                if let Some(at) = msg.deliver_at {
                    let now = Instant::now();
                    if at > now {
                        std::thread::sleep(at - now);
                    }
                }
                Some(msg.payload)
            }
            RecvHalf::Tcp(conn) => match conn.recv() {
                Ok(crate::tcp::Frame::Payload(p)) => Some(p),
                _ => None,
            },
        }
    }

    /// Non-blocking receive; `Ok(None)` when no message is ready,
    /// `Err` when the peer closed. Only supported on in-memory endpoints
    /// (no consumer polls a TCP endpoint).
    pub fn try_recv(&self) -> std::result::Result<Option<Vec<u8>>, CsqError> {
        use crossbeam::channel::TryRecvError;
        let rx = match &self.rx {
            RecvHalf::Chan(rx) => rx,
            RecvHalf::Tcp(_) => {
                return Err(CsqError::Net(
                    "try_recv is not supported on TCP endpoints".into(),
                ))
            }
        };
        match rx.try_recv() {
            Ok(msg) => {
                if let Some(at) = msg.deliver_at {
                    let now = Instant::now();
                    if at > now {
                        std::thread::sleep(at - now);
                    }
                }
                Ok(Some(msg.payload))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CsqError::Net("peer endpoint closed".into())),
        }
    }
}

/// One side of the duplex connection.
pub struct Endpoint {
    sender: NetSender,
    receiver: NetReceiver,
}

impl Endpoint {
    /// Send a message to the peer.
    pub fn send(&self, payload: Vec<u8>) -> Result<()> {
        self.sender.send(payload)
    }

    /// Receive from the peer (blocking); `None` when the peer closed.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.receiver.recv()
    }

    /// Split into independently-owned halves so sender and receiver threads
    /// (Figure 3) can each own their direction.
    pub fn split(self) -> (NetSender, NetReceiver) {
        (self.sender, self.receiver)
    }

    /// Wrap one side of a framed TCP connection as an endpoint. `is_server`
    /// picks the stats direction for sends (server sends flow down). The
    /// real 4-byte frame header is charged as per-message overhead so byte
    /// accounting matches what crosses the socket.
    pub(crate) fn from_tcp(
        conn: Arc<crate::tcp::TcpConn>,
        is_server: bool,
        stats: NetStats,
    ) -> Endpoint {
        Endpoint {
            sender: NetSender {
                half: SendHalf::Tcp(conn.clone()),
                stats,
                direction: if is_server {
                    Direction::Down
                } else {
                    Direction::Up
                },
                overhead: crate::tcp::FRAME_HEADER_BYTES,
            },
            receiver: NetReceiver {
                rx: RecvHalf::Tcp(conn),
            },
        }
    }
}

fn build_pair(spec: Option<&NetworkSpec>) -> (Endpoint, Endpoint, NetStats) {
    let stats = NetStats::new();
    let (down_tx, down_rx) = unbounded::<Message>();
    let (up_tx, up_rx) = unbounded::<Message>();
    let (down_throttle, up_throttle, overhead) = match spec {
        Some(s) => (
            Some(Arc::new(Throttle::new(
                s.down_bandwidth,
                Duration::from_micros(s.down_latency),
            ))),
            Some(Arc::new(Throttle::new(
                s.up_bandwidth / s.uplink_inflation,
                Duration::from_micros(s.up_latency),
            ))),
            s.per_message_overhead,
        ),
        None => (None, None, 0),
    };
    let server = Endpoint {
        sender: NetSender {
            half: SendHalf::Chan {
                tx: down_tx,
                throttle: down_throttle,
            },
            stats: stats.clone(),
            direction: Direction::Down,
            overhead,
        },
        receiver: NetReceiver {
            rx: RecvHalf::Chan(up_rx),
        },
    };
    let client = Endpoint {
        sender: NetSender {
            half: SendHalf::Chan {
                tx: up_tx,
                throttle: up_throttle,
            },
            stats: stats.clone(),
            direction: Direction::Up,
            overhead,
        },
        receiver: NetReceiver {
            rx: RecvHalf::Chan(down_rx),
        },
    };
    (server, client, stats)
}

/// An unthrottled in-memory duplex connection `(server, client, stats)`.
/// Bytes are counted but transfer is instantaneous — used for correctness
/// tests of the threaded engine.
pub fn in_memory_duplex() -> (Endpoint, Endpoint, NetStats) {
    build_pair(None)
}

/// A wall-clock throttled duplex connection honouring `spec`'s bandwidths
/// and latencies (uplink inflation is modelled by slowing the uplink).
pub fn throttled_duplex(spec: &NetworkSpec) -> (Endpoint, Endpoint, NetStats) {
    build_pair(Some(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_roundtrip_counts_bytes() {
        let (server, client, stats) = in_memory_duplex();
        server.send(vec![1, 2, 3]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![1, 2, 3]);
        client.send(vec![9; 10]).unwrap();
        assert_eq!(server.recv().unwrap().len(), 10);
        assert_eq!(stats.down_bytes(), 3);
        assert_eq!(stats.up_bytes(), 10);
        assert_eq!(stats.down_messages(), 1);
        assert_eq!(stats.up_messages(), 1);
    }

    #[test]
    fn recv_returns_none_after_peer_drop() {
        let (server, client, _) = in_memory_duplex();
        drop(server);
        assert!(client.recv().is_none());
    }

    #[test]
    fn split_halves_work_across_threads() {
        let (server, client, _) = in_memory_duplex();
        let (stx, srx) = server.split();
        let echo = std::thread::spawn(move || {
            while let Some(msg) = client.recv() {
                if client.send(msg).is_err() {
                    break;
                }
            }
        });
        for i in 0..10u8 {
            stx.send(vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(srx.recv().unwrap(), vec![i]);
        }
        drop(stx);
        drop(srx);
        echo.join().unwrap();
    }

    #[test]
    fn throttled_send_takes_time() {
        // 10_000 B/s, no latency: sending 2500 bytes should take ≥ ~0.25s of
        // transmitter time; we use a small payload to keep the test quick.
        let spec = NetworkSpec::symmetric(100_000.0, 0);
        let (server, client, _) = throttled_duplex(&spec);
        let start = Instant::now();
        server.send(vec![0; 10_000]).unwrap(); // 0.1s tx
        client.recv().unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(90),
            "elapsed = {elapsed:?}"
        );
    }

    #[test]
    fn overhead_is_counted() {
        let spec = NetworkSpec::symmetric(1e9, 0).with_overhead(8);
        let (server, client, stats) = throttled_duplex(&spec);
        server.send(vec![0; 100]).unwrap();
        client.recv().unwrap();
        assert_eq!(stats.down_bytes(), 108);
    }

    #[test]
    fn try_recv_reports_empty_and_closed() {
        let (server, client, _) = in_memory_duplex();
        assert!(matches!(server.receiver.try_recv(), Ok(None)));
        client.send(vec![1]).unwrap();
        // Allow the message through.
        assert_eq!(server.receiver.try_recv().unwrap(), Some(vec![1]));
        drop(client);
        assert!(server.receiver.try_recv().is_err());
    }
}
