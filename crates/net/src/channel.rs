//! Real (threaded) in-memory duplex transport.
//!
//! The threaded execution engine in `csq-ship` runs actual sender/receiver
//! threads (Figure 3 of the paper); this module gives them a duplex message
//! channel with byte accounting, and optionally wall-clock bandwidth/latency
//! enforcement for end-to-end demos. The timing *experiments* use the
//! virtual-time model instead (deterministic and instant) — see `csq-ship`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use csq_common::{CsqError, Result};

use crate::spec::NetworkSpec;
use crate::stats::NetStats;

/// Which way an endpoint's sends flow, for stats accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Server→client (downlink).
    Down,
    /// Client→server (uplink).
    Up,
}

/// Wall-clock rate limiting state for one direction.
#[derive(Debug)]
struct Throttle {
    bandwidth: f64,
    latency: Duration,
    /// When the (serial) transmitter is next free.
    next_free: parking_lot_like_mutex::Mutex<Instant>,
}

/// A tiny private mutex module so this crate keeps a single lock dependency
/// surface (crossbeam is already here; std Mutex suffices for the throttle).
mod parking_lot_like_mutex {
    pub use std::sync::Mutex;
}

impl Throttle {
    fn new(bandwidth: f64, latency: Duration) -> Throttle {
        Throttle {
            bandwidth,
            latency,
            next_free: parking_lot_like_mutex::Mutex::new(Instant::now()),
        }
    }

    /// Block for the transmission time of `size` bytes; return the instant
    /// at which the message may be delivered (tx end + propagation).
    fn admit(&self, size: usize) -> Instant {
        let tx = Duration::from_secs_f64(size as f64 / self.bandwidth);
        let deliver_at;
        {
            let mut free = self.next_free.lock().expect("throttle lock poisoned");
            let start = (*free).max(Instant::now());
            let tx_done = start + tx;
            *free = tx_done;
            deliver_at = tx_done + self.latency;
        }
        // Backpressure: the sender experiences the transmitter being busy.
        let now = Instant::now();
        if deliver_at - self.latency > now {
            std::thread::sleep(deliver_at - self.latency - now);
        }
        deliver_at
    }
}

struct Message {
    deliver_at: Option<Instant>,
    payload: Vec<u8>,
}

/// Sending half of an endpoint.
pub struct NetSender {
    tx: Sender<Message>,
    stats: NetStats,
    direction: Direction,
    throttle: Option<Arc<Throttle>>,
    overhead: usize,
}

impl NetSender {
    /// Send one message. Blocks for transmission time when throttled.
    pub fn send(&self, payload: Vec<u8>) -> Result<()> {
        let wire_bytes = payload.len() + self.overhead;
        match self.direction {
            Direction::Down => self.stats.record_down(wire_bytes),
            Direction::Up => self.stats.record_up(wire_bytes),
        }
        let deliver_at = self.throttle.as_ref().map(|t| t.admit(wire_bytes));
        self.tx
            .send(Message {
                deliver_at,
                payload,
            })
            .map_err(|_| CsqError::Net("peer endpoint closed".into()))
    }
}

/// Receiving half of an endpoint.
pub struct NetReceiver {
    rx: Receiver<Message>,
}

impl NetReceiver {
    /// Receive the next message, blocking; `None` when the peer closed.
    pub fn recv(&self) -> Option<Vec<u8>> {
        let msg = self.rx.recv().ok()?;
        if let Some(at) = msg.deliver_at {
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
        }
        Some(msg.payload)
    }

    /// Non-blocking receive; `Ok(None)` when no message is ready,
    /// `Err` when the peer closed.
    pub fn try_recv(&self) -> std::result::Result<Option<Vec<u8>>, CsqError> {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok(msg) => {
                if let Some(at) = msg.deliver_at {
                    let now = Instant::now();
                    if at > now {
                        std::thread::sleep(at - now);
                    }
                }
                Ok(Some(msg.payload))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CsqError::Net("peer endpoint closed".into())),
        }
    }
}

/// One side of the duplex connection.
pub struct Endpoint {
    sender: NetSender,
    receiver: NetReceiver,
}

impl Endpoint {
    /// Send a message to the peer.
    pub fn send(&self, payload: Vec<u8>) -> Result<()> {
        self.sender.send(payload)
    }

    /// Receive from the peer (blocking); `None` when the peer closed.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.receiver.recv()
    }

    /// Split into independently-owned halves so sender and receiver threads
    /// (Figure 3) can each own their direction.
    pub fn split(self) -> (NetSender, NetReceiver) {
        (self.sender, self.receiver)
    }
}

fn build_pair(spec: Option<&NetworkSpec>) -> (Endpoint, Endpoint, NetStats) {
    let stats = NetStats::new();
    let (down_tx, down_rx) = unbounded::<Message>();
    let (up_tx, up_rx) = unbounded::<Message>();
    let (down_throttle, up_throttle, overhead) = match spec {
        Some(s) => (
            Some(Arc::new(Throttle::new(
                s.down_bandwidth,
                Duration::from_micros(s.down_latency),
            ))),
            Some(Arc::new(Throttle::new(
                s.up_bandwidth / s.uplink_inflation,
                Duration::from_micros(s.up_latency),
            ))),
            s.per_message_overhead,
        ),
        None => (None, None, 0),
    };
    let server = Endpoint {
        sender: NetSender {
            tx: down_tx,
            stats: stats.clone(),
            direction: Direction::Down,
            throttle: down_throttle,
            overhead,
        },
        receiver: NetReceiver { rx: up_rx },
    };
    let client = Endpoint {
        sender: NetSender {
            tx: up_tx,
            stats: stats.clone(),
            direction: Direction::Up,
            throttle: up_throttle,
            overhead,
        },
        receiver: NetReceiver { rx: down_rx },
    };
    (server, client, stats)
}

/// An unthrottled in-memory duplex connection `(server, client, stats)`.
/// Bytes are counted but transfer is instantaneous — used for correctness
/// tests of the threaded engine.
pub fn in_memory_duplex() -> (Endpoint, Endpoint, NetStats) {
    build_pair(None)
}

/// A wall-clock throttled duplex connection honouring `spec`'s bandwidths
/// and latencies (uplink inflation is modelled by slowing the uplink).
pub fn throttled_duplex(spec: &NetworkSpec) -> (Endpoint, Endpoint, NetStats) {
    build_pair(Some(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_roundtrip_counts_bytes() {
        let (server, client, stats) = in_memory_duplex();
        server.send(vec![1, 2, 3]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![1, 2, 3]);
        client.send(vec![9; 10]).unwrap();
        assert_eq!(server.recv().unwrap().len(), 10);
        assert_eq!(stats.down_bytes(), 3);
        assert_eq!(stats.up_bytes(), 10);
        assert_eq!(stats.down_messages(), 1);
        assert_eq!(stats.up_messages(), 1);
    }

    #[test]
    fn recv_returns_none_after_peer_drop() {
        let (server, client, _) = in_memory_duplex();
        drop(server);
        assert!(client.recv().is_none());
    }

    #[test]
    fn split_halves_work_across_threads() {
        let (server, client, _) = in_memory_duplex();
        let (stx, srx) = server.split();
        let echo = std::thread::spawn(move || {
            while let Some(msg) = client.recv() {
                if client.send(msg).is_err() {
                    break;
                }
            }
        });
        for i in 0..10u8 {
            stx.send(vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(srx.recv().unwrap(), vec![i]);
        }
        drop(stx);
        drop(srx);
        echo.join().unwrap();
    }

    #[test]
    fn throttled_send_takes_time() {
        // 10_000 B/s, no latency: sending 2500 bytes should take ≥ ~0.25s of
        // transmitter time; we use a small payload to keep the test quick.
        let spec = NetworkSpec::symmetric(100_000.0, 0);
        let (server, client, _) = throttled_duplex(&spec);
        let start = Instant::now();
        server.send(vec![0; 10_000]).unwrap(); // 0.1s tx
        client.recv().unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(90),
            "elapsed = {elapsed:?}"
        );
    }

    #[test]
    fn overhead_is_counted() {
        let spec = NetworkSpec::symmetric(1e9, 0).with_overhead(8);
        let (server, client, stats) = throttled_duplex(&spec);
        server.send(vec![0; 100]).unwrap();
        client.recv().unwrap();
        assert_eq!(stats.down_bytes(), 108);
    }

    #[test]
    fn try_recv_reports_empty_and_closed() {
        let (server, client, _) = in_memory_duplex();
        assert!(matches!(server.receiver.try_recv(), Ok(None)));
        client.send(vec![1]).unwrap();
        // Allow the message through.
        assert_eq!(server.receiver.try_recv().unwrap(), Some(vec![1]));
        drop(client);
        assert!(server.receiver.try_recv().is_err());
    }
}
