//! The discrete-event serial link model.

/// Virtual time in microseconds.
pub type SimTime = u64;

/// One second in [`SimTime`] units.
pub const SECOND: SimTime = 1_000_000;

/// A unidirectional serial link: a transmitter with finite bandwidth feeding
/// a pipe with fixed propagation latency.
///
/// Transmission is serial — a message must finish leaving the transmitter
/// before the next can start — but propagation is pipelined: many messages
/// can be "in flight" at once. This is the standard store-and-forward model
/// and exactly the behaviour the paper's pipeline-concurrency analysis
/// relies on: the number of messages profitably in flight equals
/// `bandwidth × round-trip-time` worth of bytes.
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth_bytes_per_sec: f64,
    latency: SimTime,
    free_at: SimTime,
    bytes_sent: u64,
    messages_sent: u64,
    busy_time: SimTime,
}

impl Link {
    /// A link with the given bandwidth (bytes/second) and propagation
    /// latency (µs). Bandwidth must be positive.
    pub fn new(bandwidth_bytes_per_sec: f64, latency: SimTime) -> Link {
        assert!(
            bandwidth_bytes_per_sec > 0.0,
            "link bandwidth must be positive"
        );
        Link {
            bandwidth_bytes_per_sec,
            latency,
            free_at: 0,
            bytes_sent: 0,
            messages_sent: 0,
            busy_time: 0,
        }
    }

    /// Bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth_bytes_per_sec
    }

    /// Propagation latency in µs.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Time (µs) the transmitter needs to put `size` bytes on the wire.
    pub fn tx_time(&self, size: usize) -> SimTime {
        ((size as f64 / self.bandwidth_bytes_per_sec) * SECOND as f64).ceil() as SimTime
    }

    /// Submit a message of `size` bytes at virtual time `now`.
    ///
    /// Returns `(tx_done, arrival)`: when the transmitter becomes free again
    /// and when the message arrives at the far end. Submitting "in the past"
    /// (before the previous transmission finished) simply queues behind it.
    pub fn transmit(&mut self, now: SimTime, size: usize) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let tx = self.tx_time(size);
        let tx_done = start + tx;
        self.free_at = tx_done;
        self.bytes_sent += size as u64;
        self.messages_sent += 1;
        self.busy_time += tx;
        (tx_done, tx_done + self.latency)
    }

    /// When the transmitter is next free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total time the transmitter spent busy — used to identify the
    /// bottleneck link of a finished run.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Reset dynamic state (clock and counters), keeping the configuration.
    pub fn reset(&mut self) {
        self.free_at = 0;
        self.bytes_sent = 0;
        self.messages_sent = 0;
        self.busy_time = 0;
    }
}

/// Convert kilobits/second (the paper's unit: "28.8KBit phone connection")
/// to bytes/second.
pub fn kbit_per_sec(kbit: f64) -> f64 {
    kbit * 1000.0 / 8.0
}

/// Convert megabits/second ("10Mbit Ethernet") to bytes/second.
pub fn mbit_per_sec(mbit: f64) -> f64 {
    mbit * 1_000_000.0 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_is_size_over_bandwidth() {
        let link = Link::new(1000.0, 0); // 1000 B/s
        assert_eq!(link.tx_time(1000), SECOND);
        assert_eq!(link.tx_time(500), SECOND / 2);
        assert_eq!(link.tx_time(0), 0);
    }

    #[test]
    fn serial_transmission_queues() {
        let mut link = Link::new(1000.0, 100_000); // 1000 B/s, 100ms latency
        let (tx1, arr1) = link.transmit(0, 1000);
        assert_eq!(tx1, SECOND);
        assert_eq!(arr1, SECOND + 100_000);
        // Second message submitted immediately queues behind the first.
        let (tx2, arr2) = link.transmit(0, 1000);
        assert_eq!(tx2, 2 * SECOND);
        assert_eq!(arr2, 2 * SECOND + 100_000);
    }

    #[test]
    fn propagation_pipelines() {
        // With huge latency but fast transmit, arrivals are spaced by tx
        // time, not by latency — messages overlap in the pipe.
        let mut link = Link::new(1_000_000.0, 10 * SECOND);
        let (_, a1) = link.transmit(0, 1000);
        let (_, a2) = link.transmit(0, 1000);
        assert_eq!(a2 - a1, link.tx_time(1000));
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut link = Link::new(1000.0, 0);
        link.transmit(0, 500);
        link.transmit(10 * SECOND, 500);
        assert_eq!(link.busy_time(), SECOND); // two 0.5s transmissions
        assert_eq!(link.bytes_sent(), 1000);
        assert_eq!(link.messages_sent(), 2);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(kbit_per_sec(28.8), 3600.0);
        assert_eq!(mbit_per_sec(10.0), 1_250_000.0);
    }

    #[test]
    fn reset_clears_dynamic_state() {
        let mut link = Link::new(1000.0, 5);
        link.transmit(0, 100);
        link.reset();
        assert_eq!(link.free_at(), 0);
        assert_eq!(link.bytes_sent(), 0);
        assert_eq!(link.busy_time(), 0);
    }
}
