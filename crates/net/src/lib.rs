//! # csq-net — the network substrate
//!
//! The paper's entire evaluation is network-bound: a 28.8 kbit/s modem (and a
//! 10 Mbit Ethernet emulating asymmetric links "by returning N times as many
//! bytes"). We reproduce that testbed with a **discrete-event link model**:
//!
//! * [`SimTime`] — virtual time in microseconds.
//! * [`Link`] — a serial transmitter with finite bandwidth plus propagation
//!   latency. A message occupies the transmitter for `size/bandwidth` and
//!   arrives `latency` later, so multiple messages pipeline exactly the way
//!   the paper's concurrency analysis assumes (the bandwidth-delay product
//!   governs how much concurrency helps — Figure 6).
//! * [`NetworkSpec`] — a duplex (downlink + uplink) description with presets
//!   for the paper's configurations, including the asymmetric `N = 100`
//!   setup of Figure 9 and the paper's byte-inflation emulation mode.
//! * [`channel`] — a real threaded in-memory duplex transport (crossbeam)
//!   with byte accounting, used by the threaded execution engine; and a
//!   throttled variant that enforces bandwidth in wall-clock time.
//! * [`tcp`] — the same length-framed protocol over real sockets: a framed
//!   [`TcpConn`] plus [`tcp_duplex`], a loopback pair that is drop-in
//!   compatible with the in-memory duplex (the query service and its load
//!   harness run on this).
//! * [`ready`] — readiness polling (`poll(2)` on unix) and a self-pipe
//!   waker, the primitives behind the service's session scheduler: one
//!   thread parks thousands of idle connections and hands complete request
//!   frames to a small worker pool.
//!
//! Timing experiments use the virtual-time model (deterministic, instant);
//! the threaded engine uses `channel` and is checked row-for-row against it.

pub mod channel;
pub mod fault;
pub mod link;
pub mod ready;
pub mod spec;
pub mod stats;
pub mod tcp;

pub use channel::{in_memory_duplex, throttled_duplex, Endpoint, NetReceiver, NetSender};
pub use fault::{fault_schedule, Fault, FaultInjector};
pub use link::{Link, SimTime};
pub use ready::{poll_readable, wake_pair, Fd, WakeReceiver, Waker};
pub use spec::NetworkSpec;
pub use stats::NetStats;
pub use tcp::{tcp_duplex, Frame, PollFrame, TcpConn, DEFAULT_MAX_FRAME, FRAME_HEADER_BYTES};
