//! Real TCP transport carrying the length-framed wire protocol.
//!
//! Every message the in-memory duplex moves as one `Vec<u8>` crosses a real
//! socket as one **frame**: a 4-byte little-endian payload length followed
//! by the payload bytes. The framing is the only thing this layer adds —
//! payloads are the exact bytes the `csq-common` codec produced, so the
//! zero-copy [`Decoder::shared`](csq_common::codec::Decoder::shared) path
//! works unchanged on received frames, and [`NetStats`] byte accounting
//! stays truthful (frame header bytes are charged as per-message overhead).
//!
//! Two consumers sit on top:
//!
//! * [`tcp_duplex`] — a loopback socket pair wrapped as two [`Endpoint`]s,
//!   drop-in compatible with [`in_memory_duplex`](crate::in_memory_duplex):
//!   the threaded shipping engine (`csq-ship`) runs over real sockets with
//!   zero code changes.
//! * [`TcpConn`] used directly — the query service (`csq-core::service`)
//!   and its pooled clients need the error detail [`Endpoint`] deliberately
//!   flattens (clean close vs. truncated frame vs. idle timeout), so they
//!   speak to the framed connection itself via [`Frame`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use csq_common::{CsqError, Result};

use crate::channel::Endpoint;
use crate::stats::NetStats;

/// Bytes of frame header (little-endian payload length) per message.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Default cap on a single frame's payload. Large enough for any batch the
/// engine ships (batches are ~1k rows), small enough that a hostile or
/// corrupt length header cannot make the receiver allocate gigabytes.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// One receive event on a framed connection.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame's payload.
    Payload(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// No frame arrived within the configured idle timeout (only possible
    /// when [`TcpConn::set_idle_timeout`] armed one). The connection is
    /// still healthy; callers poll their shutdown flag and call
    /// [`TcpConn::recv`] again.
    TimedOut,
}

fn io_net(context: &str, e: std::io::Error) -> CsqError {
    CsqError::Net(format!("{context}: {e}"))
}

/// A framed duplex TCP connection, usable from sender and receiver threads
/// concurrently (send and recv each serialize on their own half).
pub struct TcpConn {
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<TcpStream>,
    max_frame: usize,
    idle_timeout: Mutex<Option<Duration>>,
    local: SocketAddr,
    peer: SocketAddr,
}

impl TcpConn {
    /// Wrap a connected stream (enables `TCP_NODELAY`: the protocol is
    /// request/response batched, so Nagle only adds latency).
    pub fn new(stream: TcpStream) -> Result<TcpConn> {
        TcpConn::with_max_frame(stream, DEFAULT_MAX_FRAME)
    }

    /// Wrap a connected stream with a custom frame-size cap.
    pub fn with_max_frame(stream: TcpStream, max_frame: usize) -> Result<TcpConn> {
        stream
            .set_nodelay(true)
            .map_err(|e| io_net("set_nodelay", e))?;
        let local = stream.local_addr().map_err(|e| io_net("local_addr", e))?;
        let peer = stream.peer_addr().map_err(|e| io_net("peer_addr", e))?;
        let read_half = stream.try_clone().map_err(|e| io_net("clone stream", e))?;
        Ok(TcpConn {
            reader: Mutex::new(BufReader::new(read_half)),
            writer: Mutex::new(stream),
            max_frame,
            idle_timeout: Mutex::new(None),
            local,
            peer,
        })
    }

    /// Connect to a listening service.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpConn> {
        let stream = TcpStream::connect(addr).map_err(|e| io_net("connect", e))?;
        TcpConn::new(stream)
    }

    /// Arm (or disarm) the idle/stall timeout. While armed,
    /// [`recv`](TcpConn::recv) returns [`Frame::TimedOut`] when no frame
    /// *starts* within the window (benign: poll a flag and call `recv`
    /// again), and fails with a terminal "stalled" error when a frame
    /// *stops making progress* mid-read — a slowloris peer that opens a
    /// frame and goes silent cannot pin the receiving thread.
    pub fn set_idle_timeout(&self, timeout: Option<Duration>) {
        *self.idle_timeout.lock() = timeout;
    }

    /// Arm (or disarm) a write timeout on the sending half. While armed,
    /// [`send`](TcpConn::send) fails instead of blocking forever when the
    /// peer stops *reading* — the write-side twin of the recv stall
    /// detector (a client that requests a large result and then never
    /// drains its socket must not pin the sending thread).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.writer
            .lock()
            .set_write_timeout(timeout)
            .map_err(|e| io_net("set_write_timeout", e))
    }

    /// This end's socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Send one frame (header + payload), flushed to the socket.
    pub fn send(&self, payload: &[u8]) -> Result<()> {
        if payload.len() > self.max_frame {
            return Err(CsqError::Net(format!(
                "refusing to send {}-byte frame (limit {})",
                payload.len(),
                self.max_frame
            )));
        }
        let mut w = self.writer.lock();
        let header = (payload.len() as u32).to_le_bytes();
        w.write_all(&header)
            .and_then(|()| w.write_all(payload))
            .and_then(|()| w.flush())
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                {
                    CsqError::Net("send stalled (peer stopped reading)".into())
                } else {
                    io_net("send frame", e)
                }
            })
    }

    /// Receive the next frame event. Errors are terminal for the
    /// connection: a truncated frame (peer died mid-message), an oversized
    /// length header, a frame that stalls mid-read past the armed idle
    /// timeout (a slowloris peer must not pin the reader forever), or an
    /// I/O failure.
    pub fn recv(&self) -> Result<Frame> {
        let mut r = self.reader.lock();
        let timeout = *self.idle_timeout.lock();
        // Apply the configured timeout unconditionally (a previous recv may
        // have left a different value on the socket).
        r.get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| io_net("set_read_timeout", e))?;
        if timeout.is_some() {
            // Waiting for a frame to *start* is the only benign timeout.
            match r.fill_buf() {
                Ok([]) => return Ok(Frame::Closed),
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Frame::TimedOut)
                }
                Err(e) => return Err(io_net("recv frame", e)),
            }
        }
        // The timeout stays armed for the rest of the frame: each read must
        // make progress within the window, so a peer that starts a frame
        // and goes silent surfaces as a terminal "stalled" error instead of
        // pinning this thread forever. (Desynchronization is not a concern:
        // a stall error retires the connection.)
        let mut header = [0u8; FRAME_HEADER_BYTES];
        match read_full(&mut *r, &mut header)? {
            ReadOutcome::CleanEof => return Ok(Frame::Closed),
            ReadOutcome::Truncated(n) => {
                return Err(CsqError::Net(format!(
                    "connection closed mid-frame ({n} of {FRAME_HEADER_BYTES} header bytes)"
                )))
            }
            ReadOutcome::Stalled => {
                return Err(CsqError::Net(
                    "frame stalled mid-read (peer stopped sending)".into(),
                ))
            }
            ReadOutcome::Full => {}
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > self.max_frame {
            return Err(CsqError::Codec(format!(
                "incoming frame of {len} bytes exceeds the {} byte limit",
                self.max_frame
            )));
        }
        let mut payload = vec![0u8; len];
        match read_full(&mut *r, &mut payload)? {
            ReadOutcome::Full => Ok(Frame::Payload(payload)),
            ReadOutcome::Stalled => Err(CsqError::Net(
                "frame stalled mid-read (peer stopped sending)".into(),
            )),
            ReadOutcome::CleanEof | ReadOutcome::Truncated(_) => Err(CsqError::Net(format!(
                "connection closed mid-frame (expected {len} payload bytes)"
            ))),
        }
    }

    /// Best-effort shutdown of both directions (unblocks a peer's recv).
    pub fn shutdown(&self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

enum ReadOutcome {
    Full,
    CleanEof,
    Truncated(usize),
    /// A read timed out while an armed idle timeout was in effect — the
    /// peer stopped sending mid-frame.
    Stalled,
}

/// `read_exact` that distinguishes a clean EOF before the first byte from a
/// mid-buffer truncation and a mid-frame stall (read timeout while armed),
/// and retries on `Interrupted`.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Truncated(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(ReadOutcome::Stalled)
            }
            Err(e) => return Err(io_net("recv frame", e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// A loopback TCP duplex `(server, client, stats)` — the socket-backed
/// analog of [`in_memory_duplex`](crate::in_memory_duplex). Bytes are
/// counted per direction with the real 4-byte frame header charged as
/// per-message overhead, so `NetStats` reports exactly what crossed the
/// socket.
pub fn tcp_duplex() -> Result<(Endpoint, Endpoint, NetStats)> {
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_net("bind loopback listener", e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| io_net("listener local_addr", e))?;
    let client_stream = TcpStream::connect(addr).map_err(|e| io_net("connect loopback", e))?;
    let (server_stream, _) = listener
        .accept()
        .map_err(|e| io_net("accept loopback", e))?;
    let stats = NetStats::new();
    let server = Endpoint::from_tcp(Arc::new(TcpConn::new(server_stream)?), true, stats.clone());
    let client = Endpoint::from_tcp(Arc::new(TcpConn::new(client_stream)?), false, stats.clone());
    Ok((server, client, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair() -> (TcpConn, TcpConn) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (TcpConn::new(server).unwrap(), TcpConn::new(client).unwrap())
    }

    #[test]
    fn frames_roundtrip_both_directions() {
        let (server, client) = loopback_pair();
        server.send(&[1, 2, 3]).unwrap();
        server.send(&[]).unwrap();
        match client.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![1, 2, 3]),
            other => panic!("expected payload, got {other:?}"),
        }
        match client.recv().unwrap() {
            Frame::Payload(p) => assert!(p.is_empty()),
            other => panic!("expected empty payload, got {other:?}"),
        }
        client.send(&[9; 1000]).unwrap();
        match server.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p.len(), 1000),
            other => panic!("expected payload, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_reports_closed() {
        let (server, client) = loopback_pair();
        drop(server);
        assert!(matches!(client.recv().unwrap(), Frame::Closed));
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let server = TcpConn::new(server).unwrap();
        // Claim 100 bytes, deliver 3, die.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        drop(raw);
        let err = server.recv().unwrap_err();
        assert_eq!(err.kind(), "net");
        assert!(err.message().contains("mid-frame"), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let server = TcpConn::with_max_frame(server, 1024).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let err = server.recv().unwrap_err();
        assert_eq!(err.kind(), "codec");
        assert!(err.message().contains("exceeds"), "{err}");
    }

    #[test]
    fn stalled_mid_frame_errors_instead_of_hanging() {
        // A slowloris peer: starts a frame (header promising 64 bytes),
        // then goes silent while keeping the socket open. With the idle
        // timeout armed, recv must fail fast, not block forever.
        let (server, client) = loopback_pair();
        server.set_idle_timeout(Some(Duration::from_millis(30)));
        // Hand-craft the stall: the client writes only a frame header.
        {
            let mut raw = client.writer.lock();
            raw.write_all(&64u32.to_le_bytes()).unwrap();
            raw.flush().unwrap();
        }
        let started = std::time::Instant::now();
        let err = server.recv().unwrap_err();
        assert_eq!(err.kind(), "net");
        assert!(err.message().contains("stalled"), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stall detection must be prompt"
        );
    }

    #[test]
    fn idle_timeout_ticks_then_still_delivers() {
        let (server, client) = loopback_pair();
        server.set_idle_timeout(Some(Duration::from_millis(20)));
        assert!(matches!(server.recv().unwrap(), Frame::TimedOut));
        client.send(&[7]).unwrap();
        match server.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![7]),
            other => panic!("expected payload, got {other:?}"),
        }
    }

    #[test]
    fn tcp_duplex_counts_framed_bytes() {
        let (server, client, stats) = tcp_duplex().unwrap();
        server.send(vec![0; 100]).unwrap();
        assert_eq!(client.recv().unwrap().len(), 100);
        client.send(vec![0; 10]).unwrap();
        assert_eq!(server.recv().unwrap().len(), 10);
        assert_eq!(stats.down_bytes(), 100 + FRAME_HEADER_BYTES as u64);
        assert_eq!(stats.up_bytes(), 10 + FRAME_HEADER_BYTES as u64);
        assert_eq!(stats.down_messages(), 1);
        assert_eq!(stats.up_messages(), 1);
    }

    #[test]
    fn tcp_endpoint_recv_none_after_peer_drop() {
        let (server, client, _) = tcp_duplex().unwrap();
        drop(server);
        assert!(client.recv().is_none());
    }

    #[test]
    fn tcp_endpoint_split_works_across_threads() {
        let (server, client, _) = tcp_duplex().unwrap();
        let (stx, srx) = server.split();
        let echo = std::thread::spawn(move || {
            while let Some(msg) = client.recv() {
                if client.send(msg).is_err() {
                    break;
                }
            }
        });
        for i in 0..20u8 {
            stx.send(vec![i; 10]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(srx.recv().unwrap(), vec![i; 10]);
        }
        drop(stx);
        drop(srx);
        echo.join().unwrap();
    }
}
