//! Real TCP transport carrying the length-framed wire protocol.
//!
//! Every message the in-memory duplex moves as one `Vec<u8>` crosses a real
//! socket as one **frame**: a 4-byte little-endian payload length followed
//! by the payload bytes. The framing is the only thing this layer adds —
//! payloads are the exact bytes the `csq-common` codec produced, so the
//! zero-copy [`Decoder::shared`](csq_common::codec::Decoder::shared) path
//! works unchanged on received frames, and [`NetStats`] byte accounting
//! stays truthful (frame header bytes are charged as per-message overhead).
//!
//! Two consumers sit on top:
//!
//! * [`tcp_duplex`] — a loopback socket pair wrapped as two [`Endpoint`]s,
//!   drop-in compatible with [`in_memory_duplex`](crate::in_memory_duplex):
//!   the threaded shipping engine (`csq-ship`) runs over real sockets with
//!   zero code changes.
//! * [`TcpConn`] used directly — the query service (`csq-core::service`)
//!   and its pooled clients need the error detail [`Endpoint`] deliberately
//!   flattens (clean close vs. truncated frame vs. idle timeout), so they
//!   speak to the framed connection itself via [`Frame`].
//!
//! The receive path is a resumable state machine: a frame read that stops
//! at a `WouldBlock` keeps its progress (header bytes and partial payload)
//! inside the connection and picks up exactly where it left off on the
//! next call. Blocking callers never notice — [`recv`](TcpConn::recv) runs
//! the machine to completion — but it is what lets the service's session
//! scheduler drive thousands of parked connections with non-blocking
//! [`poll_recv`](TcpConn::poll_recv) calls from one thread (DESIGN.md §12).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use csq_common::{CsqError, Result};

use crate::channel::Endpoint;
use crate::ready::Fd;
use crate::stats::NetStats;

/// Bytes of frame header (little-endian payload length) per message.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Default cap on a single frame's payload. Large enough for any batch the
/// engine ships (batches are ~1k rows), small enough that a hostile or
/// corrupt length header cannot make the receiver allocate gigabytes.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// Fixed capacity of the receive-side `BufReader`; part of the per-parked-
/// connection memory bill [`TcpConn::recv_buffer_bytes`] reports.
const RECV_BUFFER_CAPACITY: usize = 8 * 1024;

/// One receive event on a framed connection.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame's payload.
    Payload(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// No frame arrived within the configured idle timeout (only possible
    /// when [`TcpConn::set_idle_timeout`] armed one). The connection is
    /// still healthy; callers poll their shutdown flag and call
    /// [`TcpConn::recv`] again.
    TimedOut,
}

/// One non-blocking receive event (see [`TcpConn::poll_recv`]).
#[derive(Debug)]
pub enum PollFrame {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// No complete frame available yet; any partial progress is retained
    /// and the next call resumes it. Use [`TcpConn::partial_age`] to bound
    /// how long a peer may sit mid-frame.
    Pending,
    /// The peer closed cleanly at a frame boundary.
    Closed,
}

fn io_net(context: &str, e: std::io::Error) -> CsqError {
    CsqError::Net(format!("{context}: {e}"))
}

fn is_wouldblock(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut
}

/// In-progress frame read: survives `WouldBlock` so a non-blocking caller
/// can resume. Invariant: a `PartialFrame` exists only once at least one
/// byte of the frame has been consumed (zero-progress reads leave no state
/// behind, so "a partial exists" always means "the peer is mid-frame").
struct PartialFrame {
    header: [u8; FRAME_HEADER_BYTES],
    header_filled: usize,
    /// Allocated once the header (and its length check) completes.
    payload: Vec<u8>,
    payload_filled: usize,
    /// Bytes charged to the connection's buffer accounting (the payload
    /// allocation); repaid when the frame completes or is discarded.
    counted: usize,
    /// Last time a read made progress — the mid-frame stall clock.
    last_progress: Instant,
}

impl PartialFrame {
    fn start() -> PartialFrame {
        PartialFrame {
            header: [0u8; FRAME_HEADER_BYTES],
            header_filled: 0,
            payload: Vec::new(),
            payload_filled: 0,
            counted: 0,
            last_progress: Instant::now(),
        }
    }
}

/// The receiving half: buffered reader plus resumable frame state, guarded
/// by one mutex so blocking and polling receivers can never interleave
/// mid-frame.
struct RecvHalf {
    reader: BufReader<TcpStream>,
    partial: Option<PartialFrame>,
}

/// What one `drive` pass produced (the caller assigns meaning to
/// `WouldBlock`: benign `Pending` for pollers, terminal stall for blocking
/// receivers whose read timeout expired).
enum Step {
    Frame(Vec<u8>),
    Closed,
    WouldBlock,
}

/// Advance the frame state machine until a frame completes, the peer
/// closes, a read would block, or the stream turns out to be broken.
/// Progress is kept in `half.partial` across `WouldBlock` returns.
fn drive(half: &mut RecvHalf, max_frame: usize, buffered: &AtomicUsize) -> Result<Step> {
    loop {
        let RecvHalf { reader, partial } = half;
        let p = match partial {
            Some(p) => p,
            None => {
                *partial = Some(PartialFrame::start());
                continue;
            }
        };
        if p.header_filled < FRAME_HEADER_BYTES {
            match reader.read(&mut p.header[p.header_filled..]) {
                Ok(0) => {
                    let filled = p.header_filled;
                    *partial = None;
                    return if filled == 0 {
                        Ok(Step::Closed)
                    } else {
                        Err(CsqError::Net(format!(
                            "connection closed mid-frame ({filled} of {FRAME_HEADER_BYTES} header bytes)"
                        )))
                    };
                }
                Ok(n) => {
                    p.header_filled += n;
                    p.last_progress = Instant::now();
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if is_wouldblock(&e) => {
                    if p.header_filled == 0 {
                        *partial = None; // Zero progress: not mid-frame.
                    }
                    return Ok(Step::WouldBlock);
                }
                Err(e) => {
                    *partial = None;
                    return Err(io_net("recv frame", e));
                }
            }
        }
        let len = u32::from_le_bytes(p.header) as usize;
        if len > max_frame {
            *partial = None;
            return Err(CsqError::Codec(format!(
                "incoming frame of {len} bytes exceeds the {max_frame} byte limit"
            )));
        }
        if p.payload.len() != len {
            // First visit past the header: safe to allocate, the length
            // check above already vetted the wire-supplied size.
            p.payload = vec![0u8; len];
            p.counted = len;
            buffered.fetch_add(len, Ordering::Relaxed);
        }
        if p.payload_filled < len {
            match reader.read(&mut p.payload[p.payload_filled..]) {
                Ok(0) => {
                    buffered.fetch_sub(p.counted, Ordering::Relaxed);
                    *partial = None;
                    return Err(CsqError::Net(format!(
                        "connection closed mid-frame (expected {len} payload bytes)"
                    )));
                }
                Ok(n) => {
                    p.payload_filled += n;
                    p.last_progress = Instant::now();
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if is_wouldblock(&e) => return Ok(Step::WouldBlock),
                Err(e) => {
                    buffered.fetch_sub(p.counted, Ordering::Relaxed);
                    *partial = None;
                    return Err(io_net("recv frame", e));
                }
            }
        }
        buffered.fetch_sub(p.counted, Ordering::Relaxed);
        let done = match partial.take() {
            Some(done) => done,
            None => continue, // Unreachable: `p` above proves it is Some.
        };
        return Ok(Step::Frame(done.payload));
    }
}

/// A framed duplex TCP connection, usable from sender and receiver threads
/// concurrently (send and recv each serialize on their own half).
pub struct TcpConn {
    recv_half: Mutex<RecvHalf>,
    writer: Mutex<TcpStream>,
    max_frame: usize,
    idle_timeout: Mutex<Option<Duration>>,
    /// Live bytes held by an in-progress frame's payload allocation — the
    /// variable part of this connection's receive-side memory.
    recv_buffered: AtomicUsize,
    fd: Fd,
    local: SocketAddr,
    peer: SocketAddr,
}

impl TcpConn {
    /// Wrap a connected stream (enables `TCP_NODELAY`: the protocol is
    /// request/response batched, so Nagle only adds latency).
    pub fn new(stream: TcpStream) -> Result<TcpConn> {
        TcpConn::with_max_frame(stream, DEFAULT_MAX_FRAME)
    }

    /// Wrap a connected stream with a custom frame-size cap.
    pub fn with_max_frame(stream: TcpStream, max_frame: usize) -> Result<TcpConn> {
        stream
            .set_nodelay(true)
            .map_err(|e| io_net("set_nodelay", e))?;
        let local = stream.local_addr().map_err(|e| io_net("local_addr", e))?;
        let peer = stream.peer_addr().map_err(|e| io_net("peer_addr", e))?;
        let fd = crate::ready::stream_fd(&stream);
        let read_half = stream.try_clone().map_err(|e| io_net("clone stream", e))?;
        Ok(TcpConn {
            recv_half: Mutex::new(RecvHalf {
                reader: BufReader::with_capacity(RECV_BUFFER_CAPACITY, read_half),
                partial: None,
            }),
            writer: Mutex::new(stream),
            max_frame,
            idle_timeout: Mutex::new(None),
            recv_buffered: AtomicUsize::new(0),
            fd,
            local,
            peer,
        })
    }

    /// Connect to a listening service.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpConn> {
        let stream = TcpStream::connect(addr).map_err(|e| io_net("connect", e))?;
        TcpConn::new(stream)
    }

    /// Arm (or disarm) the idle/stall timeout. While armed,
    /// [`recv`](TcpConn::recv) returns [`Frame::TimedOut`] when no frame
    /// *starts* within the window (benign: poll a flag and call `recv`
    /// again), and fails with a terminal "stalled" error when a frame
    /// *stops making progress* mid-read — a slowloris peer that opens a
    /// frame and goes silent cannot pin the receiving thread.
    pub fn set_idle_timeout(&self, timeout: Option<Duration>) {
        *self.idle_timeout.lock() = timeout;
    }

    /// Arm (or disarm) a write timeout on the sending half. While armed,
    /// [`send`](TcpConn::send) fails instead of blocking forever when the
    /// peer stops *reading* — the write-side twin of the recv stall
    /// detector (a client that requests a large result and then never
    /// drains its socket must not pin the sending thread).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.writer
            .lock()
            .set_write_timeout(timeout)
            .map_err(|e| io_net("set_write_timeout", e))
    }

    /// Switch the socket between blocking and non-blocking mode. The mode
    /// lives on the shared socket description, so it flips both halves at
    /// once: the service's scheduler polls a parked connection in
    /// non-blocking mode, then flips to blocking before a worker streams a
    /// response (where `SO_SNDTIMEO` — [`set_write_timeout`](Self::set_write_timeout)
    /// — resumes bounding the sends).
    pub fn set_nonblocking(&self, nonblocking: bool) -> Result<()> {
        self.writer
            .lock()
            .set_nonblocking(nonblocking)
            .map_err(|e| io_net("set_nonblocking", e))
    }

    /// The identity [`poll_readable`](crate::ready::poll_readable) selects
    /// this connection by.
    pub fn poll_fd(&self) -> Fd {
        self.fd
    }

    /// This end's socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Send one frame (header + payload), flushed to the socket.
    pub fn send(&self, payload: &[u8]) -> Result<()> {
        if payload.len() > self.max_frame {
            return Err(CsqError::Net(format!(
                "refusing to send {}-byte frame (limit {})",
                payload.len(),
                self.max_frame
            )));
        }
        let mut w = self.writer.lock();
        let header = (payload.len() as u32).to_le_bytes();
        w.write_all(&header)
            .and_then(|()| w.write_all(payload))
            .and_then(|()| w.flush())
            .map_err(|e| {
                if is_wouldblock(&e) {
                    CsqError::Net("send stalled (peer stopped reading)".into())
                } else {
                    io_net("send frame", e)
                }
            })
    }

    /// Non-blocking best-effort send of one frame. `Ok(true)` means the
    /// whole frame reached the socket; `Ok(false)` means the socket's send
    /// buffer could not take it — the frame may be **half-written**, so the
    /// caller must retire the connection (framing is desynced). Meant for
    /// the scheduler's poller thread, which must never block on a peer:
    /// response frames are small, so a refusal here implies a peer that is
    /// flooding requests without draining answers.
    pub fn try_send(&self, payload: &[u8]) -> Result<bool> {
        if payload.len() > self.max_frame {
            return Err(CsqError::Net(format!(
                "refusing to send {}-byte frame (limit {})",
                payload.len(),
                self.max_frame
            )));
        }
        let mut w = self.writer.lock();
        let header = (payload.len() as u32).to_le_bytes();
        for chunk in [&header[..], payload] {
            let mut off = 0;
            while off < chunk.len() {
                match w.write(&chunk[off..]) {
                    Ok(0) => return Err(CsqError::Net("send frame: wrote 0 bytes".into())),
                    Ok(n) => off += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if is_wouldblock(&e) => return Ok(false),
                    Err(e) => return Err(io_net("send frame", e)),
                }
            }
        }
        let _ = w.flush();
        Ok(true)
    }

    /// Receive the next frame event. Errors are terminal for the
    /// connection: a truncated frame (peer died mid-message), an oversized
    /// length header, a frame that stalls mid-read past the armed idle
    /// timeout (a slowloris peer must not pin the reader forever), or an
    /// I/O failure.
    pub fn recv(&self) -> Result<Frame> {
        let mut half = self.recv_half.lock();
        let timeout = *self.idle_timeout.lock();
        // Apply the configured timeout unconditionally (a previous recv may
        // have left a different value on the socket).
        half.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| io_net("set_read_timeout", e))?;
        if timeout.is_some() && half.partial.is_none() {
            // Waiting for a frame to *start* is the only benign timeout.
            match half.reader.fill_buf() {
                Ok([]) => return Ok(Frame::Closed),
                Ok(_) => {}
                Err(e) if is_wouldblock(&e) => return Ok(Frame::TimedOut),
                Err(e) => return Err(io_net("recv frame", e)),
            }
        }
        // The timeout stays armed for the rest of the frame: each read must
        // make progress within the window, so a peer that starts a frame
        // and goes silent surfaces as a terminal "stalled" error instead of
        // pinning this thread forever. (Desynchronization is not a concern:
        // a stall error retires the connection.)
        match drive(&mut half, self.max_frame, &self.recv_buffered)? {
            Step::Frame(payload) => Ok(Frame::Payload(payload)),
            Step::Closed => Ok(Frame::Closed),
            Step::WouldBlock => Err(CsqError::Net(
                "frame stalled mid-read (peer stopped sending)".into(),
            )),
        }
    }

    /// Non-blocking receive: make as much progress as the socket allows and
    /// return [`PollFrame::Pending`] when no complete frame is available.
    /// Partial progress is retained inside the connection and resumed by
    /// the next call (blocking [`recv`](Self::recv) resumes it too). The
    /// socket must be in non-blocking mode ([`set_nonblocking`](Self::set_nonblocking));
    /// on a blocking socket this simply degenerates to a blocking receive.
    ///
    /// Errors carry the same meaning as [`recv`](Self::recv): the stream
    /// can no longer be trusted and the connection must be retired.
    pub fn poll_recv(&self) -> Result<PollFrame> {
        let mut half = self.recv_half.lock();
        match drive(&mut half, self.max_frame, &self.recv_buffered)? {
            Step::Frame(payload) => Ok(PollFrame::Frame(payload)),
            Step::Closed => Ok(PollFrame::Closed),
            Step::WouldBlock => Ok(PollFrame::Pending),
        }
    }

    /// How long the connection has been sitting mid-frame without progress
    /// (`None` when no frame is in flight). This is the poller-side stall
    /// clock: blocking receivers get the same protection from the read
    /// timeout, but a non-blocking poller must bound slowloris peers
    /// itself.
    pub fn partial_age(&self) -> Option<Duration> {
        self.recv_half
            .lock()
            .partial
            .as_ref()
            .map(|p| p.last_progress.elapsed())
    }

    /// Receive-side memory bill for this connection: the fixed reader
    /// buffer plus any in-progress frame's payload allocation. The
    /// scheduler sums this across parked sessions as its RSS proxy (a
    /// parked connection must cost ~the reader buffer, nothing more).
    pub fn recv_buffer_bytes(&self) -> usize {
        RECV_BUFFER_CAPACITY + self.recv_buffered.load(Ordering::Relaxed)
    }

    /// Best-effort shutdown of both directions (unblocks a peer's recv).
    pub fn shutdown(&self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

/// A loopback TCP duplex `(server, client, stats)` — the socket-backed
/// analog of [`in_memory_duplex`](crate::in_memory_duplex). Bytes are
/// counted per direction with the real 4-byte frame header charged as
/// per-message overhead, so `NetStats` reports exactly what crossed the
/// socket.
pub fn tcp_duplex() -> Result<(Endpoint, Endpoint, NetStats)> {
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_net("bind loopback listener", e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| io_net("listener local_addr", e))?;
    let client_stream = TcpStream::connect(addr).map_err(|e| io_net("connect loopback", e))?;
    let (server_stream, _) = listener
        .accept()
        .map_err(|e| io_net("accept loopback", e))?;
    let stats = NetStats::new();
    let server = Endpoint::from_tcp(Arc::new(TcpConn::new(server_stream)?), true, stats.clone());
    let client = Endpoint::from_tcp(Arc::new(TcpConn::new(client_stream)?), false, stats.clone());
    Ok((server, client, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair() -> (TcpConn, TcpConn) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (TcpConn::new(server).unwrap(), TcpConn::new(client).unwrap())
    }

    #[test]
    fn frames_roundtrip_both_directions() {
        let (server, client) = loopback_pair();
        server.send(&[1, 2, 3]).unwrap();
        server.send(&[]).unwrap();
        match client.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![1, 2, 3]),
            other => panic!("expected payload, got {other:?}"),
        }
        match client.recv().unwrap() {
            Frame::Payload(p) => assert!(p.is_empty()),
            other => panic!("expected empty payload, got {other:?}"),
        }
        client.send(&[9; 1000]).unwrap();
        match server.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p.len(), 1000),
            other => panic!("expected payload, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_reports_closed() {
        let (server, client) = loopback_pair();
        drop(server);
        assert!(matches!(client.recv().unwrap(), Frame::Closed));
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let server = TcpConn::new(server).unwrap();
        // Claim 100 bytes, deliver 3, die.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        drop(raw);
        let err = server.recv().unwrap_err();
        assert_eq!(err.kind(), "net");
        assert!(err.message().contains("mid-frame"), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let server = TcpConn::with_max_frame(server, 1024).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let err = server.recv().unwrap_err();
        assert_eq!(err.kind(), "codec");
        assert!(err.message().contains("exceeds"), "{err}");
    }

    #[test]
    fn stalled_mid_frame_errors_instead_of_hanging() {
        // A slowloris peer: starts a frame (header promising 64 bytes),
        // then goes silent while keeping the socket open. With the idle
        // timeout armed, recv must fail fast, not block forever.
        let (server, client) = loopback_pair();
        server.set_idle_timeout(Some(Duration::from_millis(30)));
        // Hand-craft the stall: the client writes only a frame header.
        {
            let mut raw = client.writer.lock();
            raw.write_all(&64u32.to_le_bytes()).unwrap();
            raw.flush().unwrap();
        }
        let started = std::time::Instant::now();
        let err = server.recv().unwrap_err();
        assert_eq!(err.kind(), "net");
        assert!(err.message().contains("stalled"), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stall detection must be prompt"
        );
    }

    #[test]
    fn idle_timeout_ticks_then_still_delivers() {
        let (server, client) = loopback_pair();
        server.set_idle_timeout(Some(Duration::from_millis(20)));
        assert!(matches!(server.recv().unwrap(), Frame::TimedOut));
        client.send(&[7]).unwrap();
        match server.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![7]),
            other => panic!("expected payload, got {other:?}"),
        }
    }

    #[test]
    fn poll_recv_resumes_partial_frames_across_calls() {
        let (server, client) = loopback_pair();
        server.set_nonblocking(true).unwrap();
        // Nothing sent yet: pending, and no partial in flight.
        assert!(matches!(server.poll_recv().unwrap(), PollFrame::Pending));
        assert!(server.partial_age().is_none());

        // Dribble a frame across three writes: header, half, rest.
        let payload = [7u8; 32];
        {
            let mut raw = client.writer.lock();
            raw.write_all(&32u32.to_le_bytes()).unwrap();
            raw.flush().unwrap();
        }
        // Let the bytes cross loopback, then observe a mid-frame partial.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match server.poll_recv().unwrap() {
                PollFrame::Pending if server.partial_age().is_some() => break,
                PollFrame::Pending => {}
                other => panic!("expected pending mid-frame, got {other:?}"),
            }
            assert!(std::time::Instant::now() < deadline, "header never arrived");
        }
        assert!(
            server.recv_buffer_bytes() >= RECV_BUFFER_CAPACITY + 32,
            "in-progress payload must be charged to the buffer bill"
        );
        {
            let mut raw = client.writer.lock();
            raw.write_all(&payload[..16]).unwrap();
            raw.write_all(&payload[16..]).unwrap();
            raw.flush().unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let got = loop {
            match server.poll_recv().unwrap() {
                PollFrame::Frame(p) => break p,
                PollFrame::Pending => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "frame never completed"
                    )
                }
                other => panic!("expected frame, got {other:?}"),
            }
        };
        assert_eq!(got, payload.to_vec());
        assert!(server.partial_age().is_none());
        assert_eq!(
            server.recv_buffer_bytes(),
            RECV_BUFFER_CAPACITY,
            "completed frame must repay its buffer accounting"
        );
    }

    #[test]
    fn poll_recv_drains_pipelined_frames_then_pends() {
        let (server, client) = loopback_pair();
        server.set_nonblocking(true).unwrap();
        client.send(&[1]).unwrap();
        client.send(&[2, 2]).unwrap();
        client.send(&[3, 3, 3]).unwrap();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 3 {
            match server.poll_recv().unwrap() {
                PollFrame::Frame(p) => got.push(p.len()),
                PollFrame::Pending => {
                    assert!(std::time::Instant::now() < deadline, "frames never arrived")
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(got, vec![1, 2, 3]);
        assert!(matches!(server.poll_recv().unwrap(), PollFrame::Pending));
    }

    #[test]
    fn poll_recv_reports_clean_close_and_peer_death() {
        let (server, client) = loopback_pair();
        server.set_nonblocking(true).unwrap();
        drop(client);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match server.poll_recv().unwrap() {
                PollFrame::Closed => break,
                PollFrame::Pending => {
                    assert!(std::time::Instant::now() < deadline, "close never observed")
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn blocking_recv_finishes_a_frame_started_by_poll_recv() {
        let (server, client) = loopback_pair();
        server.set_nonblocking(true).unwrap();
        {
            let mut raw = client.writer.lock();
            raw.write_all(&8u32.to_le_bytes()).unwrap();
            raw.write_all(&[5u8; 4]).unwrap();
            raw.flush().unwrap();
        }
        // Poll until the partial is in flight.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.partial_age().is_none() {
            assert!(matches!(server.poll_recv().unwrap(), PollFrame::Pending));
            assert!(
                std::time::Instant::now() < deadline,
                "partial never started"
            );
        }
        // Finish the frame and switch the receiver back to blocking mode:
        // recv must resume the same partial, not desync.
        {
            let mut raw = client.writer.lock();
            raw.write_all(&[5u8; 4]).unwrap();
            raw.flush().unwrap();
        }
        server.set_nonblocking(false).unwrap();
        match server.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![5u8; 8]),
            other => panic!("expected payload, got {other:?}"),
        }
    }

    #[test]
    fn try_send_delivers_small_frames_and_refuses_when_full() {
        let (server, client) = loopback_pair();
        server.set_nonblocking(true).unwrap();
        assert!(server.try_send(&[9u8; 16]).unwrap(), "small frame must go");
        match client.recv().unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![9u8; 16]),
            other => panic!("expected payload, got {other:?}"),
        }
        // Saturate the send buffer against a non-reading peer; eventually a
        // try_send must refuse instead of blocking.
        let big = vec![0u8; 256 * 1024];
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match server.try_send(&big) {
                Ok(true) => assert!(
                    std::time::Instant::now() < deadline,
                    "socket buffer never filled"
                ),
                Ok(false) => break,
                Err(e) => panic!("try_send must refuse, not fail: {e}"),
            }
        }
    }

    #[test]
    fn tcp_duplex_counts_framed_bytes() {
        let (server, client, stats) = tcp_duplex().unwrap();
        server.send(vec![0; 100]).unwrap();
        assert_eq!(client.recv().unwrap().len(), 100);
        client.send(vec![0; 10]).unwrap();
        assert_eq!(server.recv().unwrap().len(), 10);
        assert_eq!(stats.down_bytes(), 100 + FRAME_HEADER_BYTES as u64);
        assert_eq!(stats.up_bytes(), 10 + FRAME_HEADER_BYTES as u64);
        assert_eq!(stats.down_messages(), 1);
        assert_eq!(stats.up_messages(), 1);
    }

    #[test]
    fn tcp_endpoint_recv_none_after_peer_drop() {
        let (server, client, _) = tcp_duplex().unwrap();
        drop(server);
        assert!(client.recv().is_none());
    }

    #[test]
    fn tcp_endpoint_split_works_across_threads() {
        let (server, client, _) = tcp_duplex().unwrap();
        let (stx, srx) = server.split();
        let echo = std::thread::spawn(move || {
            while let Some(msg) = client.recv() {
                if client.send(msg).is_err() {
                    break;
                }
            }
        });
        for i in 0..20u8 {
            stx.send(vec![i; 10]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(srx.recv().unwrap(), vec![i; 10]);
        }
        drop(stx);
        drop(srx);
        echo.join().unwrap();
    }
}
