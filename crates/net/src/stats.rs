//! Shared transfer counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte/message counters for one duplex connection. Cloning shares the
/// underlying counters (they are updated from sender/receiver threads).
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    down_bytes: AtomicU64,
    up_bytes: AtomicU64,
    down_messages: AtomicU64,
    up_messages: AtomicU64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Record a server→client message of `bytes` payload bytes.
    pub fn record_down(&self, bytes: usize) {
        self.inner
            .down_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.inner.down_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a client→server message of `bytes` payload bytes.
    pub fn record_up(&self, bytes: usize) {
        self.inner
            .up_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.inner.up_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total server→client bytes.
    pub fn down_bytes(&self) -> u64 {
        self.inner.down_bytes.load(Ordering::Relaxed)
    }

    /// Total client→server bytes.
    pub fn up_bytes(&self) -> u64 {
        self.inner.up_bytes.load(Ordering::Relaxed)
    }

    /// Total server→client messages.
    pub fn down_messages(&self) -> u64 {
        self.inner.down_messages.load(Ordering::Relaxed)
    }

    /// Total client→server messages.
    pub fn up_messages(&self) -> u64 {
        self.inner.up_messages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_counters() {
        let a = NetStats::new();
        let b = a.clone();
        a.record_down(100);
        b.record_down(50);
        b.record_up(7);
        assert_eq!(a.down_bytes(), 150);
        assert_eq!(a.down_messages(), 2);
        assert_eq!(a.up_bytes(), 7);
        assert_eq!(a.up_messages(), 1);
    }
}
