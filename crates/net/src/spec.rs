//! Duplex network descriptions and the paper's testbed presets.

use crate::link::{kbit_per_sec, mbit_per_sec, Link, SimTime};

/// Description of the client↔server connection: a downlink (server→client)
/// and an uplink (client→server), each with bandwidth and latency, plus two
/// modelling knobs.
///
/// The paper's asymmetry parameter is `N = downlink bandwidth / uplink
/// bandwidth` ([`NetworkSpec::asymmetry`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Server→client bandwidth, bytes/second.
    pub down_bandwidth: f64,
    /// Client→server bandwidth, bytes/second.
    pub up_bandwidth: f64,
    /// Server→client propagation latency, µs.
    pub down_latency: SimTime,
    /// Client→server propagation latency, µs.
    pub up_latency: SimTime,
    /// Fixed framing overhead added to every message, bytes. The paper's
    /// cost model ignores framing (0); expose it for realism ablations.
    pub per_message_overhead: usize,
    /// The paper's *emulation* of asymmetry on a symmetric link: every byte
    /// returned on the uplink is counted `uplink_inflation` times. 1.0 means
    /// true links are used. See §4.3: "The asymmetric network was modeled on
    /// a 10Mbit Ethernet connection by returning N times as many bytes."
    pub uplink_inflation: f64,
}

impl NetworkSpec {
    /// A symmetric network.
    pub fn symmetric(bandwidth_bytes_per_sec: f64, latency: SimTime) -> NetworkSpec {
        NetworkSpec {
            down_bandwidth: bandwidth_bytes_per_sec,
            up_bandwidth: bandwidth_bytes_per_sec,
            down_latency: latency,
            up_latency: latency,
            per_message_overhead: 0,
            uplink_inflation: 1.0,
        }
    }

    /// An asymmetric network with downlink `n` times faster than uplink.
    pub fn asymmetric(down_bandwidth: f64, n: f64, latency: SimTime) -> NetworkSpec {
        assert!(n > 0.0, "asymmetry factor must be positive");
        NetworkSpec {
            down_bandwidth,
            up_bandwidth: down_bandwidth / n,
            down_latency: latency,
            up_latency: latency,
            per_message_overhead: 0,
            uplink_inflation: 1.0,
        }
    }

    /// The paper's §4.1/§4.2 testbed: 28.8 kbit/s symmetric phone line.
    /// Latency is chosen so the bandwidth-delay product is ≈ 2500 bytes per
    /// direction (round-trip ≈ 5000 bytes — the paper observes the optimal
    /// concurrency factor corresponds to ~5000 bytes in the pipeline).
    pub fn modem_28_8() -> NetworkSpec {
        // 28.8 kbit/s = 3600 B/s; 2500 bytes / 3600 B/s ≈ 0.694 s one-way
        // latency.
        let bw = kbit_per_sec(28.8);
        NetworkSpec::symmetric(bw, 694_444)
    }

    /// The paper's §4.3 asymmetric testbed: multiplexed 10 Mbit cable
    /// downlink with 28.8 kbit uplink, N = 100.
    pub fn cable_asymmetric() -> NetworkSpec {
        let up = kbit_per_sec(28.8);
        NetworkSpec {
            down_bandwidth: up * 100.0,
            up_bandwidth: up,
            down_latency: 50_000,
            up_latency: 50_000,
            per_message_overhead: 0,
            uplink_inflation: 1.0,
        }
    }

    /// The paper's own emulation of the asymmetric testbed: a symmetric
    /// link where the client "returns N times as many bytes" (§4.3), sized
    /// so the effective downlink and N match [`NetworkSpec::cable_asymmetric`].
    /// Used by the `ablate_asymmetry_emulation` bench to show both models
    /// agree.
    pub fn cable_asymmetric_emulated() -> NetworkSpec {
        let down = kbit_per_sec(28.8) * 100.0;
        NetworkSpec {
            down_bandwidth: down,
            up_bandwidth: down,
            down_latency: 50_000,
            up_latency: 50_000,
            per_message_overhead: 0,
            uplink_inflation: 100.0,
        }
    }

    /// A fast LAN used by tests where network time should be negligible.
    pub fn lan() -> NetworkSpec {
        NetworkSpec::symmetric(mbit_per_sec(1000.0), 100)
    }

    /// The paper's `N`: downlink/uplink bandwidth ratio, including any
    /// uplink byte inflation.
    pub fn asymmetry(&self) -> f64 {
        self.down_bandwidth / (self.up_bandwidth / self.uplink_inflation)
    }

    /// Round-trip propagation latency, µs.
    pub fn rtt(&self) -> SimTime {
        self.down_latency + self.up_latency
    }

    /// Effective bytes charged on the uplink for a payload of `size` bytes
    /// (applies framing overhead and inflation).
    pub fn uplink_bytes(&self, size: usize) -> usize {
        (((size + self.per_message_overhead) as f64) * self.uplink_inflation).ceil() as usize
    }

    /// Effective bytes charged on the downlink for a payload of `size` bytes.
    pub fn downlink_bytes(&self, size: usize) -> usize {
        size + self.per_message_overhead
    }

    /// Instantiate the downlink for a simulation run.
    pub fn make_downlink(&self) -> Link {
        Link::new(self.down_bandwidth, self.down_latency)
    }

    /// Instantiate the uplink for a simulation run.
    pub fn make_uplink(&self) -> Link {
        Link::new(self.up_bandwidth, self.up_latency)
    }

    /// Builder-style: set per-message framing overhead.
    pub fn with_overhead(mut self, bytes: usize) -> NetworkSpec {
        self.per_message_overhead = bytes;
        self
    }

    /// Builder-style: set both latencies.
    pub fn with_latency(mut self, latency: SimTime) -> NetworkSpec {
        self.down_latency = latency;
        self.up_latency = latency;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let m = NetworkSpec::modem_28_8();
        assert_eq!(m.down_bandwidth, 3600.0);
        assert_eq!(m.asymmetry(), 1.0);

        let c = NetworkSpec::cable_asymmetric();
        assert!((c.asymmetry() - 100.0).abs() < 1e-9);

        let e = NetworkSpec::cable_asymmetric_emulated();
        assert!((e.asymmetry() - 100.0).abs() < 1e-9);
        assert_eq!(e.uplink_bytes(10), 1000);
    }

    #[test]
    fn overhead_applies_to_both_directions() {
        let s = NetworkSpec::symmetric(1000.0, 0).with_overhead(8);
        assert_eq!(s.downlink_bytes(100), 108);
        assert_eq!(s.uplink_bytes(100), 108);
    }

    #[test]
    fn asymmetric_constructor_divides_bandwidth() {
        let s = NetworkSpec::asymmetric(10_000.0, 4.0, 10);
        assert_eq!(s.up_bandwidth, 2500.0);
        assert_eq!(s.asymmetry(), 4.0);
        assert_eq!(s.rtt(), 20);
    }

    #[test]
    fn modem_bdp_is_about_5000_bytes_round_trip() {
        let m = NetworkSpec::modem_28_8();
        let bdp = m.down_bandwidth * (m.rtt() as f64 / 1e6);
        assert!((bdp - 5000.0).abs() < 5.0, "bdp = {bdp}");
    }
}
