//! Readiness polling and cross-thread wakeups for the session scheduler.
//!
//! The query service parks idle connections in a single poller thread and
//! dispatches work to a small pool only when a whole request frame is
//! readable (DESIGN.md §12). That requires two primitives std does not
//! provide directly:
//!
//! * [`poll_readable`] — "which of these sockets can be read right now?",
//!   answered with one `poll(2)` syscall on unix (std already links libc,
//!   so a three-line FFI declaration costs no new dependency and no
//!   runtime). Non-unix builds degrade to a bounded wait followed by an
//!   every-socket sweep — correct, just less efficient, and only there so
//!   the crate keeps compiling off-platform.
//! * [`wake_pair`] — a self-pipe built from a loopback TCP pair (std has
//!   no `socketpair`). The receiving end sits in the poller's `poll(2)`
//!   set; the accept loop, the workers, and shutdown [`Waker::wake`] it to
//!   interrupt a wait the moment a session is (re)injected or the service
//!   is going down. Wake writes are non-blocking and coalesce: a full pipe
//!   means a wakeup is already pending, which is all a waker must ensure.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use parking_lot::Mutex;

use csq_common::{CsqError, Result};

/// Opaque socket identity accepted by [`poll_readable`]. On unix this is
/// the raw file descriptor; elsewhere it is a placeholder (the fallback
/// sweeps every socket instead of selecting by readiness).
pub type Fd = i32;

#[cfg(unix)]
mod sys {
    /// Mirrors `struct pollfd` from `poll(2)`: the layout is fixed by POSIX
    /// (three C ints/shorts in declaration order), hence `repr(C)`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x0001;
    pub const POLLERR: i16 = 0x0008;
    pub const POLLHUP: i16 = 0x0010;

    extern "C" {
        /// `poll(2)` from libc, which std already links on every unix
        /// target. `nfds_t` is pointer-sized on Linux and 32-bit on some
        /// BSDs; passing a zero-extended `usize` is compatible with both
        /// calling conventions for any fd count a process can hold.
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }
}

/// Wait up to `timeout` for any of `fds` to become readable; `ready[i]` is
/// set when `fds[i]` has bytes, EOF, or an error pending (all of which make
/// a read return promptly). Returns the number of ready sockets — 0 means
/// the wait timed out (or was interrupted; callers loop anyway).
///
/// `ready` must be at least as long as `fds`; entries beyond `fds.len()`
/// are left untouched. Readiness is level-triggered: a socket that already
/// has buffered kernel data reports ready on every call until drained, so
/// a wakeup can never be lost by polling "too late".
#[cfg(unix)]
pub fn poll_readable(fds: &[Fd], ready: &mut [bool], timeout: Duration) -> Result<usize> {
    if fds.len() > ready.len() {
        return Err(CsqError::Net(
            "poll_readable: ready mask shorter than fd list".into(),
        ));
    }
    let mut pollfds: Vec<sys::PollFd> = fds
        .iter()
        .map(|&fd| sys::PollFd {
            fd,
            events: sys::POLLIN,
            revents: 0,
        })
        .collect();
    // Round a sub-millisecond wait up to 1ms: poll(2) takes whole
    // milliseconds and a 0 would busy-spin the caller's loop.
    let millis = if timeout.is_zero() {
        0
    } else {
        i32::try_from(timeout.as_millis().max(1)).unwrap_or(i32::MAX)
    };
    // SAFETY: `pollfds` is a live, exclusively borrowed Vec of repr(C)
    // pollfd records, so the pointer/length pair describes `nfds` valid,
    // writable entries for the duration of the call; poll(2) writes only
    // `revents` within that range and stores nothing after it returns.
    let rc = unsafe { sys::poll(pollfds.as_mut_ptr(), pollfds.len(), millis) };
    if rc < 0 {
        let e = std::io::Error::last_os_error();
        if e.kind() == std::io::ErrorKind::Interrupted {
            return Ok(0); // EINTR: report nothing ready; the caller re-polls.
        }
        return Err(CsqError::Net(format!("poll: {e}")));
    }
    let mut count = 0;
    for (i, p) in pollfds.iter().enumerate() {
        let r = p.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0;
        ready[i] = r;
        count += usize::from(r);
    }
    Ok(count)
}

/// Portable fallback: no readiness facility, so wait out the timeout (a
/// wake via [`Waker`] cannot interrupt it early) and report every socket
/// ready — the caller's non-blocking reads turn the sweep into no-ops on
/// the quiet ones. Strictly worse than the unix path (O(sockets) work per
/// tick) but correct; real deployments of the service are unix.
#[cfg(not(unix))]
pub fn poll_readable(fds: &[Fd], ready: &mut [bool], timeout: Duration) -> Result<usize> {
    if fds.len() > ready.len() {
        return Err(CsqError::Net(
            "poll_readable: ready mask shorter than fd list".into(),
        ));
    }
    if !timeout.is_zero() {
        std::thread::park_timeout(timeout);
    }
    for slot in ready.iter_mut().take(fds.len()) {
        *slot = true;
    }
    Ok(fds.len())
}

/// The sending half of a [`wake_pair`]: cheap, clonable-by-Arc, safe to
/// call from any thread. See the module docs for the coalescing contract.
pub struct Waker {
    tx: Mutex<TcpStream>,
}

impl Waker {
    /// Nudge the poller. Never blocks: the stream is non-blocking and a
    /// `WouldBlock` (pipe already full of unread wake bytes) means a
    /// wakeup is already guaranteed, so all errors are ignorable.
    pub fn wake(&self) {
        let _ = self.tx.lock().write(&[1u8]);
    }
}

/// The receiving half of a [`wake_pair`]: lives in the poller thread, its
/// [`fd`](Self::fd) joins the `poll_readable` set, and [`drain`](Self::drain)
/// clears accumulated wake bytes once the poller is awake.
pub struct WakeReceiver {
    rx: TcpStream,
    fd: Fd,
}

impl WakeReceiver {
    /// The pollable identity of this receiver.
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// Consume every pending wake byte (non-blocking; coalesced wakes
    /// collapse into one pass here).
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.rx.read(&mut buf) {
                Ok(0) => break, // Waker dropped; nothing more will arrive.
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained.
            }
        }
    }
}

/// The pollable identity of a stream (raw fd on unix, placeholder
/// elsewhere — the fallback `poll_readable` ignores it anyway).
#[cfg(unix)]
pub(crate) fn stream_fd(s: &TcpStream) -> Fd {
    use std::os::unix::io::AsRawFd;
    s.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn stream_fd(_s: &TcpStream) -> Fd {
    0
}

/// Build a connected waker/receiver pair over loopback TCP (the portable
/// stand-in for `socketpair(2)`). Both ends are non-blocking from birth.
pub fn wake_pair() -> Result<(Waker, WakeReceiver)> {
    let err = |c: &str, e: std::io::Error| CsqError::Net(format!("wake pair {c}: {e}"));
    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| err("bind", e))?;
    let addr = listener.local_addr().map_err(|e| err("local_addr", e))?;
    let tx = TcpStream::connect(addr).map_err(|e| err("connect", e))?;
    let (rx, _) = listener.accept().map_err(|e| err("accept", e))?;
    tx.set_nodelay(true).map_err(|e| err("nodelay", e))?;
    tx.set_nonblocking(true)
        .map_err(|e| err("nonblocking", e))?;
    rx.set_nonblocking(true)
        .map_err(|e| err("nonblocking", e))?;
    let fd = stream_fd(&rx);
    Ok((Waker { tx: Mutex::new(tx) }, WakeReceiver { rx, fd }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wake_interrupts_a_poll_wait() {
        let (waker, mut rx) = wake_pair().unwrap();
        waker.wake();
        let mut ready = [false; 1];
        let started = Instant::now();
        let n = poll_readable(&[rx.fd()], &mut ready, Duration::from_secs(5)).unwrap();
        assert!(n >= 1 && ready[0], "wake byte must report readable");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "poll must return promptly on a pending wake"
        );
        rx.drain();
    }

    #[test]
    fn timeout_elapses_without_events() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut ready = [false; 1];
        let started = Instant::now();
        let _ = poll_readable(&[rx.fd()], &mut ready, Duration::from_millis(30)).unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(20),
            "an idle poll must wait out (most of) its timeout"
        );
    }

    #[cfg(unix)]
    #[test]
    fn idle_socket_reports_not_ready() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut ready = [true; 1];
        let n = poll_readable(&[rx.fd()], &mut ready, Duration::ZERO).unwrap();
        assert_eq!(n, 0);
        assert!(!ready[0], "no wake sent: the pipe must be quiet");
    }

    #[test]
    fn wakes_coalesce_and_drain() {
        let (waker, mut rx) = wake_pair().unwrap();
        for _ in 0..1000 {
            waker.wake(); // Must never block, even with nothing draining.
        }
        rx.drain();
        let mut ready = [true; 1];
        // Drained: nothing left pending (unix asserts emptiness; the
        // fallback path reports everything ready by design).
        if cfg!(unix) {
            let n = poll_readable(&[rx.fd()], &mut ready, Duration::ZERO).unwrap();
            assert_eq!(n, 0, "drain must consume every coalesced wake");
        }
    }
}
