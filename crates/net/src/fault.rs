//! Deterministic fault injection for the framed TCP transport.
//!
//! [`FaultInjector`] is a frame-aware TCP proxy that sits between a client
//! and a real service and misbehaves **on schedule**: connection *i* gets
//! the *i*-th entry of a committed [`Fault`] schedule (healthy passthrough
//! once the schedule is exhausted), so a chaos test replays the exact same
//! failure sequence on every run. Schedules can be written out by hand or
//! derived from a seed with [`fault_schedule`] — either way the injector
//! itself contains no hidden randomness.
//!
//! Faults are injected on the **downlink** (service → client) direction,
//! where the query protocol streams its results; the uplink is forwarded
//! byte-for-byte. [`Fault::Refuse`] additionally models a dead/refusing
//! endpoint by closing the client connection before dialing upstream.
//!
//! Production code paths never touch this module — it exists for the chaos
//! suite and any harness that wants reproducible network grief.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use csq_common::{CsqError, Result};

use crate::FRAME_HEADER_BYTES;

/// One connection's misbehavior, applied to the downlink frame stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Healthy passthrough.
    None,
    /// Close the client connection immediately, without dialing upstream —
    /// the client sees a refused or dead endpoint.
    Refuse,
    /// Forward this many downlink frames, then kill the connection (the
    /// client sees a mid-stream disconnect; with 0, it dies before the
    /// first response frame).
    DropAfter(u32),
    /// Forward this many downlink frames, then send the next frame's
    /// header with only **half** its payload and kill the connection (the
    /// client sees a truncated frame).
    TruncateAfter(u32),
    /// Forward this many downlink frames intact, then mangle the next
    /// frame's **length header** (set a high bit) and kill the connection.
    /// The client sees a typed codec error ("frame exceeds limit").
    /// Corruption targets the header deliberately: the framing layer owns
    /// the length's integrity, while payload integrity is the transport's
    /// job — a payload flip would be silent, and silent wrong answers are
    /// exactly what the chaos suite exists to rule out.
    CorruptAfter(u32),
    /// Delay every downlink frame by this many milliseconds (latency
    /// injection: queries slow down but stay correct — the fuel for
    /// deadline tests).
    DelayMs(u32),
}

/// Derive a `len`-entry fault schedule from a seed (SplitMix64). The same
/// seed always yields the same schedule; commit the seed, not the list.
pub fn fault_schedule(seed: u64, len: usize) -> Vec<Fault> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let roll = next();
            match roll % 6 {
                0 => Fault::None,
                1 => Fault::Refuse,
                2 => Fault::DropAfter((roll >> 8) as u32 % 4),
                3 => Fault::TruncateAfter((roll >> 8) as u32 % 3),
                4 => Fault::CorruptAfter((roll >> 8) as u32 % 3),
                _ => Fault::DelayMs(1 + (roll >> 8) as u32 % 5),
            }
        })
        .collect()
}

/// A running fault-injecting proxy; dropping (or
/// [`shutdown`](FaultInjector::shutdown)) stops accepting. In-flight
/// forwarder threads die with their connections.
pub struct FaultInjector {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
}

impl FaultInjector {
    /// Start a proxy on an OS-chosen loopback port, forwarding to
    /// `upstream`. Connection *i* suffers `schedule[i]`; connections past
    /// the schedule are healthy.
    pub fn start(upstream: impl ToSocketAddrs, schedule: Vec<Fault>) -> Result<FaultInjector> {
        let upstream = upstream
            .to_socket_addrs()
            .map_err(|e| CsqError::Net(format!("resolve upstream: {e}")))?
            .next()
            .ok_or_else(|| CsqError::Net("upstream resolved to nothing".into()))?;
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| CsqError::Net(format!("bind fault injector: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CsqError::Net(format!("injector local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let accept = {
            let stop = stop.clone();
            let accepted = accepted.clone();
            std::thread::Builder::new()
                .name("csq-fault-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        let index = accepted.fetch_add(1, Ordering::SeqCst);
                        let fault = schedule.get(index).copied().unwrap_or(Fault::None);
                        let _ = std::thread::Builder::new()
                            .name(format!("csq-fault-conn-{index}"))
                            .spawn(move || proxy_connection(client, upstream, fault));
                    }
                })
                .map_err(|e| CsqError::Net(format!("spawn injector accept: {e}")))?
        };
        Ok(FaultInjector {
            addr,
            stop,
            accepted,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — point clients here instead of at the
    /// real service.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (== schedule entries consumed).
    pub fn connections(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stop accepting new connections.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; the wake connection is counted but gets
        // at most a healthy proxy that immediately dies.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultInjector {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Forward one proxied connection under `fault` until either side dies.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: Fault) {
    if fault == Fault::Refuse {
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_r), Ok(server_r), Ok(server_w)) =
        (client.try_clone(), server.try_clone(), server.try_clone())
    else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    // Uplink: byte-level passthrough — requests are never faulted.
    let up = {
        let mut from = client_r;
        let mut to = server_w;
        std::thread::Builder::new()
            .name("csq-fault-uplink".into())
            .spawn(move || {
                let _ = std::io::copy(&mut from, &mut to);
                let _ = to.shutdown(Shutdown::Write);
            })
    };
    // Downlink: frame-aware, where the fault is applied.
    forward_downlink(server_r, client, fault);
    if let Ok(h) = up {
        let _ = h.join();
    }
    let _ = server.shutdown(Shutdown::Both);
}

/// Read frames from `from` (the service) and write them to `to` (the
/// client), misbehaving per `fault`. Returns when either side dies or the
/// fault kills the connection.
fn forward_downlink(mut from: TcpStream, mut to: TcpStream, fault: Fault) {
    let mut forwarded: u32 = 0;
    loop {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        if read_exact_or_eof(&mut from, &mut header).is_none() {
            let _ = to.shutdown(Shutdown::Write);
            return;
        }
        let len = u32::from_le_bytes(header) as usize;
        let mut payload = vec![0u8; len];
        if len > 0 && read_exact_or_eof(&mut from, &mut payload).is_none() {
            let _ = to.shutdown(Shutdown::Write);
            return;
        }
        match fault {
            Fault::None | Fault::Refuse => {}
            Fault::DelayMs(ms) => std::thread::sleep(Duration::from_millis(ms as u64)),
            Fault::DropAfter(n) => {
                if forwarded >= n {
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
            Fault::TruncateAfter(n) => {
                if forwarded >= n {
                    // Promise the full frame, deliver half, die.
                    let half = len / 2;
                    let _ = to
                        .write_all(&header)
                        .and_then(|()| to.write_all(&payload[..half]))
                        .and_then(|()| to.flush());
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
            Fault::CorruptAfter(n) => {
                if forwarded >= n {
                    // Mangle the declared length far past any frame cap,
                    // then die: the stream is garbage from here on.
                    let bad = (u32::from_le_bytes(header) | (1 << 30)).to_le_bytes();
                    let _ = to
                        .write_all(&bad)
                        .and_then(|()| to.write_all(&payload))
                        .and_then(|()| to.flush());
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        if to
            .write_all(&header)
            .and_then(|()| to.write_all(&payload))
            .and_then(|()| to.flush())
            .is_err()
        {
            let _ = from.shutdown(Shutdown::Both);
            return;
        }
        forwarded = forwarded.saturating_add(1);
    }
}

/// `read_exact` returning `None` on EOF/error (the proxy treats both as
/// "that side is gone").
fn read_exact_or_eof(r: &mut TcpStream, buf: &mut [u8]) -> Option<()> {
    r.read_exact(buf).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{Frame, TcpConn};

    /// An upstream that answers every received frame with the same payload
    /// twice (two frames per request), until the peer leaves.
    fn echo2_upstream() -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let conn = TcpConn::new(stream).unwrap();
                    while let Ok(Frame::Payload(p)) = conn.recv() {
                        if conn.send(&p).is_err() || conn.send(&p).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn healthy_schedule_passes_frames_through() {
        let up = echo2_upstream();
        let inj = FaultInjector::start(up, vec![Fault::None]).unwrap();
        let conn = TcpConn::connect(inj.local_addr()).unwrap();
        conn.send(&[1, 2, 3]).unwrap();
        for _ in 0..2 {
            match conn.recv().unwrap() {
                Frame::Payload(p) => assert_eq!(p, vec![1, 2, 3]),
                other => panic!("expected payload, got {other:?}"),
            }
        }
        assert_eq!(inj.connections(), 1);
    }

    #[test]
    fn refuse_kills_the_connection_before_upstream() {
        let up = echo2_upstream();
        let inj = FaultInjector::start(up, vec![Fault::Refuse, Fault::None]).unwrap();
        let conn = TcpConn::connect(inj.local_addr()).unwrap();
        // Either the send fails or the next recv reports closed/error.
        let dead = conn.send(&[9]).is_err() || !matches!(conn.recv(), Ok(Frame::Payload(_)));
        assert!(dead, "refused connection must not carry traffic");
        // The next connection is healthy.
        let conn = TcpConn::connect(inj.local_addr()).unwrap();
        conn.send(&[7]).unwrap();
        assert!(matches!(conn.recv().unwrap(), Frame::Payload(p) if p == vec![7]));
    }

    #[test]
    fn drop_after_cuts_mid_stream() {
        let up = echo2_upstream();
        let inj = FaultInjector::start(up, vec![Fault::DropAfter(1)]).unwrap();
        let conn = TcpConn::connect(inj.local_addr()).unwrap();
        conn.send(&[5; 10]).unwrap();
        assert!(matches!(conn.recv().unwrap(), Frame::Payload(_)));
        // Second frame never arrives: closed or error, never a hang.
        if let Ok(Frame::Payload(_)) = conn.recv() {
            panic!("fault should have dropped frame 2");
        }
    }

    #[test]
    fn truncate_surfaces_as_mid_frame_error() {
        let up = echo2_upstream();
        let inj = FaultInjector::start(up, vec![Fault::TruncateAfter(0)]).unwrap();
        let conn = TcpConn::connect(inj.local_addr()).unwrap();
        conn.send(&[8; 64]).unwrap();
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), "net");
        assert!(err.message().contains("mid-frame"), "{err}");
    }

    #[test]
    fn corrupt_surfaces_as_typed_codec_error() {
        let up = echo2_upstream();
        let inj = FaultInjector::start(up, vec![Fault::CorruptAfter(1)]).unwrap();
        let conn = TcpConn::connect(inj.local_addr()).unwrap();
        conn.send(&[1; 8]).unwrap();
        // Frame 1 passes intact; frame 2 arrives with a mangled length.
        let Frame::Payload(first) = conn.recv().unwrap() else {
            panic!("expected payload");
        };
        assert_eq!(first, vec![1; 8]);
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), "codec", "{err}");
        assert!(err.message().contains("exceeds"), "{err}");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        assert_eq!(fault_schedule(42, 16), fault_schedule(42, 16));
        assert_ne!(fault_schedule(42, 16), fault_schedule(43, 16));
    }
}
