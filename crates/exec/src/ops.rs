//! Core operators: sources, filter, project, sort, distinct, limit.

use std::cmp::Ordering;
use std::sync::Arc;

use csq_common::{CsqError, Field, Result, Row, Schema};
use csq_expr::PhysExpr;
use csq_storage::Table;

/// A Volcano-style pull operator.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;
}

/// Drain an operator into a vector.
pub fn collect(op: &mut dyn Operator) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = op.next()? {
        out.push(row);
    }
    Ok(out)
}

/// Scan of a table snapshot, with fields qualified by the FROM alias.
pub struct MemScan {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl MemScan {
    /// Snapshot `table` and qualify its columns with `alias`.
    pub fn new(table: &Arc<Table>, alias: &str) -> MemScan {
        MemScan {
            schema: table.schema().qualify(alias),
            rows: table.snapshot().into_iter(),
        }
    }
}

impl Operator for MemScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

/// An in-memory row source with an explicit schema (used by shipping
/// operators and tests).
pub struct RowsOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl RowsOp {
    /// Wrap rows with their schema.
    pub fn new(schema: Schema, rows: Vec<Row>) -> RowsOp {
        RowsOp {
            schema,
            rows: rows.into_iter(),
        }
    }
}

impl Operator for RowsOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

/// Filter rows by a bound predicate.
pub struct Filter {
    input: Box<dyn Operator + Send>,
    predicate: PhysExpr,
}

impl Filter {
    /// Wrap `input` with `predicate`.
    pub fn new(input: Box<dyn Operator + Send>, predicate: PhysExpr) -> Filter {
        Filter { input, predicate }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if self.predicate.eval_predicate(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Evaluate a list of expressions per row, producing a new schema.
pub struct Project {
    input: Box<dyn Operator + Send>,
    exprs: Vec<PhysExpr>,
    schema: Schema,
}

impl Project {
    /// `exprs` paired with their output fields.
    pub fn new(input: Box<dyn Operator + Send>, exprs: Vec<(PhysExpr, Field)>) -> Project {
        let (exprs, fields): (Vec<_>, Vec<_>) = exprs.into_iter().unzip();
        Project {
            input,
            exprs,
            schema: Schema::new(fields),
        }
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let mut values = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    values.push(e.eval(&row)?);
                }
                Ok(Some(Row::new(values)))
            }
        }
    }
}

/// Compare two rows on the given key columns with SQL ordering; NULLs sort
/// first, cross-type comparisons are exec errors surfaced at sort time.
pub fn compare_on(a: &Row, b: &Row, key: &[usize]) -> Result<Ordering> {
    for &k in key {
        let (va, vb) = (a.value(k), b.value(k));
        let ord = match (va.is_null(), vb.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => va
                .sql_cmp(vb)?
                .ok_or_else(|| CsqError::Exec("incomparable values in sort key".into()))?,
        };
        if ord != Ordering::Equal {
            return Ok(ord);
        }
    }
    Ok(Ordering::Equal)
}

/// Materializing sort on key columns (ascending).
pub struct Sort {
    input: Option<Box<dyn Operator + Send>>,
    key: Vec<usize>,
    schema: Schema,
    sorted: Option<std::vec::IntoIter<Row>>,
}

impl Sort {
    /// Sort `input` rows on `key` column ordinals.
    pub fn new(input: Box<dyn Operator + Send>, key: Vec<usize>) -> Sort {
        let schema = input.schema().clone();
        Sort {
            input: Some(input),
            key,
            schema,
            sorted: None,
        }
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.sorted.is_none() {
            let mut input = self.input.take().expect("sort input consumed twice");
            let mut rows = collect(input.as_mut())?;
            // Stable sort; comparison errors are deferred and re-raised.
            let mut cmp_err = None;
            rows.sort_by(|a, b| match compare_on(a, b, &self.key) {
                Ok(o) => o,
                Err(e) => {
                    cmp_err.get_or_insert(e);
                    Ordering::Equal
                }
            });
            if let Some(e) = cmp_err {
                return Err(e);
            }
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().unwrap().next())
    }
}

/// Hash-based duplicate elimination on the given key columns (or the whole
/// row when `key` is `None`). This is the paper's "Step 0: eliminate
/// duplicates" of the semi-join pipeline.
pub struct Distinct {
    input: Box<dyn Operator + Send>,
    key: Option<Vec<usize>>,
    seen: std::collections::HashSet<Row>,
}

impl Distinct {
    /// Distinct on all columns.
    pub fn all(input: Box<dyn Operator + Send>) -> Distinct {
        Distinct {
            input,
            key: None,
            seen: Default::default(),
        }
    }

    /// Distinct on a subset of columns (first occurrence wins).
    pub fn on(input: Box<dyn Operator + Send>, key: Vec<usize>) -> Distinct {
        Distinct {
            input,
            key: Some(key),
            seen: Default::default(),
        }
    }
}

impl Operator for Distinct {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            let k = match &self.key {
                Some(key) => row.project(key),
                None => row.clone(),
            };
            if self.seen.insert(k) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Stop after `n` rows.
pub struct Limit {
    input: Box<dyn Operator + Send>,
    remaining: usize,
}

impl Limit {
    /// Pass through at most `n` rows.
    pub fn new(input: Box<dyn Operator + Send>, n: usize) -> Limit {
        Limit {
            input,
            remaining: n,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::{DataType, Value};
    use csq_expr::{bind, Expr};
    use csq_storage::TableBuilder;

    fn int_rows(vals: &[(i64, i64)]) -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let rows = vals
            .iter()
            .map(|&(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)]))
            .collect();
        (schema, rows)
    }

    #[test]
    fn scan_qualifies_alias() {
        let t = Arc::new(
            TableBuilder::new("t")
                .column("x", DataType::Int)
                .row(vec![Value::Int(1)])
                .row(vec![Value::Int(2)])
                .build()
                .unwrap(),
        );
        let mut scan = MemScan::new(&t, "T1");
        assert_eq!(scan.schema().field(0).qualifier.as_deref(), Some("T1"));
        assert_eq!(collect(&mut scan).unwrap().len(), 2);
    }

    #[test]
    fn filter_applies_predicate() {
        let (schema, rows) = int_rows(&[(1, 10), (2, 20), (3, 30)]);
        let pred = bind(
            &Expr::binary(
                Expr::col_bare("a"),
                csq_expr::BinaryOp::GtEq,
                Expr::lit(2i64),
            ),
            &schema,
        )
        .unwrap();
        let mut f = Filter::new(Box::new(RowsOp::new(schema, rows)), pred);
        let out = collect(&mut f).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value(0), &Value::Int(2));
    }

    #[test]
    fn project_computes_expressions() {
        let (schema, rows) = int_rows(&[(1, 10), (2, 20)]);
        let sum = bind(
            &Expr::binary(
                Expr::col_bare("a"),
                csq_expr::BinaryOp::Add,
                Expr::col_bare("b"),
            ),
            &schema,
        )
        .unwrap();
        let mut p = Project::new(
            Box::new(RowsOp::new(schema, rows)),
            vec![(sum, Field::new("sum", DataType::Int))],
        );
        assert_eq!(p.schema().field(0).name, "sum");
        let out = collect(&mut p).unwrap();
        assert_eq!(out[0], Row::new(vec![Value::Int(11)]));
        assert_eq!(out[1], Row::new(vec![Value::Int(22)]));
    }

    #[test]
    fn sort_orders_with_nulls_first() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Int(3)]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Int(1)]),
        ];
        let mut s = Sort::new(Box::new(RowsOp::new(schema, rows)), vec![0]);
        let out = collect(&mut s).unwrap();
        assert_eq!(out[0].value(0), &Value::Null);
        assert_eq!(out[1].value(0), &Value::Int(1));
        assert_eq!(out[2].value(0), &Value::Int(3));
    }

    #[test]
    fn sort_is_stable_on_equal_keys() {
        let (schema, rows) = int_rows(&[(1, 100), (1, 200), (0, 300)]);
        let mut s = Sort::new(Box::new(RowsOp::new(schema, rows)), vec![0]);
        let out = collect(&mut s).unwrap();
        assert_eq!(out[1].value(1), &Value::Int(100));
        assert_eq!(out[2].value(1), &Value::Int(200));
    }

    #[test]
    fn distinct_on_key_keeps_first() {
        let (schema, rows) = int_rows(&[(1, 10), (1, 20), (2, 30), (2, 30)]);
        let mut d = Distinct::on(Box::new(RowsOp::new(schema.clone(), rows.clone())), vec![0]);
        let out = collect(&mut d).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value(1), &Value::Int(10));

        let mut d = Distinct::all(Box::new(RowsOp::new(schema, rows)));
        assert_eq!(collect(&mut d).unwrap().len(), 3);
    }

    #[test]
    fn limit_truncates() {
        let (schema, rows) = int_rows(&[(1, 1), (2, 2), (3, 3)]);
        let mut l = Limit::new(Box::new(RowsOp::new(schema, rows)), 2);
        assert_eq!(collect(&mut l).unwrap().len(), 2);
        assert!(l.next().unwrap().is_none());
    }

    #[test]
    fn compare_on_errors_for_incomparable() {
        // Bool vs Int is a type error from Value::sql_cmp.
        let a = Row::new(vec![Value::Bool(true)]);
        let b = Row::new(vec![Value::Int(1)]);
        assert_eq!(compare_on(&a, &b, &[0]).unwrap_err().kind(), "type");
        // NaN vs Float compares (bit order not defined by partial_cmp → exec).
        let a = Row::new(vec![Value::Float(f64::NAN)]);
        let b = Row::new(vec![Value::Float(1.0)]);
        assert_eq!(compare_on(&a, &b, &[0]).unwrap_err().kind(), "exec");
    }
}
