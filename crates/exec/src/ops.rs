//! Core operators: sources, filter, project, sort, distinct, limit.
//!
//! Since the vectorized-engine rework, every operator here is *batch
//! native*: it implements [`Operator::next_batch`] by processing a whole
//! [`RowBatch`] at a time (amortizing dynamic dispatch and allocation), and
//! the row-at-a-time [`Operator::next`] is a thin compatibility adapter that
//! hands out rows from an internal carry buffer. See DESIGN.md §2.

use std::cmp::Ordering;
use std::sync::Arc;

use csq_common::{CsqError, Field, Result, Row, RowBatch, Schema, Value, DEFAULT_BATCH_SIZE};
use csq_expr::{BinaryOp, PhysExpr};
use csq_storage::{FilterSpec, ScanSource, ScanStats, Table, TableScan};

/// A pull operator. The engine-facing interface is [`Operator::next_batch`];
/// `next` exists so row-at-a-time callers (and operators that are inherently
/// row-oriented, like the threaded shipping receivers) keep working.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;

    /// Produce the next batch of rows, or `None` when exhausted. Returned
    /// batches are never empty. The default adapter accumulates up to
    /// [`DEFAULT_BATCH_SIZE`] rows via [`Operator::next`]; batch-native
    /// operators override it.
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let mut rows = Vec::new();
        while rows.len() < DEFAULT_BATCH_SIZE {
            match self.next()? {
                Some(r) => rows.push(r),
                None => break,
            }
        }
        if rows.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::from_rows(
            Arc::new(self.schema().clone()),
            rows,
        )))
    }

    /// An upper bound on the rows this operator still expects to produce,
    /// when cheaply known (exact for sources and count-preserving
    /// operators). Used by [`collect`] and batch accumulators as a
    /// capacity hint; `None` when nothing useful is known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Cap on rows preallocated from a size hint: hints are upper bounds (a
/// selective filter forwards its input's), so an uncapped
/// `with_capacity(hint)` could transiently allocate input-sized buffers
/// for tiny outputs. Past the cap, `Vec` doubling amortizes fine.
const MAX_HINTED_CAPACITY: usize = 64 * DEFAULT_BATCH_SIZE;

/// Drain an operator into a vector, preallocating from its size hint.
pub fn collect(op: &mut dyn Operator) -> Result<Vec<Row>> {
    let hint = op.size_hint().unwrap_or(0).min(MAX_HINTED_CAPACITY);
    let mut out = Vec::with_capacity(hint);
    while let Some(batch) = op.next_batch()? {
        out.extend(batch.into_rows());
    }
    Ok(out)
}

/// Cooperative-cancellation checkpoint: forwards its input unchanged but
/// consults a [`CancelToken`](csq_common::CancelToken) once per pulled batch, surfacing a typed
/// `Cancelled`/`Timeout` error the moment the token trips. Lowering inserts
/// one of these above every source (and the plan root), so a pull anywhere
/// in the tree observes cancellation within one batch of work — the
/// granularity DESIGN.md §10 promises. Zero-cost when the token never
/// fires: one relaxed atomic load per ~1024 rows.
pub struct CancelCheck {
    inner: Box<dyn Operator + Send>,
    token: csq_common::CancelToken,
}

impl CancelCheck {
    /// Wrap `inner`, checking `token` at every batch boundary.
    pub fn new(inner: Box<dyn Operator + Send>, token: csq_common::CancelToken) -> CancelCheck {
        CancelCheck { inner, token }
    }
}

impl Operator for CancelCheck {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.token.should_stop() {
            self.token.check()?;
        }
        self.inner.next()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        self.token.check()?;
        self.inner.next_batch()
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

/// Carry buffer behind the row-compat [`Operator::next`] of batch-native
/// operators: holds the remainder of the last produced batch.
#[derive(Default)]
pub(crate) struct RowCarry {
    rows: std::vec::IntoIter<Row>,
}

impl RowCarry {
    pub(crate) fn pop(&mut self) -> Option<Row> {
        self.rows.next()
    }

    pub(crate) fn refill(&mut self, batch: RowBatch) {
        self.rows = batch.into_rows().into_iter();
    }

    pub(crate) fn len(&self) -> usize {
        self.rows.len()
    }

    /// Hand the buffered remainder back out as a batch (used when a caller
    /// mixes `next` and `next_batch`).
    pub(crate) fn drain(&mut self, schema: &Arc<Schema>) -> Option<RowBatch> {
        if self.rows.len() == 0 {
            return None;
        }
        let rest: Vec<Row> = std::mem::take(&mut self.rows).collect();
        Some(RowBatch::from_rows(schema.clone(), rest))
    }
}

/// Implements [`Operator`] for a batch-native operator type with fields
/// `schema: Arc<Schema>` and `carry: RowCarry` and an inherent method
/// `fn produce(&mut self) -> Result<Option<RowBatch>>` that never returns
/// an empty batch.
macro_rules! batch_operator {
    ($ty:ty) => {
        batch_operator!($ty, hint: |_s: &$ty| None);
    };
    ($ty:ty, hint: $hint:expr) => {
        impl Operator for $ty {
            fn schema(&self) -> &Schema {
                &self.schema
            }

            fn next(&mut self) -> Result<Option<Row>> {
                loop {
                    if let Some(r) = self.carry.pop() {
                        return Ok(Some(r));
                    }
                    match self.produce()? {
                        Some(b) => self.carry.refill(b),
                        None => return Ok(None),
                    }
                }
            }

            fn next_batch(&mut self) -> Result<Option<RowBatch>> {
                if let Some(b) = self.carry.drain(&self.schema) {
                    return Ok(Some(b));
                }
                self.produce()
            }

            fn size_hint(&self) -> Option<usize> {
                #[allow(clippy::redundant_closure_call)]
                ($hint)(self).map(|n: usize| n + self.carry.len())
            }
        }
    };
}
pub(crate) use batch_operator;

/// Scan of a table snapshot, with fields qualified by the FROM alias.
pub struct MemScan {
    schema: Arc<Schema>,
    rows: std::vec::IntoIter<Row>,
    carry: RowCarry,
}

impl MemScan {
    /// Snapshot `table` and qualify its columns with `alias`.
    pub fn new(table: &Arc<Table>, alias: &str) -> MemScan {
        MemScan {
            schema: Arc::new(table.schema().qualify(alias)),
            rows: table.snapshot().into_iter(),
            carry: RowCarry::default(),
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        produce_chunk(&mut self.rows, &self.schema)
    }
}

batch_operator!(MemScan, hint: |s: &MemScan| Some(s.rows.len()));

/// Batch-native scan over a table's columnar segments with zone-map pruning
/// (DESIGN.md §11): the compiled [`FilterSpec`] — the pushable prefix of the
/// filter above this scan — skips whole segments before any column data is
/// touched. The filter operator above remains authoritative for row-level
/// semantics; pruning only removes segments it would have rejected
/// wholesale. [`MemScan`] stays as the row-vector oracle this scan is
/// differentially tested against.
pub struct ColumnarScan {
    schema: Arc<Schema>,
    scan: TableScan,
    carry: RowCarry,
}

impl ColumnarScan {
    /// Open a pruning scan over `table`, columns qualified with `alias`.
    pub fn new(table: &Arc<Table>, alias: &str, spec: Option<&FilterSpec>) -> Result<ColumnarScan> {
        let schema = Arc::new(table.schema().qualify(alias));
        let scan = table.scan_as(schema.clone(), spec)?;
        Ok(ColumnarScan {
            schema,
            scan,
            carry: RowCarry::default(),
        })
    }

    /// Pruning accounting (segments pruned/scanned, tail rows).
    pub fn scan_stats(&self) -> ScanStats {
        self.scan.stats()
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        Ok(self.scan.next_batch())
    }
}

batch_operator!(ColumnarScan, hint: |s: &ColumnarScan| Some(s.scan.remaining_rows()));

/// Move up to one batch worth of rows out of a materialized iterator.
pub(crate) fn produce_chunk(
    rows: &mut std::vec::IntoIter<Row>,
    schema: &Arc<Schema>,
) -> Result<Option<RowBatch>> {
    let n = rows.len().min(DEFAULT_BATCH_SIZE);
    if n == 0 {
        return Ok(None);
    }
    let chunk: Vec<Row> = rows.by_ref().take(n).collect();
    Ok(Some(RowBatch::from_rows(schema.clone(), chunk)))
}

/// An in-memory row source with an explicit schema (used by shipping
/// operators and tests).
pub struct RowsOp {
    schema: Arc<Schema>,
    rows: std::vec::IntoIter<Row>,
    carry: RowCarry,
}

impl RowsOp {
    /// Wrap rows with their schema.
    pub fn new(schema: Schema, rows: Vec<Row>) -> RowsOp {
        RowsOp {
            schema: Arc::new(schema),
            rows: rows.into_iter(),
            carry: RowCarry::default(),
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        produce_chunk(&mut self.rows, &self.schema)
    }
}

batch_operator!(RowsOp, hint: |s: &RowsOp| Some(s.rows.len()));

/// Pre-resolved literal of a compiled comparison: the typed lanes avoid
/// re-matching the literal's `Value` discriminant on every row.
#[derive(Clone)]
enum CmpLit {
    Float(f64),
    Int(i64),
    Other,
}

/// One compiled `column <cmp> literal` comparison of the batch filter's
/// fast path.
#[derive(Clone)]
pub(crate) struct CmpSpec {
    col: usize,
    op: BinaryOp,
    kind: CmpLit,
    lit: Value,
}

impl CmpSpec {
    fn new(col: usize, op: BinaryOp, lit: Value) -> CmpSpec {
        let kind = match &lit {
            Value::Float(f) => CmpLit::Float(*f),
            Value::Int(i) => CmpLit::Int(*i),
            _ => CmpLit::Other,
        };
        CmpSpec { col, op, kind, lit }
    }

    /// SQL three-valued comparison: `None` is unknown (NULL operand or NaN
    /// ordering); type errors surface exactly like the general evaluator.
    #[inline]
    fn tristate(&self, row: &Row) -> Result<Option<bool>> {
        let v = row.values().get(self.col).ok_or_else(|| {
            CsqError::Exec(format!(
                "column ordinal {} out of bounds for row of width {}",
                self.col,
                row.len()
            ))
        })?;
        // Typed fast lanes for the common scan predicates; everything else
        // (including cross-type and error cases) falls back to sql_cmp,
        // whose NULL/widening/error semantics are authoritative.
        let ord = match (&self.kind, v) {
            (CmpLit::Float(b), Value::Float(a)) => a.partial_cmp(b),
            (CmpLit::Float(b), Value::Int(a)) => (*a as f64).partial_cmp(b),
            (CmpLit::Int(b), Value::Int(a)) => Some(a.cmp(b)),
            _ => v.sql_cmp(&self.lit)?,
        };
        Ok(ord.map(|o| ordering_matches(self.op, o)))
    }
}

/// Specialized predicate forms the batch filter recognizes to skip the
/// expression-tree walk (and its per-row `Value` clones) on the hot path.
/// Cloneable so the parallel engine can hand each worker its own compiled
/// copy without re-analyzing the predicate per worker.
#[derive(Clone)]
pub(crate) enum PredPath {
    /// A conjunction of `column <cmp> literal` comparisons (a single
    /// comparison is a one-element conjunction), evaluated left to right
    /// with short-circuiting — exactly the general evaluator's order.
    Conjunction(Vec<CmpSpec>),
    /// Anything else: full expression evaluation.
    General,
}

impl PredPath {
    pub(crate) fn analyze(pred: &PhysExpr) -> PredPath {
        fn flatten(e: &PhysExpr, out: &mut Vec<CmpSpec>) -> bool {
            match e {
                PhysExpr::Binary { left, op, right } if *op == BinaryOp::And => {
                    flatten(left, out) && flatten(right, out)
                }
                PhysExpr::Binary { left, op, right } if op.is_comparison() => {
                    if let (PhysExpr::Column(col), PhysExpr::Literal(lit)) = (&**left, &**right) {
                        out.push(CmpSpec::new(*col, *op, lit.clone()));
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        }
        let mut specs = Vec::new();
        if flatten(pred, &mut specs) && !specs.is_empty() {
            PredPath::Conjunction(specs)
        } else {
            PredPath::General
        }
    }
}

fn ordering_matches(op: BinaryOp, o: Ordering) -> bool {
    match op {
        BinaryOp::Eq => o == Ordering::Equal,
        BinaryOp::NotEq => o != Ordering::Equal,
        BinaryOp::Lt => o == Ordering::Less,
        BinaryOp::LtEq => o != Ordering::Greater,
        BinaryOp::Gt => o == Ordering::Greater,
        BinaryOp::GtEq => o != Ordering::Less,
        _ => unreachable!("ordering_matches on non-comparison"),
    }
}

/// Filter rows by a bound predicate. Batch-native: each input batch is
/// compacted in place (kept rows are moved, never cloned).
pub struct Filter {
    input: Box<dyn Operator + Send>,
    predicate: PhysExpr,
    path: PredPath,
    schema: Arc<Schema>,
    carry: RowCarry,
}

impl Filter {
    /// Wrap `input` with `predicate`.
    pub fn new(input: Box<dyn Operator + Send>, predicate: PhysExpr) -> Filter {
        let schema = Arc::new(input.schema().clone());
        let path = PredPath::analyze(&predicate);
        Filter {
            input,
            predicate,
            path,
            schema,
            carry: RowCarry::default(),
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        loop {
            let Some(batch) = self.input.next_batch()? else {
                return Ok(None);
            };
            let (schema, mut rows) = batch.into_parts();
            filter_rows(&self.path, &self.predicate, &mut rows)?;
            if !rows.is_empty() {
                return Ok(Some(RowBatch::from_rows(schema, rows)));
            }
        }
    }
}

/// The batch filter kernel, shared by the serial [`Filter`] operator and the
/// parallel engine's per-worker filter stage: compacts `rows` in place (kept
/// rows are moved, never cloned).
///
/// SQL AND over three-valued conjuncts, evaluated in the same order as the
/// expression tree: a definite false short-circuits; unknown does not (later
/// conjuncts may still error, and `unknown AND false` is false).
pub(crate) fn filter_rows(
    path: &PredPath,
    predicate: &PhysExpr,
    rows: &mut Vec<Row>,
) -> Result<()> {
    let mut err = None;
    // Hoist the predicate-path dispatch out of the per-row loop.
    match path {
        PredPath::Conjunction(specs) => rows.retain(|r| {
            if err.is_some() {
                return false;
            }
            let mut unknown = false;
            for spec in specs {
                match spec.tristate(r) {
                    Ok(Some(false)) => return false,
                    Ok(Some(true)) => {}
                    Ok(None) => unknown = true,
                    Err(e) => {
                        err = Some(e);
                        return false;
                    }
                }
            }
            !unknown
        }),
        PredPath::General => rows.retain(|r| {
            if err.is_some() {
                return false;
            }
            match predicate.eval_predicate(r) {
                Ok(b) => b,
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        }),
    }
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

// The input's hint is an upper bound for a filter — still useful as a
// preallocation ceiling for `collect`.
batch_operator!(Filter, hint: |s: &Filter| s.input.size_hint());

/// How the batch projection computes its output rows. Cloneable so the
/// parallel engine can hand each worker its own compiled copy.
#[derive(Clone)]
pub(crate) enum ProjPath {
    /// Strictly increasing bare columns: each row is projected *in place*,
    /// reusing its own allocation — no clone, no per-row `Vec`.
    InPlace(Vec<usize>),
    /// Distinct bare columns in arbitrary order: values are moved out of
    /// the consumed row into a fresh vector (no clones).
    Move(Vec<usize>),
    /// General expression evaluation.
    Eval,
}

impl ProjPath {
    pub(crate) fn analyze(exprs: &[PhysExpr]) -> ProjPath {
        let cols: Option<Vec<usize>> = exprs
            .iter()
            .map(|e| match e {
                PhysExpr::Column(i) => Some(*i),
                _ => None,
            })
            .collect();
        let Some(cols) = cols else {
            return ProjPath::Eval;
        };
        if cols.windows(2).all(|w| w[0] < w[1]) {
            return ProjPath::InPlace(cols);
        }
        // Moving a value out of the input row is only sound when no other
        // output column reads the same ordinal.
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        if sorted.windows(2).all(|w| w[0] != w[1]) {
            ProjPath::Move(cols)
        } else {
            ProjPath::Eval
        }
    }
}

/// Evaluate a list of expressions per row, producing a new schema.
/// Batch-native; pure-column projections move (or retitle in place) the
/// values of the consumed input rows instead of cloning them.
pub struct Project {
    input: Box<dyn Operator + Send>,
    exprs: Vec<PhysExpr>,
    path: ProjPath,
    schema: Arc<Schema>,
    carry: RowCarry,
}

impl Project {
    /// `exprs` paired with their output fields.
    pub fn new(input: Box<dyn Operator + Send>, exprs: Vec<(PhysExpr, Field)>) -> Project {
        let (exprs, fields): (Vec<_>, Vec<_>) = exprs.into_iter().unzip();
        let path = ProjPath::analyze(&exprs);
        Project {
            input,
            exprs,
            path,
            schema: Arc::new(Schema::new(fields)),
            carry: RowCarry::default(),
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        let rows = project_rows(&self.path, &self.exprs, batch.into_rows())?;
        Ok(Some(RowBatch::from_rows(self.schema.clone(), rows)))
    }
}

/// The batch projection kernel, shared by the serial [`Project`] operator
/// and the parallel engine's per-worker project stage. Pure-column
/// projections move (or retitle in place) the values of the consumed rows
/// instead of cloning them.
pub(crate) fn project_rows(
    path: &ProjPath,
    exprs: &[PhysExpr],
    mut rows: Vec<Row>,
) -> Result<Vec<Row>> {
    match path {
        ProjPath::InPlace(cols) => {
            for row in &mut rows {
                row.project_in_place(cols)?;
            }
            Ok(rows)
        }
        ProjPath::Move(cols) => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let width = row.len();
                let mut vals = row.into_values();
                let mut picked = Vec::with_capacity(cols.len());
                for &i in cols {
                    let slot = vals.get_mut(i).ok_or_else(|| {
                        CsqError::Exec(format!(
                            "column ordinal {i} out of bounds for row of width {width}"
                        ))
                    })?;
                    picked.push(std::mem::replace(slot, Value::Null));
                }
                out.push(Row::new(picked));
            }
            Ok(out)
        }
        ProjPath::Eval => {
            let mut out = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(e.eval(row)?);
                }
                out.push(Row::new(vals));
            }
            Ok(out)
        }
    }
}

batch_operator!(Project, hint: |s: &Project| s.input.size_hint());

/// Compare two rows on the given key columns with SQL ordering; NULLs sort
/// first, cross-type comparisons are exec errors surfaced at sort time.
pub fn compare_on(a: &Row, b: &Row, key: &[usize]) -> Result<Ordering> {
    compare_on_keys(a, key, b, key)
}

/// Like [`compare_on`] but with separate key-column lists per side (the
/// merge join compares left rows against right rows without materializing
/// projected key rows).
pub fn compare_on_keys(a: &Row, a_key: &[usize], b: &Row, b_key: &[usize]) -> Result<Ordering> {
    debug_assert_eq!(a_key.len(), b_key.len());
    for (&ka, &kb) in a_key.iter().zip(b_key) {
        let ord = compare_values(a.value(ka), b.value(kb))?;
        if ord != Ordering::Equal {
            return Ok(ord);
        }
    }
    Ok(Ordering::Equal)
}

/// SQL ordering of two values with NULLs first; incomparable pairs (NaN
/// against another float, cross-type) are exec errors rather than panics.
/// This is the key-validation primitive shared by [`Sort`]'s fallible
/// comparator and [`crate::HashAggregate`]'s MIN/MAX accumulators, so
/// `ORDER BY` over NaN-bearing aggregate output errors the same way a sort
/// over a NaN-bearing base column does.
pub fn compare_values(va: &Value, vb: &Value) -> Result<Ordering> {
    match (va.is_null(), vb.is_null()) {
        (true, true) => Ok(Ordering::Equal),
        (true, false) => Ok(Ordering::Less),
        (false, true) => Ok(Ordering::Greater),
        (false, false) => va
            .sql_cmp(vb)?
            .ok_or_else(|| CsqError::Exec("incomparable values in sort key".into())),
    }
}

/// Materializing sort on key columns (ascending). The input is drained
/// batch-wise into one buffer (sized from the input's hint), sorted once,
/// and re-emitted in batches.
pub struct Sort {
    input: Option<Box<dyn Operator + Send>>,
    key: Vec<usize>,
    schema: Arc<Schema>,
    sorted: Option<std::vec::IntoIter<Row>>,
    carry: RowCarry,
}

impl Sort {
    /// Sort `input` rows on `key` column ordinals.
    pub fn new(input: Box<dyn Operator + Send>, key: Vec<usize>) -> Sort {
        let schema = Arc::new(input.schema().clone());
        Sort {
            input: Some(input),
            key,
            schema,
            sorted: None,
            carry: RowCarry::default(),
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        if self.sorted.is_none() {
            let mut input = self.input.take().expect("sort input consumed twice");
            let mut rows = collect(input.as_mut())?;
            sort_rows_fallible(&mut rows, &self.key)?;
            self.sorted = Some(rows.into_iter());
        }
        produce_chunk(self.sorted.as_mut().unwrap(), &self.schema)
    }
}

/// Stable bottom-up merge sort that *propagates* comparison errors.
///
/// `slice::sort_by` cannot host a fallible comparator: smuggling errors out
/// as fake `Equal`s makes the relation violate total order, which modern
/// std detects and punishes with a panic. This sort surfaces the first
/// incomparable pair it actually compares as an `Err` — the same
/// lazy-error semantics the engine has always had (a key column whose
/// incomparable values are never reached by any comparison still sorts).
/// On error the contents of `rows` are unspecified (the caller discards).
fn sort_rows_fallible(rows: &mut [Row], key: &[usize]) -> Result<()> {
    let n = rows.len();
    if n < 2 {
        return Ok(());
    }
    let mut src: Vec<Row> = rows.iter_mut().map(std::mem::take).collect();
    let mut dst: Vec<Row> = std::iter::repeat_with(Row::default).take(n).collect();
    let mut width = 1;
    while width < n {
        let mut start = 0;
        while start < n {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            let (mut i, mut j, mut k) = (start, mid, start);
            while i < mid && j < end {
                // Stable: the left run wins ties.
                if compare_on(&src[i], &src[j], key)? != Ordering::Greater {
                    dst[k] = std::mem::take(&mut src[i]);
                    i += 1;
                } else {
                    dst[k] = std::mem::take(&mut src[j]);
                    j += 1;
                }
                k += 1;
            }
            while i < mid {
                dst[k] = std::mem::take(&mut src[i]);
                i += 1;
                k += 1;
            }
            while j < end {
                dst[k] = std::mem::take(&mut src[j]);
                j += 1;
                k += 1;
            }
            start = end;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    for (slot, row) in rows.iter_mut().zip(src) {
        *slot = row;
    }
    Ok(())
}

batch_operator!(Sort, hint: |s: &Sort| {
    match &s.sorted {
        Some(it) => Some(it.len()),
        None => s.input.as_ref().and_then(|i| i.size_hint()),
    }
});

/// Hash-based duplicate elimination on the given key columns (or the whole
/// row when `key` is `None`). This is the paper's "Step 0: eliminate
/// duplicates" of the semi-join pipeline. Batch-native; duplicate rows are
/// dropped without cloning anything (only first occurrences enter the seen
/// set).
pub struct Distinct {
    input: Box<dyn Operator + Send>,
    key: Option<Vec<usize>>,
    seen: std::collections::HashSet<Row>,
    schema: Arc<Schema>,
    carry: RowCarry,
}

impl Distinct {
    /// Distinct on all columns.
    pub fn all(input: Box<dyn Operator + Send>) -> Distinct {
        let schema = Arc::new(input.schema().clone());
        Distinct {
            input,
            key: None,
            seen: Default::default(),
            schema,
            carry: RowCarry::default(),
        }
    }

    /// Distinct on a subset of columns (first occurrence wins).
    pub fn on(input: Box<dyn Operator + Send>, key: Vec<usize>) -> Distinct {
        let schema = Arc::new(input.schema().clone());
        Distinct {
            input,
            key: Some(key),
            seen: Default::default(),
            schema,
            carry: RowCarry::default(),
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        loop {
            let Some(batch) = self.input.next_batch()? else {
                return Ok(None);
            };
            let (schema, mut rows) = batch.into_parts();
            rows.retain(|row| match &self.key {
                Some(key) => self.seen.insert(row.project(key)),
                None => {
                    if self.seen.contains(row) {
                        false
                    } else {
                        self.seen.insert(row.clone());
                        true
                    }
                }
            });
            if !rows.is_empty() {
                return Ok(Some(RowBatch::from_rows(schema, rows)));
            }
        }
    }
}

batch_operator!(Distinct, hint: |s: &Distinct| s.input.size_hint());

/// Stop after `n` rows.
pub struct Limit {
    input: Box<dyn Operator + Send>,
    remaining: usize,
    schema: Arc<Schema>,
    carry: RowCarry,
}

impl Limit {
    /// Pass through at most `n` rows.
    pub fn new(input: Box<dyn Operator + Send>, n: usize) -> Limit {
        let schema = Arc::new(input.schema().clone());
        Limit {
            input,
            remaining: n,
            schema,
            carry: RowCarry::default(),
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        let (schema, mut rows) = batch.into_parts();
        if rows.len() > self.remaining {
            rows.truncate(self.remaining);
        }
        self.remaining -= rows.len();
        Ok(Some(RowBatch::from_rows(schema, rows)))
    }
}

batch_operator!(Limit, hint: |s: &Limit| {
    s.input.size_hint().map(|n| n.min(s.remaining))
});

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::{DataType, Value};
    use csq_expr::{bind, Expr};
    use csq_storage::TableBuilder;

    fn int_rows(vals: &[(i64, i64)]) -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let rows = vals
            .iter()
            .map(|&(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)]))
            .collect();
        (schema, rows)
    }

    #[test]
    fn scan_qualifies_alias() {
        let t = Arc::new(
            TableBuilder::new("t")
                .column("x", DataType::Int)
                .row(vec![Value::Int(1)])
                .row(vec![Value::Int(2)])
                .build()
                .unwrap(),
        );
        let mut scan = MemScan::new(&t, "T1");
        assert_eq!(scan.schema().field(0).qualifier.as_deref(), Some("T1"));
        assert_eq!(scan.size_hint(), Some(2));
        assert_eq!(collect(&mut scan).unwrap().len(), 2);
    }

    #[test]
    fn filter_applies_predicate() {
        let (schema, rows) = int_rows(&[(1, 10), (2, 20), (3, 30)]);
        let pred = bind(
            &Expr::binary(
                Expr::col_bare("a"),
                csq_expr::BinaryOp::GtEq,
                Expr::lit(2i64),
            ),
            &schema,
        )
        .unwrap();
        let mut f = Filter::new(Box::new(RowsOp::new(schema, rows)), pred);
        let out = collect(&mut f).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value(0), &Value::Int(2));
    }

    #[test]
    fn filter_fast_path_matches_general_eval() {
        // Same predicate written as col-cmp-lit (fast path) and wrapped so
        // it falls back to general evaluation; both must agree, including
        // NULL handling.
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rows: Vec<Row> = [
            Value::Int(1),
            Value::Null,
            Value::Int(5),
            Value::Int(3),
            Value::Int(-2),
        ]
        .into_iter()
        .map(|v| Row::new(vec![v]))
        .collect();
        let fast = bind(
            &Expr::binary(Expr::col_bare("a"), csq_expr::BinaryOp::Gt, Expr::lit(2i64)),
            &schema,
        )
        .unwrap();
        // `lit < col` is not recognized by the fast path.
        let general = bind(
            &Expr::binary(Expr::lit(2i64), csq_expr::BinaryOp::Lt, Expr::col_bare("a")),
            &schema,
        )
        .unwrap();
        let mut f1 = Filter::new(Box::new(RowsOp::new(schema.clone(), rows.clone())), fast);
        let mut f2 = Filter::new(Box::new(RowsOp::new(schema, rows)), general);
        assert_eq!(collect(&mut f1).unwrap(), collect(&mut f2).unwrap());
    }

    #[test]
    fn project_computes_expressions() {
        let (schema, rows) = int_rows(&[(1, 10), (2, 20)]);
        let sum = bind(
            &Expr::binary(
                Expr::col_bare("a"),
                csq_expr::BinaryOp::Add,
                Expr::col_bare("b"),
            ),
            &schema,
        )
        .unwrap();
        let mut p = Project::new(
            Box::new(RowsOp::new(schema, rows)),
            vec![(sum, Field::new("sum", DataType::Int))],
        );
        assert_eq!(p.schema().field(0).name, "sum");
        let out = collect(&mut p).unwrap();
        assert_eq!(out[0], Row::new(vec![Value::Int(11)]));
        assert_eq!(out[1], Row::new(vec![Value::Int(22)]));
    }

    #[test]
    fn project_move_path_reorders_and_duplicates_fall_back() {
        let (schema, rows) = int_rows(&[(1, 10), (2, 20)]);
        // (b, a): pure distinct columns — exercised by the move fast path.
        let mut p = Project::new(
            Box::new(RowsOp::new(schema.clone(), rows.clone())),
            vec![
                (PhysExpr::Column(1), Field::new("b", DataType::Int)),
                (PhysExpr::Column(0), Field::new("a", DataType::Int)),
            ],
        );
        let out = collect(&mut p).unwrap();
        assert_eq!(out[0], Row::new(vec![Value::Int(10), Value::Int(1)]));
        // (a, a): duplicate ordinal must clone, not move.
        let mut p = Project::new(
            Box::new(RowsOp::new(schema, rows)),
            vec![
                (PhysExpr::Column(0), Field::new("a1", DataType::Int)),
                (PhysExpr::Column(0), Field::new("a2", DataType::Int)),
            ],
        );
        let out = collect(&mut p).unwrap();
        assert_eq!(out[1], Row::new(vec![Value::Int(2), Value::Int(2)]));
    }

    #[test]
    fn sort_orders_with_nulls_first() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Int(3)]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Int(1)]),
        ];
        let mut s = Sort::new(Box::new(RowsOp::new(schema, rows)), vec![0]);
        let out = collect(&mut s).unwrap();
        assert_eq!(out[0].value(0), &Value::Null);
        assert_eq!(out[1].value(0), &Value::Int(1));
        assert_eq!(out[2].value(0), &Value::Int(3));
    }

    #[test]
    fn sort_is_stable_on_equal_keys() {
        let (schema, rows) = int_rows(&[(1, 100), (1, 200), (0, 300)]);
        let mut s = Sort::new(Box::new(RowsOp::new(schema, rows)), vec![0]);
        let out = collect(&mut s).unwrap();
        assert_eq!(out[1].value(1), &Value::Int(100));
        assert_eq!(out[2].value(1), &Value::Int(200));
    }

    #[test]
    fn sort_incomparable_errors_instead_of_panicking() {
        // Mixed Int/Str key column: a type error, not a sort_by panic.
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::from("x")]),
            Row::new(vec![Value::Int(2)]),
        ];
        let mut s = Sort::new(Box::new(RowsOp::new(schema.clone(), rows)), vec![0]);
        assert_eq!(collect(&mut s).unwrap_err().kind(), "type");
        // NaN alongside another float: exec error.
        let rows = vec![
            Row::new(vec![Value::Float(f64::NAN)]),
            Row::new(vec![Value::Float(1.0)]),
        ];
        let mut s = Sort::new(Box::new(RowsOp::new(schema, rows)), vec![0]);
        assert_eq!(collect(&mut s).unwrap_err().kind(), "exec");
    }

    #[test]
    fn sort_handles_large_inputs_stably() {
        // Exercise several merge levels of the fallible sort.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]);
        let rows: Vec<Row> = (0..3000)
            .map(|i| Row::new(vec![Value::Int((i * 7 % 13) as i64), Value::Int(i as i64)]))
            .collect();
        let mut s = Sort::new(Box::new(RowsOp::new(schema, rows)), vec![0]);
        let out = collect(&mut s).unwrap();
        assert_eq!(out.len(), 3000);
        for w in out.windows(2) {
            let (a, b) = (
                w[0].value(0).as_i64().unwrap(),
                w[1].value(0).as_i64().unwrap(),
            );
            assert!(a <= b);
            if a == b {
                // Stability: original sequence order preserved within keys.
                assert!(w[0].value(1).as_i64().unwrap() < w[1].value(1).as_i64().unwrap());
            }
        }
    }

    #[test]
    fn project_in_place_rejects_non_monotonic() {
        let mut r = Row::new(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(r.project_in_place(&[1, 0]).unwrap_err().kind(), "exec");
        let mut r = Row::new(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(r.project_in_place(&[0, 0]).unwrap_err().kind(), "exec");
    }

    #[test]
    fn distinct_on_key_keeps_first() {
        let (schema, rows) = int_rows(&[(1, 10), (1, 20), (2, 30), (2, 30)]);
        let mut d = Distinct::on(Box::new(RowsOp::new(schema.clone(), rows.clone())), vec![0]);
        let out = collect(&mut d).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value(1), &Value::Int(10));

        let mut d = Distinct::all(Box::new(RowsOp::new(schema, rows)));
        assert_eq!(collect(&mut d).unwrap().len(), 3);
    }

    #[test]
    fn limit_truncates() {
        let (schema, rows) = int_rows(&[(1, 1), (2, 2), (3, 3)]);
        let mut l = Limit::new(Box::new(RowsOp::new(schema, rows)), 2);
        assert_eq!(l.size_hint(), Some(2));
        assert_eq!(collect(&mut l).unwrap().len(), 2);
        assert!(l.next().unwrap().is_none());
    }

    #[test]
    fn row_and_batch_pulls_can_interleave() {
        let (schema, rows) = int_rows(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        let mut op = RowsOp::new(schema, rows);
        // One row via the compat adapter...
        assert_eq!(op.next().unwrap().unwrap().value(0), &Value::Int(1));
        // ...then the rest as a batch (drained from the carry + source).
        let mut rest = Vec::new();
        while let Some(b) = op.next_batch().unwrap() {
            rest.extend(b.into_rows());
        }
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].value(0), &Value::Int(2));
    }

    #[test]
    fn compare_on_errors_for_incomparable() {
        // Bool vs Int is a type error from Value::sql_cmp.
        let a = Row::new(vec![Value::Bool(true)]);
        let b = Row::new(vec![Value::Int(1)]);
        assert_eq!(compare_on(&a, &b, &[0]).unwrap_err().kind(), "type");
        // NaN vs Float compares (bit order not defined by partial_cmp → exec).
        let a = Row::new(vec![Value::Float(f64::NAN)]);
        let b = Row::new(vec![Value::Float(1.0)]);
        assert_eq!(compare_on(&a, &b, &[0]).unwrap_err().kind(), "exec");
    }
}
