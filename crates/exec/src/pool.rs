//! The worker pool behind the morsel-driven parallel engine (DESIGN.md §4).
//!
//! A [`WorkerPool`] owns a fixed set of OS threads fed by one shared
//! (vendored crossbeam) channel of boxed jobs: every clone of the receiver
//! pops each job exactly once, so submission order is dispatch order and
//! idle workers self-schedule. Dropping the pool closes the job channel,
//! lets workers drain what is already queued, and joins them — operators
//! that own a pool therefore never leak threads, even on early drop
//! (e.g. a `Limit` abandoning its input mid-stream).
//!
//! Workers survive panicking jobs: each job runs under `catch_unwind`, so a
//! poisoned job costs only itself, never pool capacity. That matters for
//! long-lived pools — the query service schedules whole client sessions as
//! jobs, and one session blowing up must not shrink the server for every
//! session after it. (Panic *reporting* stays the submitter's problem, as
//! before: gather sides detect a lost result channel.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads executing submitted jobs.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("csq-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// The configured degree of parallelism — the worker-count knob. Reads
    /// `CSQ_WORKERS` when set (≥ 1), otherwise the host's available
    /// parallelism.
    pub fn default_workers() -> usize {
        if let Some(n) = std::env::var("CSQ_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Submit a job. Jobs run in submission order across the pool (each on
    /// whichever worker frees up first).
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let sent = self
            .tx
            .as_ref()
            .expect("worker pool already shut down")
            .send(Box::new(job));
        assert!(sent.is_ok(), "worker pool has no live workers");
    }

    /// Submit a job that carries a [`CancelToken`](csq_common::CancelToken): if the token has
    /// already tripped by the time a worker dequeues it, the job is
    /// dropped unrun. This is how a queued-but-not-started unit of work
    /// (a shed session, a timed-out pipeline stage) avoids consuming a
    /// worker after its outcome stopped mattering; jobs that did start
    /// observe the same token at their own checkpoints.
    pub fn spawn_cancellable<F>(&self, token: &csq_common::CancelToken, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let token = token.clone();
        self.spawn(move || {
            if token.should_stop() {
                return;
            }
            job()
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends each worker's recv loop after it drains
        // the jobs already queued.
        self.tx.take();
        for h in self.handles.drain(..) {
            // A panicked worker already reported via its job's channel (or
            // is detected by the gather side); don't double-panic here.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins after draining the queue
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.spawn(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancellable_jobs_skip_once_token_trips() {
        use csq_common::CancelToken;
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let token = CancelToken::new();
        let r = ran.clone();
        pool.spawn_cancellable(&token, move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        // Cancel, then queue another job under the same token: the first
        // may or may not have started, but the second must never run.
        // Use a pre-tripped token for determinism.
        let tripped = CancelToken::new();
        tripped.cancel();
        let r = ran.clone();
        pool.spawn_cancellable(&tripped, move || {
            r.fetch_add(100, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        pool.spawn(|| panic!("job panic"));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let d = done.clone();
            pool.spawn(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panicking_jobs_do_not_shrink_capacity() {
        // With a single worker, losing the thread to a panic would deadlock
        // (drop would join a dead worker with jobs still queued) or drop the
        // remaining jobs; catch_unwind keeps the worker alive through all
        // three panics.
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..6 {
            let d = done.clone();
            pool.spawn(move || {
                if i % 2 == 0 {
                    panic!("job {i} panics");
                }
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}
