//! Memory budgeting and spill files for larger-than-memory operators.
//!
//! [`MemoryTracker`] is a shared byte budget: stateful operators
//! ([`HashAggregate`](crate::HashAggregate), [`HashJoin`](crate::HashJoin))
//! register the approximate bytes they hold and consult [`
//! MemoryTracker::over_budget`] at batch boundaries. When the budget is
//! exceeded they *spill*: accumulated state is hash-partitioned by key into
//! temp files (the wire row codec is the on-disk format) and merged back
//! partition-by-partition, so peak memory is bounded by one partition
//! instead of the whole working set. One tracker is shared by every operator
//! of a query — or of a whole service — so 64 concurrent clients degrade
//! into spilling instead of OOMing. See DESIGN.md §11.
//!
//! Spill files live under the system temp directory as
//! `csq-spill-<pid>-<seq>.bin`, a sequence of length-prefixed frames each
//! holding one wire-encoded row chunk. They are deleted on drop; a crash
//! leaves them to the OS temp cleaner.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use csq_common::{codec, CsqError, Result, Row};

/// Number of spill partitions: accumulated state is split by key hash so a
/// merge pass holds ~1/16th of the working set.
pub const SPILL_PARTITIONS: usize = 16;

/// Hard cap on one spill frame's decoded size (a frame is written as one
/// row chunk, far below this; the cap bounds allocation if a file is
/// corrupted or truncated under us).
const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

/// A shared byte budget for stateful operators.
///
/// Accounting is approximate (row wire sizes plus per-entry overhead) and
/// advisory: operators keep running past the budget until their next batch
/// boundary, then spill. `unlimited()` disables spilling entirely.
#[derive(Debug)]
pub struct MemoryTracker {
    budget: usize,
    used: AtomicUsize,
    /// Times any operator crossed the budget and spilled (observability).
    spills: AtomicUsize,
}

impl MemoryTracker {
    /// A tracker with a byte budget.
    pub fn new(budget: usize) -> Arc<MemoryTracker> {
        Arc::new(MemoryTracker {
            budget,
            used: AtomicUsize::new(0),
            spills: AtomicUsize::new(0),
        })
    }

    /// A tracker that never triggers spilling.
    pub fn unlimited() -> Arc<MemoryTracker> {
        MemoryTracker::new(usize::MAX)
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Register `bytes` of operator state.
    pub fn grow(&self, bytes: usize) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Release `bytes` of operator state.
    pub fn shrink(&self, bytes: usize) {
        // Saturating: a release can race another thread's grow/shrink, and
        // under-counting is the safe direction for an advisory budget.
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                Some(u.saturating_sub(bytes))
            })
            .ok();
    }

    /// Bytes currently registered.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// True when registered state exceeds the budget.
    pub fn over_budget(&self) -> bool {
        self.used.load(Ordering::Relaxed) > self.budget
    }

    /// Record one spill event.
    pub fn record_spill(&self) {
        self.spills.fetch_add(1, Ordering::Relaxed);
    }

    /// Spill events since creation.
    pub fn spill_count(&self) -> usize {
        self.spills.load(Ordering::Relaxed)
    }
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("csq-spill-{}-{}.bin", std::process::id(), seq))
}

fn io_err(ctx: &str, e: std::io::Error) -> CsqError {
    CsqError::Exec(format!("spill {ctx}: {e}"))
}

/// One spill partition being written: length-prefixed frames of wire-encoded
/// row chunks. The backing file is deleted when the writer (or the reader it
/// turns into) is dropped.
pub struct SpillFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    rows: usize,
    buf: Vec<u8>,
}

impl SpillFile {
    /// Create an empty spill partition in the temp directory.
    pub fn create() -> Result<SpillFile> {
        let path = spill_path();
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create", e))?;
        Ok(SpillFile {
            path,
            writer: Some(BufWriter::new(file)),
            rows: 0,
            buf: Vec::new(),
        })
    }

    /// Append one frame of rows.
    pub fn write_rows(&mut self, rows: &[Row]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let Some(w) = self.writer.as_mut() else {
            return Err(CsqError::Exec("spill write after seal".into()));
        };
        self.buf.clear();
        codec::encode_rows(rows, &mut self.buf);
        let len = self.buf.len() as u32;
        w.write_all(&len.to_le_bytes())
            .and_then(|()| w.write_all(&self.buf))
            .map_err(|e| io_err("write", e))?;
        self.rows += rows.len();
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Seal the partition and reopen it for reading.
    pub fn into_reader(mut self) -> Result<SpillReader> {
        if let Some(w) = self.writer.take() {
            w.into_inner()
                .map_err(|e| io_err("flush", e.into_error()))?
                .sync_data()
                .ok();
        }
        let file = File::open(&self.path).map_err(|e| io_err("reopen", e))?;
        let reader = SpillReader {
            path: std::mem::take(&mut self.path),
            reader: BufReader::new(file),
            buf: Vec::new(),
        };
        std::mem::forget(self); // the reader now owns file deletion
        Ok(reader)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.writer.take();
        // Best effort: a failure leaves the file to the OS temp cleaner.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Reads a sealed spill partition frame by frame (bounded memory: one frame
/// at a time). Deletes the backing file on drop.
pub struct SpillReader {
    path: PathBuf,
    reader: BufReader<File>,
    buf: Vec<u8>,
}

impl SpillReader {
    /// The next frame of rows, or `None` at end of file.
    pub fn next_frame(&mut self) -> Result<Option<Vec<Row>>> {
        let mut len_bytes = [0u8; 4];
        match self.reader.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(io_err("read frame length", e)),
        }
        let len = u32::from_le_bytes(len_bytes);
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(CsqError::Exec(format!(
                "spill frame length {len} out of bounds (corrupt spill file?)"
            )));
        }
        self.buf.clear();
        self.buf.resize(len as usize, 0);
        self.reader
            .read_exact(&mut self.buf)
            .map_err(|e| io_err("read frame", e))?;
        codec::decode_rows(&self.buf).map(Some)
    }

    /// Drain every remaining frame into one vector (used when a whole
    /// partition is known to fit in memory, e.g. a build-side partition).
    pub fn read_all(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        while let Some(frame) = self.next_frame()? {
            out.extend(frame);
        }
        Ok(out)
    }
}

impl Drop for SpillReader {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Estimated in-memory overhead per tracked hash-table entry beyond the row
/// payload (hash bucket, Vec header, AggState enum). Deliberately rough —
/// the budget is advisory and errs toward spilling early.
pub const ENTRY_OVERHEAD: usize = 48;

/// Partition a set of spill files: write `rows` split by the hash of the
/// row's `key` columns.
pub fn partition_rows(
    parts: &mut [SpillFile],
    key: Option<&[usize]>,
    rows: &[Row],
    scratch: &mut Vec<Vec<Row>>,
) -> Result<()> {
    scratch.iter_mut().for_each(Vec::clear);
    scratch.resize(parts.len(), Vec::new());
    for r in rows {
        let p = r.partition_of(key, parts.len());
        scratch[p].push(r.clone());
    }
    for (part, chunk) in parts.iter_mut().zip(scratch.iter()) {
        part.write_rows(chunk)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::from(format!("v{i}"))])
    }

    #[test]
    fn spill_roundtrip_and_cleanup() {
        let mut f = SpillFile::create().unwrap();
        let rows: Vec<Row> = (0..100).map(row).collect();
        f.write_rows(&rows[..50]).unwrap();
        f.write_rows(&rows[50..]).unwrap();
        assert_eq!(f.rows(), 100);
        let path = f.path.clone();
        assert!(path.exists());
        let mut r = f.into_reader().unwrap();
        let back = r.read_all().unwrap();
        assert_eq!(back, rows);
        drop(r);
        assert!(!path.exists(), "spill file must be deleted on drop");
    }

    #[test]
    fn writer_drop_removes_file() {
        let f = SpillFile::create().unwrap();
        let path = f.path.clone();
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn partitioning_is_key_stable() {
        let mut parts: Vec<SpillFile> = (0..4).map(|_| SpillFile::create().unwrap()).collect();
        let rows: Vec<Row> = (0..64).map(|i| row(i % 8)).collect();
        let mut scratch = Vec::new();
        partition_rows(&mut parts, Some(&[0]), &rows, &mut scratch).unwrap();
        let mut total = 0;
        for p in parts {
            let mut r = p.into_reader().unwrap();
            let rows = r.read_all().unwrap();
            total += rows.len();
            // All copies of one key land in the same partition.
            let mut keys: Vec<i64> = rows
                .iter()
                .map(|r| match r.value(0) {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .collect();
            keys.sort_unstable();
            keys.dedup();
            for k in keys {
                assert_eq!(
                    rows.iter()
                        .filter(|r| matches!(r.value(0), Value::Int(i) if *i == k))
                        .count(),
                    8
                );
            }
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn tracker_budget_arithmetic() {
        let t = MemoryTracker::new(1000);
        assert!(!t.over_budget());
        t.grow(600);
        t.grow(600);
        assert!(t.over_budget());
        t.shrink(600);
        assert!(!t.over_budget());
        t.shrink(10_000);
        assert_eq!(t.used(), 0, "shrink saturates at zero");
    }
}
