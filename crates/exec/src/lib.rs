//! # csq-exec — the vectorized, morsel-parallel batch execution engine
//!
//! Operators follow the Volcano pull model (§2.1 of the paper shows the
//! pseudo-code), but pull a whole [`csq_common::RowBatch`] per call via
//! [`Operator::next_batch`] — dynamic dispatch, predicate setup, and buffer
//! allocation are paid once per ~1024 rows instead of once per row (the
//! local-engine analogue of the paper's batching-beats-per-tuple thesis).
//! [`Operator::next`] remains as a row-at-a-time compatibility adapter, so
//! inherently row-oriented operators (the threaded shipping receivers in
//! `csq-ship`) compose into the same plans. See DESIGN.md §2.
//!
//! Serial operators provided here: scan, filter, project, sort, distinct,
//! hash join, merge join, nested-loop join, limit, and in-memory row
//! sources.
//!
//! On top of them sits the morsel-driven parallel layer (DESIGN.md §4): a
//! [`WorkerPool`] plus [`ParallelPipeline`] run filter/project/UDF stages
//! over source morsels with order-preserving gather, and [`Exchange`]
//! hash-partitions the input so key-based operators (hash join, distinct,
//! and other aggregation-style operators) run one private instance per
//! worker and merge at the sink.

pub mod aggregate;
pub mod exchange;
pub mod join;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod spill;

pub use aggregate::{aggregate_output_schema, aggregate_state_schema, AggSpec, HashAggregate};
pub use exchange::{Exchange, PartitionBuilder};
pub use join::{HashJoin, MergeJoin, NestedLoopJoin};
pub use ops::{
    collect, compare_values, CancelCheck, ColumnarScan, Distinct, Filter, Limit, MemScan, Operator,
    Project, RowsOp, Sort,
};
pub use parallel::{
    BatchStage, ClosureFactory, FilterStageFactory, ParallelOpts, ParallelPipeline,
    ProjectStageFactory, StageFactory,
};
pub use pool::WorkerPool;
pub use spill::MemoryTracker;

/// A boxed operator, the unit of plan composition.
pub type BoxOp = Box<dyn Operator + Send>;
