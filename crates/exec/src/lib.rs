//! # csq-exec — the iterator-model execution engine
//!
//! Classic Volcano-style operators (§2.1 of the paper shows the pseudo-code
//! of this model): each operator pulls rows from its children via
//! [`Operator::next`]. The client-site shipping strategies in `csq-ship`
//! implement the same trait, so they compose into ordinary plans.
//!
//! Operators provided here: scan, filter, project, sort, distinct, hash
//! join, merge join, nested-loop join, limit, and in-memory row sources.

pub mod join;
pub mod ops;

pub use join::{HashJoin, MergeJoin, NestedLoopJoin};
pub use ops::{collect, Distinct, Filter, Limit, MemScan, Operator, Project, RowsOp, Sort};

/// A boxed operator, the unit of plan composition.
pub type BoxOp = Box<dyn Operator + Send>;
