//! Exchange/repartition: partitioned execution of key-based operators
//! (DESIGN.md §4).
//!
//! [`Exchange`] hash-partitions its input on a key (via [`Row::key_hash`])
//! across a [`WorkerPool`]: a feeder thread routes each input row to the
//! worker owning its partition, every worker runs a private operator chain
//! over its partition's stream (fed through an inbox channel), and the
//! gather side merges worker output batches as they complete (partitioned
//! operators are inherently order-destroying; wrap results in a `Sort` when
//! order matters).
//!
//! Because equal keys always land in the same partition, key-based
//! operators run *unsynchronized* per worker and stay exactly as correct as
//! their serial forms: [`Exchange::hash_join`] builds and probes one hash
//! table per worker (build rows are pre-partitioned on the build key),
//! [`Exchange::distinct_on`]/[`Exchange::distinct_all`] dedup disjoint key
//! sets (the feeder preserves input order within a partition, so
//! first-occurrence-wins semantics are preserved row-for-row), and
//! [`Exchange::with_builders`] is the extension point for other
//! aggregation-style operators (anything that groups by a key).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use csq_common::{CsqError, Result, Row, RowBatch, Schema};

use crate::aggregate::{AggSpec, HashAggregate};
use crate::join::HashJoin;
use crate::ops::{batch_operator, collect, Distinct, Operator, RowCarry};
use crate::parallel::ParallelOpts;
use crate::pool::WorkerPool;
use crate::BoxOp;

/// Builds one partition's operator chain over that partition's inbox
/// stream. `FnOnce` so builders can move per-partition state (e.g. a hash
/// join's pre-partitioned build rows) into the chain.
pub type PartitionBuilder = Box<dyn FnOnce(BoxOp) -> Result<BoxOp> + Send>;

/// An operator pulling batches from a partition's inbox channel — the
/// source each per-partition chain runs over.
struct InboxOp {
    schema: Arc<Schema>,
    rx: Receiver<Vec<Row>>,
    carry: RowCarry,
}

impl InboxOp {
    fn produce(&mut self) -> Result<Option<RowBatch>> {
        match self.rx.recv() {
            Ok(rows) => Ok(Some(RowBatch::from_rows(self.schema.clone(), rows))),
            Err(_) => Ok(None), // feeder done (or gone)
        }
    }
}

batch_operator!(InboxOp);

enum ExMsg {
    Batch(RowBatch),
    Err(CsqError),
}

/// The partitioned-execution operator (gather side). See module docs.
pub struct Exchange {
    // Field order is drop order: receiver first (so blocked workers see the
    // disconnect), then feeder join, then the pool join.
    out_rx: Receiver<ExMsg>,
    done_parts: Arc<AtomicUsize>,
    feeder_ok: Arc<AtomicBool>,
    parts: usize,
    failed: bool,
    schema: Arc<Schema>,
    carry: RowCarry,
    feeder: Option<JoinHandle<()>>,
    _pool: WorkerPool,
}

impl Exchange {
    /// Generic partitioned execution: route `input` rows by `route_key`
    /// (whole-row hashing when `None`) to `builders.len()` partitions, run
    /// each builder's chain over its partition, merge the outputs (which
    /// must all have schema `out_schema`).
    pub fn with_builders(
        input: BoxOp,
        route_key: Option<Vec<usize>>,
        out_schema: Arc<Schema>,
        builders: Vec<PartitionBuilder>,
        opts: &ParallelOpts,
    ) -> Exchange {
        // Misuse fails eagerly and clearly, not as an out-of-bounds panic
        // inside the feeder thread once the first row routes nowhere.
        assert!(
            !builders.is_empty(),
            "Exchange needs at least one partition builder"
        );
        let parts = builders.len();
        let morsel_rows = opts.resolved_morsel_rows();
        let input_schema = Arc::new(input.schema().clone());

        let (out_tx, out_rx) = bounded(parts * 2);
        let done_parts = Arc::new(AtomicUsize::new(0));
        let feeder_ok = Arc::new(AtomicBool::new(false));

        let mut inbox_txs: Vec<Sender<Vec<Row>>> = Vec::with_capacity(parts);
        let pool = WorkerPool::new(parts);
        for builder in builders {
            let (tx, rx) = bounded(4);
            inbox_txs.push(tx);
            let schema = input_schema.clone();
            let out_tx = out_tx.clone();
            let done = done_parts.clone();
            pool.spawn(move || {
                let inbox: BoxOp = Box::new(InboxOp {
                    schema,
                    rx,
                    carry: RowCarry::default(),
                });
                let mut op = match builder(inbox) {
                    Ok(op) => op,
                    Err(e) => {
                        let _ = out_tx.send(ExMsg::Err(e));
                        return;
                    }
                };
                loop {
                    match op.next_batch() {
                        Ok(Some(b)) => {
                            if out_tx.send(ExMsg::Batch(b)).is_err() {
                                return; // consumer gone
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = out_tx.send(ExMsg::Err(e));
                            return;
                        }
                    }
                }
                done.fetch_add(1, Ordering::AcqRel);
            });
        }

        let feeder = {
            let out_tx = out_tx.clone();
            let feeder_ok = feeder_ok.clone();
            let token = opts.token.clone();
            let mut input = input;
            std::thread::Builder::new()
                .name("csq-exchange-feeder".into())
                .spawn(move || {
                    let key = route_key.as_deref();
                    let mut bufs: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
                    loop {
                        // The feeder is the exchange's serialized stage, so
                        // one checkpoint per input batch bounds how long a
                        // cancelled repartition keeps routing rows.
                        if let Err(e) = token.check() {
                            let _ = out_tx.send(ExMsg::Err(e));
                            return;
                        }
                        match input.next_batch() {
                            Ok(Some(batch)) => {
                                for row in batch.into_rows() {
                                    let p = row.partition_of(key, parts);
                                    bufs[p].push(row);
                                    if bufs[p].len() >= morsel_rows {
                                        let full = std::mem::take(&mut bufs[p]);
                                        if inbox_txs[p].send(full).is_err() {
                                            return; // partition worker gone
                                        }
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                let _ = out_tx.send(ExMsg::Err(e));
                                return;
                            }
                        }
                    }
                    for (p, buf) in bufs.into_iter().enumerate() {
                        if !buf.is_empty() && inbox_txs[p].send(buf).is_err() {
                            return;
                        }
                    }
                    feeder_ok.store(true, Ordering::Release);
                    // Dropping the inbox senders ends every partition.
                })
                .expect("failed to spawn exchange feeder")
        };
        drop(out_tx); // workers + feeder hold the remaining senders

        Exchange {
            out_rx,
            done_parts,
            feeder_ok,
            parts,
            failed: false,
            schema: out_schema,
            carry: RowCarry::default(),
            feeder: Some(feeder),
            _pool: pool,
        }
    }

    /// Partitioned hash equi-join: the build side is drained and
    /// hash-partitioned on `right_key` up front; probe rows route by
    /// `left_key`, so each worker joins one disjoint key range with a
    /// private hash table. Output is the same multiset of joined rows as
    /// the serial [`HashJoin`], in partition-interleaved order.
    pub fn hash_join(
        left: BoxOp,
        mut right: BoxOp,
        left_key: Vec<usize>,
        right_key: Vec<usize>,
        opts: &ParallelOpts,
    ) -> Result<Exchange> {
        assert_eq!(left_key.len(), right_key.len(), "join key arity mismatch");
        let parts = opts.resolved_workers();
        let schema = Arc::new(left.schema().join(right.schema()));
        let right_schema = right.schema().clone();
        let build_rows = collect(right.as_mut())?;
        let build_parts = RowBatch::from_rows(Arc::new(right_schema.clone()), build_rows)
            .partition_by_hash(Some(&right_key), parts);
        let builders: Vec<PartitionBuilder> = build_parts
            .into_iter()
            .map(|rows| {
                let rs = right_schema.clone();
                let lk = left_key.clone();
                let rk = right_key.clone();
                Box::new(move |inbox: BoxOp| -> Result<BoxOp> {
                    Ok(Box::new(HashJoin::new(
                        inbox,
                        Box::new(crate::ops::RowsOp::new(rs, rows)),
                        lk,
                        rk,
                    )))
                }) as PartitionBuilder
            })
            .collect();
        Ok(Exchange::with_builders(
            left,
            Some(left_key),
            schema,
            builders,
            opts,
        ))
    }

    /// Partitioned grouped aggregation: rows route by the group key, each
    /// worker runs a private single-phase [`HashAggregate`] over a disjoint
    /// key range, and the gather side merges — the same multiset of groups
    /// (and the same per-group values, accumulated in input order) as the
    /// serial operator. A global aggregate (empty `key`) has exactly one
    /// group, so it runs on a single partition regardless of `opts.workers`
    /// (otherwise every idle worker would emit its own identity group).
    pub fn hash_aggregate(
        input: BoxOp,
        key: Vec<usize>,
        aggs: Vec<AggSpec>,
        opts: &ParallelOpts,
    ) -> Exchange {
        let parts = if key.is_empty() {
            1
        } else {
            opts.resolved_workers()
        };
        let out_schema = Arc::new(crate::aggregate::aggregate_output_schema(
            input.schema(),
            &key,
            &aggs,
        ));
        let builders: Vec<PartitionBuilder> = (0..parts)
            .map(|_| {
                let key = key.clone();
                let aggs = aggs.clone();
                Box::new(move |inbox: BoxOp| -> Result<BoxOp> {
                    Ok(Box::new(HashAggregate::new(inbox, key, aggs)))
                }) as PartitionBuilder
            })
            .collect();
        Exchange::with_builders(input, Some(key), out_schema, builders, opts)
    }

    /// Partitioned duplicate elimination on `key` columns. Equal keys share
    /// a partition and arrive in input order, so exactly the serial
    /// first-occurrence rows survive (in partition-interleaved order).
    pub fn distinct_on(input: BoxOp, key: Vec<usize>, opts: &ParallelOpts) -> Exchange {
        let parts = opts.resolved_workers();
        let schema = Arc::new(input.schema().clone());
        let builders: Vec<PartitionBuilder> = (0..parts)
            .map(|_| {
                let key = key.clone();
                Box::new(move |inbox: BoxOp| -> Result<BoxOp> {
                    Ok(Box::new(Distinct::on(inbox, key)))
                }) as PartitionBuilder
            })
            .collect();
        Exchange::with_builders(input, Some(key), schema, builders, opts)
    }

    /// Partitioned duplicate elimination on whole rows.
    pub fn distinct_all(input: BoxOp, opts: &ParallelOpts) -> Exchange {
        let parts = opts.resolved_workers();
        let schema = Arc::new(input.schema().clone());
        let builders: Vec<PartitionBuilder> = (0..parts)
            .map(|_| {
                Box::new(|inbox: BoxOp| -> Result<BoxOp> { Ok(Box::new(Distinct::all(inbox))) })
                    as PartitionBuilder
            })
            .collect();
        Exchange::with_builders(input, None, schema, builders, opts)
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        if self.failed {
            return Ok(None);
        }
        loop {
            match self.out_rx.recv() {
                Ok(ExMsg::Batch(b)) => {
                    if !b.is_empty() {
                        return Ok(Some(b));
                    }
                }
                Ok(ExMsg::Err(e)) => {
                    self.failed = true;
                    return Err(e);
                }
                Err(_) => {
                    // Every sender gone: verify the run was complete.
                    let clean = self.done_parts.load(Ordering::Acquire) == self.parts
                        && self.feeder_ok.load(Ordering::Acquire);
                    self.join_feeder();
                    if !clean {
                        self.failed = true;
                        return Err(CsqError::Exec(
                            "exchange worker or feeder terminated without completing".into(),
                        ));
                    }
                    return Ok(None);
                }
            }
        }
    }
}

// Teardown on early drop needs no custom Drop: fields drop in declaration
// order, so `out_rx` disconnects first (each worker's next output send
// fails and it exits, which disconnects its inbox and unwinds the feeder),
// then the pool joins the workers. A feeder still draining a slow input
// detaches like the threaded shipping senders do and exits on its next
// inbox send.
batch_operator!(Exchange);

impl Exchange {
    /// Join the feeder thread explicitly (also happens at clean completion).
    fn join_feeder(&mut self) {
        if let Some(h) = self.feeder.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::RowsOp;
    use csq_common::{DataType, Field, Value};

    fn two_int_schema(a: &str, b: &str) -> Schema {
        Schema::new(vec![
            Field::new(a, DataType::Int),
            Field::new(b, DataType::Int),
        ])
    }

    fn sorted_display(mut rows: Vec<Row>) -> Vec<String> {
        rows.sort_by_key(|r| format!("{r}"));
        rows.into_iter().map(|r| format!("{r}")).collect()
    }

    fn opts(workers: usize) -> ParallelOpts {
        ParallelOpts {
            workers,
            morsel_rows: 8,
            ordered: false,
            ..ParallelOpts::default()
        }
    }

    #[test]
    fn partitioned_hash_join_matches_serial_as_multiset() {
        let probe: Vec<Row> = (0..300)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 40)]))
            .collect();
        let build: Vec<Row> = (0..40)
            .map(|k| Row::new(vec![Value::Int(k), Value::Int(k * 100)]))
            .collect();
        let serial = {
            let l = Box::new(RowsOp::new(two_int_schema("id", "k"), probe.clone()));
            let r = Box::new(RowsOp::new(two_int_schema("k", "v"), build.clone()));
            let mut j = HashJoin::new(l, r, vec![1], vec![0]);
            collect(&mut j).unwrap()
        };
        for workers in [1, 2, 4] {
            let l = Box::new(RowsOp::new(two_int_schema("id", "k"), probe.clone()));
            let r = Box::new(RowsOp::new(two_int_schema("k", "v"), build.clone()));
            let mut j = Exchange::hash_join(l, r, vec![1], vec![0], &opts(workers)).unwrap();
            assert_eq!(j.schema().len(), 4);
            let par = collect(&mut j).unwrap();
            assert_eq!(
                sorted_display(par),
                sorted_display(serial.clone()),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn partitioned_join_skips_null_probe_keys_like_serial() {
        let probe = vec![
            Row::new(vec![Value::Int(0), Value::Int(1)]),
            Row::new(vec![Value::Int(1), Value::Null]),
            Row::new(vec![Value::Int(2), Value::Int(1)]),
        ];
        let build = vec![Row::new(vec![Value::Int(1), Value::Int(7)])];
        let l = Box::new(RowsOp::new(two_int_schema("id", "k"), probe));
        let r = Box::new(RowsOp::new(two_int_schema("k", "v"), build));
        let mut j = Exchange::hash_join(l, r, vec![1], vec![0], &opts(3)).unwrap();
        let out = collect(&mut j).unwrap();
        assert_eq!(out.len(), 2, "NULL keys never match");
    }

    #[test]
    fn partitioned_distinct_keeps_serial_survivors() {
        let rows: Vec<Row> = (0..400)
            .map(|i| Row::new(vec![Value::Int(i % 23), Value::Int(i)]))
            .collect();
        let serial = {
            let scan = Box::new(RowsOp::new(two_int_schema("k", "seq"), rows.clone()));
            let mut d = Distinct::on(scan, vec![0]);
            collect(&mut d).unwrap()
        };
        for workers in [1, 2, 4, 8] {
            let scan = Box::new(RowsOp::new(two_int_schema("k", "seq"), rows.clone()));
            let mut d = Exchange::distinct_on(scan, vec![0], &opts(workers));
            let par = collect(&mut d).unwrap();
            // Not just the same keys: the same *rows* (first occurrence per
            // key, identified by the seq column) survive.
            assert_eq!(
                sorted_display(par),
                sorted_display(serial.clone()),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn partitioned_distinct_all_deduplicates_whole_rows() {
        let rows: Vec<Row> = (0..200)
            .map(|i| Row::new(vec![Value::Int(i % 10), Value::Int((i % 10) * 2)]))
            .collect();
        let scan = Box::new(RowsOp::new(two_int_schema("a", "b"), rows));
        let mut d = Exchange::distinct_all(scan, &opts(4));
        assert_eq!(collect(&mut d).unwrap().len(), 10);
    }

    #[test]
    fn input_error_poisons_the_exchange() {
        // A Sort over an incomparable column errors while feeding.
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Int(1)]),
            Row::new(vec![Value::from("x"), Value::Int(2)]),
        ];
        let scan = Box::new(RowsOp::new(two_int_schema("k", "v"), rows));
        let bad = Box::new(crate::Sort::new(scan, vec![0]));
        let mut d = Exchange::distinct_on(bad, vec![0], &opts(2));
        assert!(collect(&mut d).is_err());
        assert!(d.next_batch().unwrap().is_none(), "failed, not wedged");
        d.join_feeder();
    }

    #[test]
    fn tripped_token_poisons_the_exchange_with_typed_error() {
        use csq_common::CancelToken;
        let rows: Vec<Row> = (0..400)
            .map(|i| Row::new(vec![Value::Int(i % 23), Value::Int(i)]))
            .collect();
        let token = CancelToken::new();
        token.cancel();
        let scan = Box::new(RowsOp::new(two_int_schema("k", "seq"), rows));
        let o = opts(2).with_token(token);
        let mut d = Exchange::distinct_on(scan, vec![0], &o);
        let err = collect(&mut d).unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(d.next_batch().unwrap().is_none(), "failed, not wedged");
        d.join_feeder();
    }

    #[test]
    fn early_drop_shuts_exchange_down() {
        let rows: Vec<Row> = (0..20_000)
            .map(|i| Row::new(vec![Value::Int(i % 97), Value::Int(i)]))
            .collect();
        let scan = Box::new(RowsOp::new(two_int_schema("k", "seq"), rows));
        let mut d = Exchange::distinct_on(scan, vec![0], &opts(4));
        let _ = d.next_batch().unwrap();
        drop(d); // must not hang
    }
}
