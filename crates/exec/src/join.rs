//! Join operators: hash, merge, and nested-loop.
//!
//! The paper models UDF application as an equi-join with a virtual,
//! index-only UDF table (§2.2); the receiver side of a semi-join performs a
//! real join between the buffered records and the returned results — a merge
//! join when the sender sorts on the argument columns (§2.3.1), a hash join
//! otherwise. These operators are also what the optimizer uses for ordinary
//! table joins.
//!
//! All three are batch-native: inputs are pulled a [`RowBatch`] at a time
//! and outputs are emitted in batches (a batch may exceed the default
//! capacity when one input row fans out to many matches).

use std::collections::HashMap;
use std::sync::Arc;

use csq_common::{Result, Row, RowBatch, Schema, DEFAULT_BATCH_SIZE};
use csq_expr::PhysExpr;

use crate::ops::{batch_operator, collect, compare_on_keys, Operator, RowCarry};
use crate::spill::{
    partition_rows, MemoryTracker, SpillFile, SpillReader, ENTRY_OVERHEAD, SPILL_PARTITIONS,
};

/// Pulls batches from a child operator and hands rows out one at a time —
/// the input-side adapter for operators whose algorithm is inherently
/// row-sequential (merge join's group detection, nested-loop's outer loop).
struct BatchCursor {
    op: Box<dyn Operator + Send>,
    buf: std::vec::IntoIter<Row>,
}

impl BatchCursor {
    fn new(op: Box<dyn Operator + Send>) -> BatchCursor {
        BatchCursor {
            op,
            buf: Vec::new().into_iter(),
        }
    }

    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(r) = self.buf.next() {
                return Ok(Some(r));
            }
            match self.op.next_batch()? {
                Some(b) => self.buf = b.into_rows().into_iter(),
                None => return Ok(None),
            }
        }
    }
}

/// Hash equi-join: builds the right input, probes with the left, one batch
/// of probe rows at a time. Output schema = left ⊕ right.
///
/// With a [`MemoryTracker`] attached (via [`with_memory`](HashJoin::with_memory))
/// this becomes a Grace hash join under pressure: if the build side exceeds
/// the budget, both sides are hash-partitioned by join key into temp files
/// and each partition pair is joined independently — the build table of one
/// partition in memory, its probe rows streamed frame by frame. Matching
/// keys land in matching partitions, so the result set is identical to the
/// in-memory join up to row order.
pub struct HashJoin {
    left: Box<dyn Operator + Send>,
    right: Option<Box<dyn Operator + Send>>,
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    schema: Arc<Schema>,
    table: Option<HashMap<Row, Vec<Row>>>,
    carry: RowCarry,
    /// Byte budget shared with other operators; `None` = never spill.
    memory: Option<Arc<MemoryTracker>>,
    /// Approximate bytes registered for the in-memory build table.
    tracked: usize,
    grace: Option<GraceJoin>,
    spill_events: usize,
}

/// Partition-wise join state after a build-side spill.
struct GraceJoin {
    /// Remaining (build, probe) partition pairs.
    parts: std::vec::IntoIter<(SpillFile, SpillFile)>,
    /// The partition being joined: its build table and probe reader.
    current: Option<(HashMap<Row, Vec<Row>>, SpillReader)>,
}

impl HashJoin {
    /// Join `left` and `right` on equality of the given key columns.
    pub fn new(
        left: Box<dyn Operator + Send>,
        right: Box<dyn Operator + Send>,
        left_key: Vec<usize>,
        right_key: Vec<usize>,
    ) -> HashJoin {
        assert_eq!(left_key.len(), right_key.len(), "join key arity mismatch");
        let schema = Arc::new(left.schema().join(right.schema()));
        HashJoin {
            left,
            right: Some(right),
            left_key,
            right_key,
            schema,
            table: None,
            carry: RowCarry::default(),
            memory: None,
            tracked: 0,
            grace: None,
            spill_events: 0,
        }
    }

    /// Attach a shared memory budget: a build side that exceeds it degrades
    /// into a partition-wise Grace join (see the struct docs).
    pub fn with_memory(mut self, tracker: Arc<MemoryTracker>) -> HashJoin {
        self.memory = Some(tracker);
        self
    }

    /// Times the build side spilled to disk (0 or 1 for a hash join).
    pub fn spill_events(&self) -> usize {
        self.spill_events
    }

    fn release_tracked(&mut self) {
        if let Some(t) = &self.memory {
            t.shrink(self.tracked);
        }
        self.tracked = 0;
    }

    /// Build the right side: into an in-memory table, or — when the budget
    /// is crossed — into hash partitions on disk, in which case the entire
    /// probe side is partitioned too and `self.grace` takes over.
    fn build(&mut self) -> Result<()> {
        let mut right = self.right.take().expect("hash join built twice");
        let mut table: HashMap<Row, Vec<Row>> = HashMap::new();
        let mut spill: Option<Vec<SpillFile>> = None;
        let mut scratch: Vec<Vec<Row>> = Vec::new();
        while let Some(batch) = right.next_batch()? {
            if let Some(parts) = spill.as_mut() {
                partition_rows(parts, Some(&self.right_key), batch.rows(), &mut scratch)?;
                continue;
            }
            let mut added = 0usize;
            for r in batch.rows() {
                added += r.wire_size() + ENTRY_OVERHEAD;
                table
                    .entry(r.project(&self.right_key))
                    .or_default()
                    .push(r.clone());
            }
            if let Some(t) = self.memory.clone() {
                self.tracked += added;
                t.grow(added);
                if t.over_budget() && !table.is_empty() {
                    // Flush the partial build table to partitions and keep
                    // partitioning the rest of the input straight to disk.
                    let mut parts: Vec<SpillFile> = (0..SPILL_PARTITIONS)
                        .map(|_| SpillFile::create())
                        .collect::<Result<_>>()?;
                    let rows: Vec<Row> = table.drain().flat_map(|(_, v)| v).collect();
                    partition_rows(&mut parts, Some(&self.right_key), &rows, &mut scratch)?;
                    drop(rows);
                    self.release_tracked();
                    t.record_spill();
                    self.spill_events += 1;
                    spill = Some(parts);
                }
            }
        }
        if let Some(build_parts) = spill {
            let mut probe_parts: Vec<SpillFile> = (0..SPILL_PARTITIONS)
                .map(|_| SpillFile::create())
                .collect::<Result<_>>()?;
            while let Some(batch) = self.left.next_batch()? {
                partition_rows(
                    &mut probe_parts,
                    Some(&self.left_key),
                    batch.rows(),
                    &mut scratch,
                )?;
            }
            let pairs: Vec<(SpillFile, SpillFile)> =
                build_parts.into_iter().zip(probe_parts).collect();
            self.grace = Some(GraceJoin {
                parts: pairs.into_iter(),
                current: None,
            });
        } else {
            self.table = Some(table);
        }
        Ok(())
    }

    /// Join one partition pair at a time, streaming probe frames.
    fn grace_step(&mut self) -> Result<Option<RowBatch>> {
        let HashJoin {
            grace,
            left_key,
            right_key,
            schema,
            ..
        } = self;
        let g = grace.as_mut().expect("grace state missing");
        loop {
            if let Some((table, probe)) = g.current.as_mut() {
                while let Some(frame) = probe.next_frame()? {
                    let mut out = Vec::new();
                    for l in &frame {
                        let key = l.project(left_key);
                        // SQL semantics: NULL keys never match.
                        if key.values().iter().any(|v| v.is_null()) {
                            continue;
                        }
                        if let Some(matches) = table.get(&key) {
                            out.reserve(matches.len());
                            for r in matches {
                                out.push(l.join(r));
                            }
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(RowBatch::from_rows(schema.clone(), out)));
                    }
                }
                g.current = None;
            }
            let Some((build, probe)) = g.parts.next() else {
                return Ok(None);
            };
            let rows = build.into_reader()?.read_all()?;
            let mut table: HashMap<Row, Vec<Row>> = HashMap::with_capacity(rows.len());
            for r in rows {
                table.entry(r.project(right_key)).or_default().push(r);
            }
            g.current = Some((table, probe.into_reader()?));
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        if self.table.is_none() && self.grace.is_none() {
            self.build()?;
        }
        if self.grace.is_some() {
            return self.grace_step();
        }
        let table = self.table.as_ref().unwrap();
        loop {
            let Some(batch) = self.left.next_batch()? else {
                self.release_tracked();
                return Ok(None);
            };
            let mut out = Vec::new();
            for l in batch.rows() {
                let key = l.project(&self.left_key);
                // SQL semantics: NULL keys never match.
                if key.values().iter().any(|v| v.is_null()) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    out.reserve(matches.len());
                    for r in matches {
                        out.push(l.join(r));
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(RowBatch::from_rows(self.schema.clone(), out)));
            }
        }
    }
}

impl Drop for HashJoin {
    fn drop(&mut self) {
        // Release build-table bytes if the probe never ran to completion
        // (e.g. a LIMIT above cut the pipeline short).
        self.release_tracked();
    }
}

batch_operator!(HashJoin);

/// Accumulate up to [`DEFAULT_BATCH_SIZE`] rows from a row-producing step
/// into one batch — the output-side adapter shared by the row-sequential
/// join algorithms.
fn accumulate_batch(
    schema: Arc<Schema>,
    mut step: impl FnMut() -> Result<Option<Row>>,
) -> Result<Option<RowBatch>> {
    let mut out = Vec::new();
    while out.len() < DEFAULT_BATCH_SIZE {
        match step()? {
            Some(r) => out.push(r),
            None => break,
        }
    }
    if out.is_empty() {
        return Ok(None);
    }
    Ok(Some(RowBatch::from_rows(schema, out)))
}

/// Merge join over inputs already sorted ascending on their key columns.
/// Produces the cross product of each matching key group.
pub struct MergeJoin {
    left: BatchCursor,
    right: BatchCursor,
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    schema: Arc<Schema>,
    l_row: Option<Row>,
    r_group: Vec<Row>,
    r_next: Option<Row>,
    started: bool,
    pending: Vec<Row>,
    carry: RowCarry,
}

impl MergeJoin {
    /// Join sorted inputs on equality of the key columns.
    pub fn new(
        left: Box<dyn Operator + Send>,
        right: Box<dyn Operator + Send>,
        left_key: Vec<usize>,
        right_key: Vec<usize>,
    ) -> MergeJoin {
        assert_eq!(left_key.len(), right_key.len());
        let schema = Arc::new(left.schema().join(right.schema()));
        MergeJoin {
            left: BatchCursor::new(left),
            right: BatchCursor::new(right),
            left_key,
            right_key,
            schema,
            l_row: None,
            r_group: Vec::new(),
            r_next: None,
            started: false,
            pending: Vec::new(),
            carry: RowCarry::default(),
        }
    }

    /// Load the next group of right rows sharing one key; `false` when the
    /// right side is exhausted.
    fn advance_right_group(&mut self) -> Result<bool> {
        self.r_group.clear();
        let first = match self.r_next.take() {
            Some(r) => r,
            None => match self.right.next_row()? {
                Some(r) => r,
                None => return Ok(false),
            },
        };
        self.r_group.push(first);
        while let Some(r) = self.right.next_row()? {
            // Group membership by in-place key equality (Null groups with
            // Null, like the former projected-key comparison).
            let same = {
                let head = &self.r_group[0];
                self.right_key.iter().all(|&k| r.value(k) == head.value(k))
            };
            if same {
                self.r_group.push(r);
            } else {
                self.r_next = Some(r);
                break;
            }
        }
        Ok(true)
    }

    fn row_step(&mut self) -> Result<Option<Row>> {
        use std::cmp::Ordering;
        if !self.started {
            self.started = true;
            self.l_row = self.left.next_row()?;
            self.advance_right_group()?;
        }
        loop {
            if let Some(m) = self.pending.pop() {
                return Ok(Some(m));
            }
            let Some(l) = self.l_row.as_ref() else {
                return Ok(None);
            };
            if self.r_group.is_empty() {
                return Ok(None);
            }
            // Keys are compared in place — no per-row key projection.
            let l_null = self.left_key.iter().any(|&k| l.value(k).is_null());
            let mixed = compare_on_keys(l, &self.left_key, &self.r_group[0], &self.right_key)?;
            match mixed {
                Ordering::Less => {
                    self.l_row = self.left.next_row()?;
                }
                Ordering::Greater => {
                    if !self.advance_right_group()? {
                        return Ok(None);
                    }
                }
                Ordering::Equal if l_null => {
                    self.l_row = self.left.next_row()?;
                }
                Ordering::Equal => {
                    self.pending = self.r_group.iter().rev().map(|r| l.join(r)).collect();
                    self.l_row = self.left.next_row()?;
                }
            }
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        let schema = self.schema.clone();
        accumulate_batch(schema, || self.row_step())
    }
}

batch_operator!(MergeJoin);

/// Nested-loop join with an arbitrary bound predicate over the concatenated
/// row. The right input is materialized.
pub struct NestedLoopJoin {
    left: BatchCursor,
    right: Option<Box<dyn Operator + Send>>,
    predicate: Option<PhysExpr>,
    schema: Arc<Schema>,
    right_rows: Vec<Row>,
    current_left: Option<Row>,
    right_pos: usize,
    started: bool,
    carry: RowCarry,
}

impl NestedLoopJoin {
    /// Join with `predicate` evaluated over left ⊕ right rows
    /// (`None` = cross product).
    pub fn new(
        left: Box<dyn Operator + Send>,
        right: Box<dyn Operator + Send>,
        predicate: Option<PhysExpr>,
    ) -> NestedLoopJoin {
        let schema = Arc::new(left.schema().join(right.schema()));
        NestedLoopJoin {
            left: BatchCursor::new(left),
            right: Some(right),
            predicate,
            schema,
            right_rows: Vec::new(),
            current_left: None,
            right_pos: 0,
            started: false,
            carry: RowCarry::default(),
        }
    }

    fn row_step(&mut self) -> Result<Option<Row>> {
        if !self.started {
            self.started = true;
            let mut right = self.right.take().expect("nested-loop right missing");
            self.right_rows = collect(right.as_mut())?;
            self.current_left = self.left.next_row()?;
        }
        loop {
            let Some(l) = &self.current_left else {
                return Ok(None);
            };
            while self.right_pos < self.right_rows.len() {
                let joined = l.join(&self.right_rows[self.right_pos]);
                self.right_pos += 1;
                let ok = match &self.predicate {
                    Some(p) => p.eval_predicate(&joined)?,
                    None => true,
                };
                if ok {
                    return Ok(Some(joined));
                }
            }
            self.right_pos = 0;
            self.current_left = self.left.next_row()?;
        }
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        let schema = self.schema.clone();
        accumulate_batch(schema, || self.row_step())
    }
}

batch_operator!(NestedLoopJoin);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{RowsOp, Sort};
    use csq_common::{DataType, Field, Value};
    use csq_expr::{bind, Expr};

    fn side(name_prefix: &str, vals: &[(i64, &str)]) -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Field::new(format!("{name_prefix}_k"), DataType::Int),
            Field::new(format!("{name_prefix}_v"), DataType::Str),
        ]);
        let rows = vals
            .iter()
            .map(|&(k, v)| Row::new(vec![Value::Int(k), Value::from(v)]))
            .collect();
        (schema, rows)
    }

    #[test]
    fn hash_join_matches_keys() {
        let (ls, lr) = side("l", &[(1, "a"), (2, "b"), (3, "c")]);
        let (rs, rr) = side("r", &[(2, "x"), (3, "y"), (3, "z"), (4, "w")]);
        let mut j = HashJoin::new(
            Box::new(RowsOp::new(ls, lr)),
            Box::new(RowsOp::new(rs, rr)),
            vec![0],
            vec![0],
        );
        let out = collect(&mut j).unwrap();
        assert_eq!(out.len(), 3); // 2 joins once, 3 joins twice
        assert_eq!(j.schema().len(), 4);
        for r in &out {
            assert_eq!(r.value(0), r.value(2));
        }
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let l = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(1)])];
        let r = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(1)])];
        let mut j = HashJoin::new(
            Box::new(RowsOp::new(schema.clone(), l)),
            Box::new(RowsOp::new(schema, r)),
            vec![0],
            vec![0],
        );
        // Note: the build side stores NULL keys but probe-side NULLs skip.
        // A NULL probe never equals a NULL build key under SQL, and our Row
        // equality would match them, so the probe-side skip is required.
        let out = collect(&mut j).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn merge_join_equals_hash_join() {
        let (ls, lr) = side("l", &[(5, "a"), (1, "b"), (3, "c"), (3, "d")]);
        let (rs, rr) = side("r", &[(3, "x"), (5, "y"), (3, "z"), (2, "w")]);

        let mut hash = HashJoin::new(
            Box::new(RowsOp::new(ls.clone(), lr.clone())),
            Box::new(RowsOp::new(rs.clone(), rr.clone())),
            vec![0],
            vec![0],
        );
        let mut expected = collect(&mut hash).unwrap();

        let sorted_l = Sort::new(Box::new(RowsOp::new(ls, lr)), vec![0]);
        let sorted_r = Sort::new(Box::new(RowsOp::new(rs, rr)), vec![0]);
        let mut merge = MergeJoin::new(Box::new(sorted_l), Box::new(sorted_r), vec![0], vec![0]);
        let mut got = collect(&mut merge).unwrap();

        expected.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        got.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        assert_eq!(got, expected);
    }

    #[test]
    fn merge_join_empty_sides() {
        let (ls, lr) = side("l", &[(1, "a")]);
        let (rs, _) = side("r", &[]);
        let mut j = MergeJoin::new(
            Box::new(RowsOp::new(ls.clone(), lr.clone())),
            Box::new(RowsOp::new(rs.clone(), vec![])),
            vec![0],
            vec![0],
        );
        assert!(collect(&mut j).unwrap().is_empty());
        let mut j = MergeJoin::new(
            Box::new(RowsOp::new(ls, vec![])),
            Box::new(RowsOp::new(rs, vec![])),
            vec![0],
            vec![0],
        );
        assert!(collect(&mut j).unwrap().is_empty());
    }

    #[test]
    fn nested_loop_cross_and_theta() {
        let (ls, lr) = side("l", &[(1, "a"), (2, "b")]);
        let (rs, rr) = side("r", &[(1, "x"), (3, "y")]);
        let mut cross = NestedLoopJoin::new(
            Box::new(RowsOp::new(ls.clone(), lr.clone())),
            Box::new(RowsOp::new(rs.clone(), rr.clone())),
            None,
        );
        assert_eq!(collect(&mut cross).unwrap().len(), 4);
    }

    #[test]
    fn nested_loop_theta_exact() {
        let (ls, lr) = side("l", &[(1, "a"), (2, "b")]);
        let (rs, rr) = side("r", &[(1, "x"), (3, "y")]);
        let joined_schema = ls.join(&rs);
        let pred = bind(
            &Expr::binary(
                Expr::col_bare("l_k"),
                csq_expr::BinaryOp::Lt,
                Expr::col_bare("r_k"),
            ),
            &joined_schema,
        )
        .unwrap();
        let mut theta = NestedLoopJoin::new(
            Box::new(RowsOp::new(ls, lr)),
            Box::new(RowsOp::new(rs, rr)),
            Some(pred),
        );
        let out = collect(&mut theta).unwrap();
        // (1,1):no (1,3):yes (2,1):no (2,3):yes
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn grace_join_matches_in_memory() {
        // Build side far over the budget → partition-wise join; result must
        // equal the in-memory join up to order, including NULL-key semantics.
        let (ls, _) = side("l", &[]);
        let (rs, _) = side("r", &[]);
        let null_or = |i: i64| {
            if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int(i % 53)
            }
        };
        let lrows: Vec<Row> = (0..1500)
            .map(|i| Row::new(vec![null_or(i), Value::from(format!("l{i}"))]))
            .collect();
        let rrows: Vec<Row> = (0..2000)
            .map(|i| Row::new(vec![null_or(i + 1), Value::from(format!("r{i}"))]))
            .collect();
        let mut in_mem = HashJoin::new(
            Box::new(RowsOp::new(ls.clone(), lrows.clone())),
            Box::new(RowsOp::new(rs.clone(), rrows.clone())),
            vec![0],
            vec![0],
        );
        let mut expected = collect(&mut in_mem).unwrap();

        let tracker = MemoryTracker::new(4096);
        let mut grace = HashJoin::new(
            Box::new(RowsOp::new(ls, lrows)),
            Box::new(RowsOp::new(rs, rrows)),
            vec![0],
            vec![0],
        )
        .with_memory(tracker.clone());
        let mut got = collect(&mut grace).unwrap();
        assert_eq!(grace.spill_events(), 1, "budget must force the spill");
        assert_eq!(tracker.used(), 0, "build bytes released on spill");

        expected.sort_by_key(|r| format!("{r}"));
        got.sort_by_key(|r| format!("{r}"));
        assert_eq!(got, expected);
    }

    #[test]
    fn generous_budget_stays_in_memory() {
        let (ls, lr) = side("l", &[(1, "a"), (2, "b")]);
        let (rs, rr) = side("r", &[(1, "x"), (2, "y")]);
        let tracker = MemoryTracker::new(1 << 20);
        let mut j = HashJoin::new(
            Box::new(RowsOp::new(ls, lr)),
            Box::new(RowsOp::new(rs, rr)),
            vec![0],
            vec![0],
        )
        .with_memory(tracker.clone());
        assert_eq!(collect(&mut j).unwrap().len(), 2);
        assert_eq!(j.spill_events(), 0);
        assert_eq!(tracker.used(), 0, "released when the probe side drains");
    }

    #[test]
    fn joins_emit_batches() {
        // Fan-out beyond one batch still arrives completely.
        let n = 3000usize;
        let (ls, _) = side("l", &[]);
        let (rs, _) = side("r", &[]);
        let lrows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64 % 7), Value::from("l")]))
            .collect();
        let rrows: Vec<Row> = (0..7)
            .map(|i| Row::new(vec![Value::Int(i as i64), Value::from("r")]))
            .collect();
        let mut j = HashJoin::new(
            Box::new(RowsOp::new(ls, lrows)),
            Box::new(RowsOp::new(rs, rrows)),
            vec![0],
            vec![0],
        );
        let mut total = 0;
        while let Some(b) = j.next_batch().unwrap() {
            assert!(!b.is_empty());
            total += b.len();
        }
        assert_eq!(total, n);
    }
}
