//! Vectorized grouped aggregation (DESIGN.md §7).
//!
//! [`HashAggregate`] is the batch-native GROUP BY operator: it drains its
//! input batch-wise into an insertion-ordered hash table (sized from the
//! input's [`crate::Operator::size_hint`]), accumulating one
//! `AggState` vector per group, then re-emits finished groups
//! in first-occurrence order.
//!
//! Aggregation is *decomposable*: every function's state splits into a
//! partial phase (`update` over raw rows, shippable as plain value columns)
//! and a final phase (`merge` over partial-state rows), so partial
//! aggregation can run at either site of the client-server split — the
//! server reduces rows to groups before they cross the wire, and the other
//! site finishes. The three operator modes mirror that:
//!
//! * [`HashAggregate::new`] — single-phase: raw rows in, finished values out.
//! * [`HashAggregate::partial`] — raw rows in, partial-state rows out
//!   (group key columns followed by each call's state columns; AVG carries
//!   two: running sum and count).
//! * [`HashAggregate::finalize`] — partial-state rows in (from any number
//!   of partial sources, e.g. one per worker or one per site), finished
//!   values out.
//!
//! MIN/MAX accumulate through [`crate::ops::compare_values`] — the same
//! key-validation primitive `Sort` uses — so a NaN-bearing group is an exec
//! *error* here, exactly like `ORDER BY` over a NaN-bearing column, never a
//! comparator panic.
//!
//! Parallel grouped aggregation runs through
//! [`Exchange::hash_aggregate`](crate::Exchange::hash_aggregate): rows
//! hash-partition on the group key, each worker aggregates a disjoint key
//! range with a private single-phase instance, and the gather side merges —
//! the same multiset of groups as the serial operator.

use std::collections::HashMap;
use std::sync::Arc;

use csq_common::{CsqError, DataType, Field, Result, Row, RowBatch, Schema, Value};
use csq_expr::{physical::eval_binary, AggFunc, BinaryOp, PhysExpr};

use crate::ops::{batch_operator, compare_values, RowCarry};
use crate::spill::{MemoryTracker, SpillFile, ENTRY_OVERHEAD, SPILL_PARTITIONS};
use crate::{BoxOp, Operator};

/// One aggregate call evaluated by [`HashAggregate`]: a function over an
/// optional bound argument expression (`None` = `COUNT(*)`), plus the
/// output column name.
#[derive(Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Bound argument expression (`None` only for `COUNT(*)`).
    pub arg: Option<PhysExpr>,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(func: AggFunc, arg: Option<PhysExpr>, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func,
            arg,
            name: name.into(),
        }
    }

    /// The finished-value output field, with the result type inferred from
    /// the argument's type under `input` when possible.
    pub fn result_field(&self, input: &Schema) -> Field {
        let at = self.arg.as_ref().and_then(|a| a.infer_type(input).ok());
        Field::new(self.name.clone(), self.func.result_type(at))
    }

    /// The partial-state fields this call ships between the partial and
    /// final phases (AVG decomposes into running sum + count).
    pub fn state_fields(&self, input: &Schema) -> Vec<Field> {
        match self.func {
            AggFunc::Avg => vec![
                // The running sum keeps the argument's type (an Int column
                // accumulates Int sums); only `finish` divides into Float.
                Field::new(
                    format!("{}$sum", self.name),
                    self.arg
                        .as_ref()
                        .and_then(|a| a.infer_type(input).ok())
                        .unwrap_or(DataType::Float),
                ),
                Field::new(format!("{}$n", self.name), DataType::Int),
            ],
            AggFunc::Count => vec![Field::new(self.name.clone(), DataType::Int)],
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => vec![self.result_field(input)],
        }
    }

    /// Number of partial-state columns (1, or 2 for AVG).
    pub fn state_width(&self) -> usize {
        match self.func {
            AggFunc::Avg => 2,
            _ => 1,
        }
    }
}

/// Running accumulator state for one (group, aggregate call) pair.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum(Value),
    Min(Value),
    Max(Value),
    Avg { sum: Value, n: i64 },
}

/// Add `v` into the numeric accumulator `acc` (NULL = unset), surfacing
/// integer overflow as an exec error like scalar arithmetic does.
fn numeric_add(acc: &mut Value, v: &Value) -> Result<()> {
    if !matches!(v, Value::Int(_) | Value::Float(_)) {
        return Err(CsqError::Type(format!(
            "aggregate argument must be numeric, got {:?}",
            v.data_type()
        )));
    }
    if acc.is_null() {
        *acc = v.clone();
    } else {
        *acc = eval_binary(BinaryOp::Add, acc, v)?;
    }
    Ok(())
}

impl AggState {
    fn init(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(Value::Null),
            AggFunc::Min => AggState::Min(Value::Null),
            AggFunc::Max => AggState::Max(Value::Null),
            AggFunc::Avg => AggState::Avg {
                sum: Value::Null,
                n: 0,
            },
        }
    }

    /// Accumulate one raw input value (`None` = `COUNT(*)`, which counts
    /// every row). NULL arguments are ignored by every function but
    /// `COUNT(*)`, per SQL.
    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => match v {
                None => *n += 1,
                Some(v) if !v.is_null() => *n += 1,
                Some(_) => {}
            },
            AggState::Sum(acc) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        numeric_add(acc, v)?;
                    }
                }
            }
            AggState::Min(_) | AggState::Max(_) => {
                unreachable!("MIN/MAX updates go through update_value")
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        numeric_add(sum, v)?;
                        *n += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge one partial-state row segment into this accumulator (the final
    /// phase). `vals` holds this call's state columns.
    fn merge(&mut self, vals: &[Value]) -> Result<()> {
        match self {
            AggState::Count(n) => {
                let add = vals[0].as_i64()?;
                *n = n
                    .checked_add(add)
                    .ok_or_else(|| CsqError::Exec("integer overflow".into()))?;
            }
            AggState::Sum(acc) => {
                if !vals[0].is_null() {
                    numeric_add(acc, &vals[0])?;
                }
            }
            AggState::Min(acc) => {
                if !vals[0].is_null()
                    && (acc.is_null() || compare_values(&vals[0], acc)? == std::cmp::Ordering::Less)
                {
                    *acc = vals[0].clone();
                }
            }
            AggState::Max(acc) => {
                if !vals[0].is_null()
                    && (acc.is_null()
                        || compare_values(&vals[0], acc)? == std::cmp::Ordering::Greater)
                {
                    *acc = vals[0].clone();
                }
            }
            AggState::Avg { sum, n } => {
                if !vals[0].is_null() {
                    numeric_add(sum, &vals[0])?;
                }
                *n = n
                    .checked_add(vals[1].as_i64()?)
                    .ok_or_else(|| CsqError::Exec("integer overflow".into()))?;
            }
        }
        Ok(())
    }

    /// Append this state's partial-state values (the wire representation).
    fn emit_state(self, out: &mut Vec<Value>) {
        match self {
            AggState::Count(n) => out.push(Value::Int(n)),
            AggState::Sum(acc) | AggState::Min(acc) | AggState::Max(acc) => out.push(acc),
            AggState::Avg { sum, n } => {
                out.push(sum);
                out.push(Value::Int(n));
            }
        }
    }

    /// Finish into the aggregate's result value.
    fn finish(self) -> Result<Value> {
        Ok(match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum(acc) | AggState::Min(acc) | AggState::Max(acc) => acc,
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.as_f64()? / n as f64)
                }
            }
        })
    }
}

/// Which phase of the decomposition this operator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Single,
    Partial,
    Final,
}

/// The vectorized GROUP BY operator; see the module docs.
///
/// With a [`MemoryTracker`] attached (via
/// [`with_memory`](HashAggregate::with_memory)), the build phase spills when
/// the budget is exceeded: the accumulated groups are emitted as
/// partial-state rows, hash-partitioned by group key into temp files, and
/// the table is cleared; at end of input each partition is read back and
/// merged independently (disjoint key sets, so peak memory is ~1/16th of
/// the working set). Results are identical to the in-memory path except for
/// group *order*, which becomes partition-major instead of global
/// first-occurrence (GROUP BY output order is unspecified; an explicit
/// ORDER BY above is unaffected).
pub struct HashAggregate {
    input: Option<BoxOp>,
    /// Group-key column ordinals in the input.
    key: Vec<usize>,
    aggs: Vec<AggSpec>,
    mode: Mode,
    schema: Arc<Schema>,
    groups: Option<std::vec::IntoIter<Row>>,
    carry: RowCarry,
    /// Byte budget shared with other operators; `None` = never spill.
    memory: Option<Arc<MemoryTracker>>,
    /// Approximate bytes currently registered with the tracker.
    tracked: usize,
    /// Spill partitions, created on first overflow.
    spilled: Vec<SpillFile>,
    /// Times the build flushed its table to disk.
    spill_events: usize,
}

/// The output schema of a single-phase aggregation: the input's key fields
/// (qualifiers preserved) followed by each call's result field.
pub fn aggregate_output_schema(input: &Schema, key: &[usize], aggs: &[AggSpec]) -> Schema {
    let mut fields: Vec<Field> = key.iter().map(|&k| input.field(k).clone()).collect();
    for a in aggs {
        fields.push(a.result_field(input));
    }
    Schema::new(fields)
}

/// The partial-state schema: key fields followed by each call's state
/// fields (what [`HashAggregate::partial`] emits and
/// [`HashAggregate::finalize`] consumes).
pub fn aggregate_state_schema(input: &Schema, key: &[usize], aggs: &[AggSpec]) -> Schema {
    let mut fields: Vec<Field> = key.iter().map(|&k| input.field(k).clone()).collect();
    for a in aggs {
        fields.extend(a.state_fields(input));
    }
    Schema::new(fields)
}

impl HashAggregate {
    /// Single-phase aggregation: raw rows in, finished groups out.
    pub fn new(input: BoxOp, key: Vec<usize>, aggs: Vec<AggSpec>) -> HashAggregate {
        let schema = Arc::new(aggregate_output_schema(input.schema(), &key, &aggs));
        HashAggregate {
            input: Some(input),
            key,
            aggs,
            mode: Mode::Single,
            schema,
            groups: None,
            carry: RowCarry::default(),
            memory: None,
            tracked: 0,
            spilled: Vec::new(),
            spill_events: 0,
        }
    }

    /// Partial phase: raw rows in, partial-state rows out.
    pub fn partial(input: BoxOp, key: Vec<usize>, aggs: Vec<AggSpec>) -> HashAggregate {
        let schema = Arc::new(aggregate_state_schema(input.schema(), &key, &aggs));
        HashAggregate {
            input: Some(input),
            key,
            aggs,
            mode: Mode::Partial,
            schema,
            groups: None,
            carry: RowCarry::default(),
            memory: None,
            tracked: 0,
            spilled: Vec::new(),
            spill_events: 0,
        }
    }

    /// Final phase: partial-state rows (key columns first, then each call's
    /// state columns, as emitted by [`HashAggregate::partial`]) in, finished
    /// groups out. `key_len` is the number of leading key columns.
    pub fn finalize(input: BoxOp, key_len: usize, aggs: Vec<AggSpec>) -> Result<HashAggregate> {
        let in_schema = input.schema();
        let state_width: usize = aggs.iter().map(AggSpec::state_width).sum();
        if in_schema.len() != key_len + state_width {
            return Err(CsqError::Plan(format!(
                "partial-aggregate input has {} columns; expected {} key + {} state",
                in_schema.len(),
                key_len,
                state_width
            )));
        }
        // Result fields: type from the shipped state column (SUM/MIN/MAX
        // carry their value type on the wire; COUNT is Int, AVG is Float).
        let mut fields: Vec<Field> = (0..key_len).map(|k| in_schema.field(k).clone()).collect();
        let mut at = key_len;
        for a in &aggs {
            let dtype = match a.func {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => in_schema.field(at).dtype,
            };
            fields.push(Field::new(a.name.clone(), dtype));
            at += a.state_width();
        }
        Ok(HashAggregate {
            input: Some(input),
            key: (0..key_len).collect(),
            aggs,
            mode: Mode::Final,
            schema: Arc::new(Schema::new(fields)),
            groups: None,
            carry: RowCarry::default(),
            memory: None,
            tracked: 0,
            spilled: Vec::new(),
            spill_events: 0,
        })
    }

    /// Attach a shared memory budget: the build spills to temp files instead
    /// of growing past it (see the struct docs).
    pub fn with_memory(mut self, tracker: Arc<MemoryTracker>) -> HashAggregate {
        self.memory = Some(tracker);
        self
    }

    /// Times the build phase spilled its group table to disk (0 = the fully
    /// in-memory path ran).
    pub fn spill_events(&self) -> usize {
        self.spill_events
    }

    /// Drain the input and build the group table (insertion-ordered so the
    /// output is deterministic: first-occurrence order of each key).
    fn build(&mut self) -> Result<Vec<Row>> {
        let mut input = self.input.take().expect("aggregate input consumed twice");
        // The hint bounds input *rows*, an upper bound on groups that can
        // overshoot wildly for low-cardinality keys — seed both containers
        // with a bounded capacity and let growth amortize past it.
        let hint = input.size_hint().unwrap_or(0).min(1024);
        let mut index: HashMap<Row, usize> = HashMap::with_capacity(hint);
        let mut groups: Vec<(Row, Vec<AggState>)> = Vec::with_capacity(hint);
        let key_len = self.key.len();
        let state_width: usize = self.aggs.iter().map(AggSpec::state_width).sum();
        while let Some(batch) = input.next_batch()? {
            let mut added = 0usize;
            for row in batch.rows() {
                let key = row.project(&self.key);
                let gi = match index.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = groups.len();
                        added += key.wire_size() + state_width * 16 + ENTRY_OVERHEAD;
                        groups.push((
                            key.clone(),
                            self.aggs.iter().map(|a| AggState::init(a.func)).collect(),
                        ));
                        index.insert(key, i);
                        i
                    }
                };
                let states = &mut groups[gi].1;
                match self.mode {
                    Mode::Single | Mode::Partial => {
                        for (spec, st) in self.aggs.iter().zip(states.iter_mut()) {
                            match &spec.arg {
                                Some(e) => {
                                    let v = e.eval(row)?;
                                    st.update_value(spec.func, Some(&v))?;
                                }
                                None => st.update_value(spec.func, None)?,
                            }
                        }
                    }
                    Mode::Final => {
                        let vals = row.values();
                        let mut at = key_len;
                        for (spec, st) in self.aggs.iter().zip(states.iter_mut()) {
                            let w = spec.state_width();
                            st.merge(&vals[at..at + w])?;
                            at += w;
                        }
                    }
                }
            }
            if let Some(t) = self.memory.clone() {
                self.tracked += added;
                t.grow(added);
                // Budget check at batch granularity: flush the table as
                // partial-state rows, hash-partitioned by key, and continue
                // with an empty table.
                if t.over_budget() && !groups.is_empty() {
                    self.spill_groups(&mut index, &mut groups)?;
                    t.record_spill();
                }
            }
        }
        if !self.spilled.is_empty() {
            self.spill_groups(&mut index, &mut groups)?;
            self.release_tracked();
            return self.merge_spilled();
        }
        self.release_tracked();
        // A global aggregate (no GROUP BY) over zero rows still produces one
        // group: COUNT(*) = 0, SUM/MIN/MAX/AVG = NULL.
        if groups.is_empty() && self.key.is_empty() {
            groups.push((
                Row::new(vec![]),
                self.aggs.iter().map(|a| AggState::init(a.func)).collect(),
            ));
        }
        let emit_state = self.mode == Mode::Partial;
        let mut out = Vec::with_capacity(groups.len());
        for (key, states) in groups {
            let mut vals = key.into_values();
            vals.reserve(self.aggs.iter().map(AggSpec::state_width).sum());
            for st in states {
                if emit_state {
                    st.emit_state(&mut vals);
                } else {
                    vals.push(st.finish()?);
                }
            }
            out.push(Row::new(vals));
        }
        Ok(out)
    }

    fn release_tracked(&mut self) {
        if let Some(t) = &self.memory {
            t.shrink(self.tracked);
        }
        self.tracked = 0;
    }

    /// Flush the current group table to the spill partitions as
    /// partial-state rows (creating the partitions on first use) and clear
    /// it, releasing its registered bytes.
    fn spill_groups(
        &mut self,
        index: &mut HashMap<Row, usize>,
        groups: &mut Vec<(Row, Vec<AggState>)>,
    ) -> Result<()> {
        if self.spilled.is_empty() {
            self.spilled = (0..SPILL_PARTITIONS)
                .map(|_| SpillFile::create())
                .collect::<Result<_>>()?;
        }
        if groups.is_empty() {
            return Ok(());
        }
        self.spill_events += 1;
        let key_cols: Vec<usize> = (0..self.key.len()).collect();
        let state_width: usize = self.aggs.iter().map(AggSpec::state_width).sum();
        let mut chunks: Vec<Vec<Row>> = vec![Vec::new(); self.spilled.len()];
        for (key, states) in groups.drain(..) {
            let mut vals = key.into_values();
            vals.reserve(state_width);
            for st in states {
                st.emit_state(&mut vals);
            }
            let row = Row::new(vals);
            let p = row.partition_of(Some(&key_cols), self.spilled.len());
            chunks[p].push(row);
        }
        index.clear();
        for (part, chunk) in self.spilled.iter_mut().zip(&chunks) {
            part.write_rows(chunk)?;
        }
        self.release_tracked();
        Ok(())
    }

    /// Read the spill partitions back one at a time, merging each
    /// partition's partial-state rows (disjoint key sets) and emitting per
    /// the operator's mode.
    fn merge_spilled(&mut self) -> Result<Vec<Row>> {
        let parts = std::mem::take(&mut self.spilled);
        let key_len = self.key.len();
        let key_cols: Vec<usize> = (0..key_len).collect();
        let emit_state = self.mode == Mode::Partial;
        let mut out = Vec::new();
        for part in parts {
            let mut reader = part.into_reader()?;
            let mut index: HashMap<Row, usize> = HashMap::new();
            let mut groups: Vec<(Row, Vec<AggState>)> = Vec::new();
            while let Some(frame) = reader.next_frame()? {
                for row in frame {
                    let key = row.project(&key_cols);
                    let gi = match index.get(&key) {
                        Some(&i) => i,
                        None => {
                            let i = groups.len();
                            groups.push((
                                key.clone(),
                                self.aggs.iter().map(|a| AggState::init(a.func)).collect(),
                            ));
                            index.insert(key, i);
                            i
                        }
                    };
                    let vals = row.values();
                    let mut at = key_len;
                    for (spec, st) in self.aggs.iter().zip(groups[gi].1.iter_mut()) {
                        let w = spec.state_width();
                        st.merge(&vals[at..at + w])?;
                        at += w;
                    }
                }
            }
            for (key, states) in groups {
                let mut vals = key.into_values();
                for st in states {
                    if emit_state {
                        st.emit_state(&mut vals);
                    } else {
                        vals.push(st.finish()?);
                    }
                }
                out.push(Row::new(vals));
            }
        }
        Ok(out)
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        if self.groups.is_none() {
            let rows = self.build()?;
            self.groups = Some(rows.into_iter());
        }
        crate::ops::produce_chunk(self.groups.as_mut().unwrap(), &self.schema)
    }
}

impl AggState {
    /// `update` with a NaN-safe MIN/MAX path (kept out of the main `update`
    /// match so the compare borrow is straightforward).
    fn update_value(&mut self, func: AggFunc, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Min(acc) | AggState::Max(acc) => {
                let Some(v) = v else {
                    return Err(CsqError::Plan(format!(
                        "{} requires an argument",
                        func.name()
                    )));
                };
                if v.is_null() {
                    return Ok(());
                }
                if acc.is_null() {
                    *acc = v.clone();
                    return Ok(());
                }
                let ord = compare_values(v, acc)?;
                let replace = match func {
                    AggFunc::Min => ord == std::cmp::Ordering::Less,
                    _ => ord == std::cmp::Ordering::Greater,
                };
                if replace {
                    *acc = v.clone();
                }
                Ok(())
            }
            _ => self.update(v),
        }
    }
}

batch_operator!(HashAggregate, hint: |s: &HashAggregate| {
    s.groups.as_ref().map(|g| g.len())
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, RowsOp, Sort};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
            Field::new("f", DataType::Float),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            Row::new(vec![Value::Int(1), Value::Int(10), Value::Float(1.0)]),
            Row::new(vec![Value::Int(2), Value::Int(20), Value::Float(2.0)]),
            Row::new(vec![Value::Int(1), Value::Null, Value::Float(3.0)]),
            Row::new(vec![Value::Null, Value::Int(5), Value::Float(4.0)]),
            Row::new(vec![Value::Int(1), Value::Int(30), Value::Null]),
        ]
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Count, None, "cnt"),
            AggSpec::new(AggFunc::Count, Some(PhysExpr::Column(1)), "cnt_v"),
            AggSpec::new(AggFunc::Sum, Some(PhysExpr::Column(1)), "sum_v"),
            AggSpec::new(AggFunc::Min, Some(PhysExpr::Column(2)), "min_f"),
            AggSpec::new(AggFunc::Max, Some(PhysExpr::Column(2)), "max_f"),
            AggSpec::new(AggFunc::Avg, Some(PhysExpr::Column(1)), "avg_v"),
        ]
    }

    #[test]
    fn single_phase_groups_and_null_semantics() {
        let mut agg = HashAggregate::new(Box::new(RowsOp::new(schema(), rows())), vec![0], specs());
        assert_eq!(agg.schema().field(0).name, "k");
        assert_eq!(agg.schema().field(6).name, "avg_v");
        assert_eq!(agg.schema().field(6).dtype, DataType::Float);
        let out = collect(&mut agg).unwrap();
        assert_eq!(out.len(), 3, "groups 1, 2, NULL");
        // First-occurrence order: k=1 first.
        let g1 = &out[0];
        assert_eq!(g1.value(0), &Value::Int(1));
        assert_eq!(g1.value(1), &Value::Int(3)); // COUNT(*)
        assert_eq!(g1.value(2), &Value::Int(2)); // COUNT(v) skips NULL
        assert_eq!(g1.value(3), &Value::Int(40)); // SUM(v)
        assert_eq!(g1.value(4), &Value::Float(1.0)); // MIN(f) skips NULL
        assert_eq!(g1.value(5), &Value::Float(3.0)); // MAX(f)
        assert_eq!(g1.value(6), &Value::Float(20.0)); // AVG(v)
                                                      // NULL keys form one group.
        let gn = &out[2];
        assert_eq!(gn.value(0), &Value::Null);
        assert_eq!(gn.value(1), &Value::Int(1));
    }

    #[test]
    fn partial_then_final_matches_single_phase() {
        let single = {
            let mut a =
                HashAggregate::new(Box::new(RowsOp::new(schema(), rows())), vec![0], specs());
            collect(&mut a).unwrap()
        };
        // Split the input into two chunks, partial-aggregate each, then
        // finalize the concatenated states.
        let all = rows();
        let mut partial_rows = Vec::new();
        let mut state_schema = None;
        for chunk in all.chunks(2) {
            let mut p = HashAggregate::partial(
                Box::new(RowsOp::new(schema(), chunk.to_vec())),
                vec![0],
                specs(),
            );
            state_schema = Some(p.schema().clone());
            partial_rows.extend(collect(&mut p).unwrap());
        }
        let mut f = HashAggregate::finalize(
            Box::new(RowsOp::new(state_schema.unwrap(), partial_rows)),
            1,
            specs(),
        )
        .unwrap();
        let merged = collect(&mut f).unwrap();
        let sorted = |mut v: Vec<Row>| {
            v.sort_by_key(|r| format!("{r}"));
            v
        };
        assert_eq!(sorted(merged), sorted(single));
    }

    #[test]
    fn empty_input_global_aggregate_emits_identity() {
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(schema(), vec![])),
            vec![],
            vec![
                AggSpec::new(AggFunc::Count, None, "cnt"),
                AggSpec::new(AggFunc::Sum, Some(PhysExpr::Column(1)), "s"),
            ],
        );
        let out = collect(&mut agg).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Row::new(vec![Value::Int(0), Value::Null]));
        // With a GROUP BY key, zero rows mean zero groups.
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(schema(), vec![])),
            vec![0],
            vec![AggSpec::new(AggFunc::Count, None, "cnt")],
        );
        assert!(collect(&mut agg).unwrap().is_empty());
    }

    #[test]
    fn minmax_on_nan_errors_like_sort() {
        let data = vec![
            Row::new(vec![Value::Int(1), Value::Int(1), Value::Float(f64::NAN)]),
            Row::new(vec![Value::Int(1), Value::Int(2), Value::Float(1.0)]),
        ];
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(schema(), data)),
            vec![0],
            vec![AggSpec::new(AggFunc::Min, Some(PhysExpr::Column(2)), "m")],
        );
        assert_eq!(collect(&mut agg).unwrap_err().kind(), "exec");
    }

    #[test]
    fn sort_over_nan_avg_errors_instead_of_panicking() {
        // ORDER BY avg(x) over a NaN-bearing group: the aggregate itself
        // succeeds (a lone NaN never gets compared), and the downstream Sort
        // must surface the same upfront key-validation error it uses for
        // base columns — not a comparator panic.
        let data = vec![
            Row::new(vec![Value::Int(1), Value::Int(1), Value::Float(f64::NAN)]),
            Row::new(vec![Value::Int(2), Value::Int(2), Value::Float(1.0)]),
        ];
        let agg = HashAggregate::new(
            Box::new(RowsOp::new(schema(), data)),
            vec![0],
            vec![AggSpec::new(AggFunc::Avg, Some(PhysExpr::Column(2)), "a")],
        );
        let mut sort = Sort::new(Box::new(agg), vec![1]);
        assert_eq!(collect(&mut sort).unwrap_err().kind(), "exec");
    }

    #[test]
    fn sum_over_strings_is_type_error() {
        let s = Schema::new(vec![Field::new("s", DataType::Str)]);
        let data = vec![Row::new(vec![Value::from("x")])];
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(s, data)),
            vec![],
            vec![AggSpec::new(AggFunc::Sum, Some(PhysExpr::Column(0)), "s")],
        );
        assert_eq!(collect(&mut agg).unwrap_err().kind(), "type");
    }

    #[test]
    fn sum_overflow_is_exec_error() {
        let data = vec![
            Row::new(vec![Value::Int(1), Value::Int(i64::MAX), Value::Null]),
            Row::new(vec![Value::Int(1), Value::Int(1), Value::Null]),
        ];
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(schema(), data)),
            vec![0],
            vec![AggSpec::new(AggFunc::Sum, Some(PhysExpr::Column(1)), "s")],
        );
        assert_eq!(collect(&mut agg).unwrap_err().kind(), "exec");
    }

    #[test]
    fn size_hint_reports_remaining_groups() {
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(schema(), rows())),
            vec![0],
            vec![AggSpec::new(AggFunc::Count, None, "cnt")],
        );
        assert_eq!(agg.size_hint(), None, "unknown before the build");
        let first = agg.next().unwrap().unwrap();
        assert_eq!(first.value(0), &Value::Int(1));
        assert_eq!(agg.size_hint(), Some(2));
    }

    #[test]
    fn spilling_aggregate_matches_in_memory() {
        // A budget far below the working set forces repeated table flushes;
        // the merged result must equal the in-memory path up to order.
        let data: Vec<Row> = (0..5000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 97),
                    if i % 13 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Float((i % 7) as f64),
                ])
            })
            .collect();
        let in_mem = {
            let mut a = HashAggregate::new(
                Box::new(RowsOp::new(schema(), data.clone())),
                vec![0],
                specs(),
            );
            collect(&mut a).unwrap()
        };
        let tracker = MemoryTracker::new(2048);
        let mut spilling =
            HashAggregate::new(Box::new(RowsOp::new(schema(), data)), vec![0], specs())
                .with_memory(tracker.clone());
        let spilled = collect(&mut spilling).unwrap();
        assert!(spilling.spill_events() > 0, "budget must force a spill");
        assert!(tracker.spill_count() > 0);
        assert_eq!(tracker.used(), 0, "all tracked bytes released");
        let sorted = |mut v: Vec<Row>| {
            v.sort_by_key(|r| format!("{r}"));
            v
        };
        assert_eq!(sorted(spilled), sorted(in_mem));
    }

    #[test]
    fn spilling_global_aggregate_matches_in_memory() {
        let data: Vec<Row> = (0..2000)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i), Value::Float(0.5)]))
            .collect();
        // Global aggregate: one group, but a zero-byte budget still exercises
        // the spill + single-partition merge path.
        let mut agg = HashAggregate::new(Box::new(RowsOp::new(schema(), data)), vec![], specs())
            .with_memory(MemoryTracker::new(0));
        let out = collect(&mut agg).unwrap();
        assert!(agg.spill_events() > 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0), &Value::Int(2000)); // COUNT(*)
        assert_eq!(out[0].value(2), &Value::Int(2000 * 1999 / 2)); // SUM
    }

    #[test]
    fn spilling_partial_mode_emits_mergeable_states() {
        // Partial-mode spill must still emit *state* rows that a Final
        // aggregate can merge into the same answer as single-phase.
        let data: Vec<Row> = (0..3000)
            .map(|i| Row::new(vec![Value::Int(i % 31), Value::Int(i), Value::Float(1.0)]))
            .collect();
        let single = {
            let mut a = HashAggregate::new(
                Box::new(RowsOp::new(schema(), data.clone())),
                vec![0],
                specs(),
            );
            collect(&mut a).unwrap()
        };
        let partial =
            HashAggregate::partial(Box::new(RowsOp::new(schema(), data)), vec![0], specs())
                .with_memory(MemoryTracker::new(1024));
        let mut f = HashAggregate::finalize(Box::new(partial), 1, specs()).unwrap();
        let merged = collect(&mut f).unwrap();
        let sorted = |mut v: Vec<Row>| {
            v.sort_by_key(|r| format!("{r}"));
            v
        };
        assert_eq!(sorted(merged), sorted(single));
    }

    #[test]
    fn min_max_over_strings() {
        let s = Schema::new(vec![Field::new("s", DataType::Str)]);
        let data = vec![
            Row::new(vec![Value::from("bb")]),
            Row::new(vec![Value::from("a")]),
            Row::new(vec![Value::Null]),
        ];
        let mut agg = HashAggregate::new(
            Box::new(RowsOp::new(s, data)),
            vec![],
            vec![
                AggSpec::new(AggFunc::Min, Some(PhysExpr::Column(0)), "lo"),
                AggSpec::new(AggFunc::Max, Some(PhysExpr::Column(0)), "hi"),
            ],
        );
        let out = collect(&mut agg).unwrap();
        assert_eq!(out[0], Row::new(vec![Value::from("a"), Value::from("bb")]));
    }
}
