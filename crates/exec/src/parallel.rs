//! Morsel-driven parallel execution (DESIGN.md §4).
//!
//! [`ParallelPipeline`] runs a chain of per-batch stages (filter, project,
//! UDF application, …) over morsels of its source on a [`WorkerPool`]:
//!
//! * the **dispenser** (a `parking_lot`-locked wrapper around the source
//!   operator) hands out `(seq, morsel)` pairs — workers self-schedule by
//!   locking it whenever they finish a morsel, so skew balances itself;
//! * each **worker** instantiates its own private stage chain from the
//!   shared [`StageFactory`] list (predicates and projections are compiled
//!   once, cloned per worker) and reports exactly one message per morsel,
//!   including empty results — the gather side relies on gap-free sequence
//!   numbers;
//! * the **gather** side is the operator the caller pulls: in *ordered*
//!   mode a reorder buffer re-emits morsels in input order (what `Sort`
//!   stability and `Limit` prefix semantics above the pipeline need); in
//!   *unordered* mode results stream out as they complete.
//!
//! Errors surface deterministically in ordered mode: the failing morsel's
//! error is returned exactly where the serial engine would have stopped,
//! after all earlier morsels' output. A worker window keeps fast workers at
//! most [`ParallelOpts::window`] morsels ahead of the consumer, bounding the
//! reorder buffer.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use csq_common::{CancelToken, CsqError, Field, Result, Row, RowBatch, Schema, DEFAULT_BATCH_SIZE};
use csq_expr::PhysExpr;

use crate::ops::{
    batch_operator, filter_rows, project_rows, Operator, PredPath, ProjPath, RowCarry,
};
use crate::pool::WorkerPool;
use crate::BoxOp;

/// Tuning knobs for [`ParallelPipeline`] and the exchange operators.
#[derive(Debug, Clone)]
pub struct ParallelOpts {
    /// Worker threads. `0` means [`WorkerPool::default_workers`] (the
    /// `CSQ_WORKERS` env var, else the host's available parallelism).
    pub workers: usize,
    /// Rows per morsel (`0` → [`DEFAULT_BATCH_SIZE`]).
    pub morsel_rows: usize,
    /// Preserve input order at the gather (reorder buffer). Required under
    /// `Sort` (stability) and `Limit` (prefix semantics); turning it off
    /// lets results stream out as workers finish.
    pub ordered: bool,
    /// Max morsels workers may run ahead of the consumer (`0` → `8 ×`
    /// workers). Bounds the reorder buffer.
    pub window: usize,
    /// Cooperative cancellation: the dispenser consults this token before
    /// every morsel pull and surfaces a typed `Cancelled`/`Timeout` error
    /// through the ordered gather. The default token never fires.
    pub token: CancelToken,
}

impl Default for ParallelOpts {
    fn default() -> ParallelOpts {
        ParallelOpts {
            workers: 0,
            morsel_rows: 0,
            ordered: true,
            window: 0,
            token: CancelToken::new(),
        }
    }
}

impl ParallelOpts {
    /// Opts with an explicit worker count.
    pub fn with_workers(workers: usize) -> ParallelOpts {
        ParallelOpts {
            workers,
            ..ParallelOpts::default()
        }
    }

    /// Builder-style: disable order preservation.
    pub fn unordered(mut self) -> ParallelOpts {
        self.ordered = false;
        self
    }

    /// Builder-style: attach a cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> ParallelOpts {
        self.token = token;
        self
    }

    pub(crate) fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            WorkerPool::default_workers()
        } else {
            self.workers
        }
    }

    pub(crate) fn resolved_morsel_rows(&self) -> usize {
        if self.morsel_rows == 0 {
            DEFAULT_BATCH_SIZE
        } else {
            self.morsel_rows
        }
    }

    fn resolved_window(&self, workers: usize) -> u64 {
        if self.window == 0 {
            (workers as u64) * 8
        } else {
            self.window as u64
        }
    }
}

/// One worker's private, stateful per-batch transform. Implementations may
/// keep caches or scratch buffers; they are never shared across threads.
pub trait BatchStage: Send {
    /// Transform one batch. `Ok(None)` means the batch was fully consumed
    /// (e.g. every row filtered out).
    fn apply(&mut self, batch: RowBatch) -> Result<Option<RowBatch>>;
}

impl<F> BatchStage for F
where
    F: FnMut(RowBatch) -> Result<Option<RowBatch>> + Send,
{
    fn apply(&mut self, batch: RowBatch) -> Result<Option<RowBatch>> {
        self(batch)
    }
}

/// Shared recipe for one stage of a parallel pipeline: validates the schema
/// once at build time and instantiates a private [`BatchStage`] per worker.
pub trait StageFactory: Send + Sync {
    /// Output schema for the given input schema.
    fn output_schema(&self, input: &Arc<Schema>) -> Result<Arc<Schema>>;

    /// Build one worker's stage instance.
    fn instantiate(&self) -> Box<dyn BatchStage>;
}

/// Parallel filter stage: the predicate is compiled once
/// (`PredPath::analyze`) and each worker gets its own copy of the
/// compiled form — semantics identical to the serial [`crate::Filter`].
pub struct FilterStageFactory {
    predicate: PhysExpr,
    path: PredPath,
}

impl FilterStageFactory {
    /// Compile `predicate` for parallel evaluation.
    pub fn new(predicate: PhysExpr) -> FilterStageFactory {
        let path = PredPath::analyze(&predicate);
        FilterStageFactory { predicate, path }
    }
}

impl StageFactory for FilterStageFactory {
    fn output_schema(&self, input: &Arc<Schema>) -> Result<Arc<Schema>> {
        Ok(input.clone())
    }

    fn instantiate(&self) -> Box<dyn BatchStage> {
        let predicate = self.predicate.clone();
        let path = self.path.clone();
        Box::new(move |batch: RowBatch| {
            let (schema, mut rows) = batch.into_parts();
            filter_rows(&path, &predicate, &mut rows)?;
            if rows.is_empty() {
                Ok(None)
            } else {
                Ok(Some(RowBatch::from_rows(schema, rows)))
            }
        })
    }
}

/// Parallel projection stage: expressions are classified once
/// (`ProjPath::analyze`) — semantics identical to the serial
/// [`crate::Project`], including the in-place and move fast paths.
pub struct ProjectStageFactory {
    exprs: Vec<PhysExpr>,
    path: ProjPath,
    schema: Arc<Schema>,
}

impl ProjectStageFactory {
    /// `exprs` paired with their output fields, as in [`crate::Project`].
    pub fn new(exprs: Vec<(PhysExpr, Field)>) -> ProjectStageFactory {
        let (exprs, fields): (Vec<_>, Vec<_>) = exprs.into_iter().unzip();
        let path = ProjPath::analyze(&exprs);
        ProjectStageFactory {
            exprs,
            path,
            schema: Arc::new(Schema::new(fields)),
        }
    }
}

impl StageFactory for ProjectStageFactory {
    fn output_schema(&self, _input: &Arc<Schema>) -> Result<Arc<Schema>> {
        Ok(self.schema.clone())
    }

    fn instantiate(&self) -> Box<dyn BatchStage> {
        let exprs = self.exprs.clone();
        let path = self.path.clone();
        let schema = self.schema.clone();
        Box::new(move |batch: RowBatch| {
            let rows = project_rows(&path, &exprs, batch.into_rows())?;
            Ok(Some(RowBatch::from_rows(schema.clone(), rows)))
        })
    }
}

/// Stage factory from a closure — how external subsystems plug their work
/// into the parallel engine (e.g. the client UDF-VM: the closure forks a
/// per-worker `TaskExecutor` and applies it batch by batch).
pub struct ClosureFactory {
    schema: Arc<Schema>,
    make: Arc<dyn Fn() -> Box<dyn BatchStage> + Send + Sync>,
}

impl ClosureFactory {
    /// A factory whose stages produce rows of `schema`.
    pub fn new<F>(schema: Schema, make: F) -> ClosureFactory
    where
        F: Fn() -> Box<dyn BatchStage> + Send + Sync + 'static,
    {
        ClosureFactory {
            schema: Arc::new(schema),
            make: Arc::new(make),
        }
    }
}

impl StageFactory for ClosureFactory {
    fn output_schema(&self, _input: &Arc<Schema>) -> Result<Arc<Schema>> {
        Ok(self.schema.clone())
    }

    fn instantiate(&self) -> Box<dyn BatchStage> {
        (self.make)()
    }
}

/// Shared progress state between dispenser, workers, and gather.
struct Gate {
    /// Morsels handed out so far (error slots included) — also the next seq.
    dispensed: AtomicU64,
    /// Morsels the consumer has retired.
    consumed: AtomicU64,
    /// Set when the operator is dropped or fails: spinning workers exit.
    abandoned: AtomicBool,
    /// Wall nanoseconds spent inside the dispenser lock (pulling the
    /// source + re-chunking). The dispenser is the pipeline's serialized
    /// stage, so this is its steady-state throughput bound; the parallel
    /// benchmark reads it via [`ParallelPipeline::dispense_secs`].
    dispense_ns: AtomicU64,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            dispensed: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            abandoned: AtomicBool::new(false),
            dispense_ns: AtomicU64::new(0),
        }
    }

    /// Block (politely) until the worker may pull another morsel; `false`
    /// when the pipeline was abandoned.
    fn wait_for_window(&self, window: u64) -> bool {
        loop {
            if self.abandoned.load(Ordering::Relaxed) {
                return false;
            }
            let d = self.dispensed.load(Ordering::Acquire);
            let c = self.consumed.load(Ordering::Acquire);
            if d.saturating_sub(c) <= window {
                return true;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// The shared morsel source: the input operator plus a re-chunking queue,
/// behind a `parking_lot` mutex so workers can self-schedule pulls.
struct Dispenser {
    source: BoxOp,
    queue: VecDeque<RowBatch>,
    /// Total rows currently buffered in `queue`.
    buffered_rows: usize,
    /// The source returned `None`; only the queue remains.
    exhausted: bool,
    morsel_rows: usize,
    gate: Arc<Gate>,
    failed: bool,
    token: CancelToken,
}

impl Dispenser {
    /// Next `(seq, morsel)`, or `None` when exhausted (or failed — after a
    /// failure the remaining input is abandoned, as in the serial engine).
    /// Source batches are re-chunked toward `morsel_rows`: oversized
    /// batches split, undersized ones coalesce (never reordering rows), so
    /// per-morsel scheduling overhead is paid once per `morsel_rows` rows
    /// even when the source emits smaller batches.
    fn next_morsel(&mut self) -> Result<Option<(u64, RowBatch)>> {
        if self.failed {
            return Ok(None);
        }
        // Cancellation checkpoint: every worker passes through here once
        // per morsel, so a tripped token stops the whole pipeline within
        // one morsel's work. The error rides the normal failure path — one
        // worker claims an error seq and the ordered gather surfaces the
        // typed Cancelled/Timeout exactly where the stream stopped.
        if let Err(e) = self.token.check() {
            self.failed = true;
            return Err(e);
        }
        while self.buffered_rows < self.morsel_rows && !self.exhausted {
            match self.source.next_batch() {
                Ok(Some(b)) => {
                    self.buffered_rows += b.len();
                    self.queue.push_back(b);
                }
                Ok(None) => self.exhausted = true,
                Err(e) => {
                    self.failed = true;
                    return Err(e);
                }
            }
        }
        let Some(first) = self.queue.pop_front() else {
            return Ok(None);
        };
        self.buffered_rows -= first.len();
        let morsel = if first.len() > self.morsel_rows {
            // Oversized: emit one morsel, keep the remainder in order.
            let mut parts = first.split_morsels(self.morsel_rows).into_iter();
            let head = parts.next().expect("split of a non-empty batch");
            let rest: Vec<RowBatch> = parts.collect();
            for p in rest.into_iter().rev() {
                self.buffered_rows += p.len();
                self.queue.push_front(p);
            }
            head
        } else if first.len() == self.morsel_rows || self.queue.is_empty() {
            first
        } else {
            // Undersized: coalesce following whole batches while they fit.
            let (schema, mut rows) = first.into_parts();
            while let Some(next) = self.queue.front() {
                if rows.len() + next.len() > self.morsel_rows {
                    break;
                }
                let next = self.queue.pop_front().expect("front checked");
                self.buffered_rows -= next.len();
                rows.extend(next.into_rows());
            }
            RowBatch::from_rows(schema, rows)
        };
        let seq = self.gate.dispensed.fetch_add(1, Ordering::AcqRel);
        Ok(Some((seq, morsel)))
    }

    /// Claim a sequence slot for an error report, so the gather sees a
    /// gap-free stream and surfaces the error at a deterministic position.
    fn claim_error_seq(&mut self) -> u64 {
        self.gate.dispensed.fetch_add(1, Ordering::AcqRel)
    }
}

type MorselResult = (u64, Result<Option<RowBatch>>);

fn apply_chain(chain: &mut [Box<dyn BatchStage>], batch: RowBatch) -> Result<Option<RowBatch>> {
    let mut cur = batch;
    for stage in chain.iter_mut() {
        match stage.apply(cur)? {
            Some(b) => cur = b,
            None => return Ok(None),
        }
    }
    Ok(Some(cur))
}

/// Convert a panic in user-provided stage (or source) code into an exec
/// error, so the gather surfaces it in-band instead of deadlocking on a
/// sequence gap (a dead worker can neither report its morsel nor retire
/// the window the survivors spin on).
fn catch_panic<R>(what: &str, f: impl FnOnce() -> Result<R>) -> Result<R> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|_| {
        Err(CsqError::Exec(format!(
            "parallel worker panicked in {what}"
        )))
    })
}

fn worker_loop(
    dispenser: Arc<Mutex<Dispenser>>,
    gate: Arc<Gate>,
    factories: Arc<Vec<Box<dyn StageFactory>>>,
    out_tx: Sender<MorselResult>,
    window: u64,
) {
    // A panicking stage constructor must still be reported (all workers
    // dying silently would end the stream with no rows and no error).
    let chain = catch_panic("a stage constructor", || {
        Ok(factories
            .iter()
            .map(|f| f.instantiate())
            .collect::<Vec<_>>())
    });
    let mut chain = match chain {
        Ok(c) => c,
        Err(e) => {
            let mut d = dispenser.lock();
            d.failed = true;
            let seq = d.claim_error_seq();
            drop(d);
            let _ = out_tx.send((seq, Err(e)));
            return;
        }
    };
    loop {
        if !gate.wait_for_window(window) {
            return;
        }
        let (seq, morsel) = {
            let mut d = dispenser.lock();
            let t = std::time::Instant::now();
            // A panic inside the source operator surfaces as an error seq
            // too: `next_morsel` claims the seq only as its final step, so
            // an unwound pull has not created a gap yet.
            let pulled = catch_panic("the source operator", || d.next_morsel());
            gate.dispense_ns
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            match pulled {
                Ok(Some(x)) => x,
                Ok(None) => return,
                Err(e) => {
                    d.failed = true;
                    let seq = d.claim_error_seq();
                    drop(d);
                    let _ = out_tx.send((seq, Err(e)));
                    return;
                }
            }
        };
        let result = catch_panic("a stage", || apply_chain(&mut chain, morsel));
        let failed = result.is_err();
        if failed {
            // Poison the dispenser first so siblings stop pulling input.
            dispenser.lock().failed = true;
        }
        if out_tx.send((seq, result)).is_err() || failed {
            return;
        }
    }
}

/// Morsel-driven parallel execution of a stage chain over a source operator.
/// See the module docs for the architecture; this type is the gather side
/// and implements [`Operator`] like any other.
pub struct ParallelPipeline {
    // Field order is drop order: the receiver disconnects first (unblocking
    // workers mid-send), then the pool joins them.
    out_rx: Receiver<MorselResult>,
    gate: Arc<Gate>,
    pending: BTreeMap<u64, Result<Option<RowBatch>>>,
    next_seq: u64,
    ordered: bool,
    failed: bool,
    hint: Option<usize>,
    schema: Arc<Schema>,
    carry: RowCarry,
    _pool: WorkerPool,
}

impl ParallelPipeline {
    /// Build and start the pipeline: `stages` run over morsels of `source`
    /// on `opts.workers` threads. Schemas are validated eagerly.
    pub fn new(
        source: BoxOp,
        stages: Vec<Box<dyn StageFactory>>,
        opts: ParallelOpts,
    ) -> Result<ParallelPipeline> {
        let workers = opts.resolved_workers();
        let window = opts.resolved_window(workers);
        let mut schema = Arc::new(source.schema().clone());
        for f in &stages {
            schema = f.output_schema(&schema)?;
        }
        let hint = source.size_hint();
        let gate = Arc::new(Gate::new());
        let dispenser = Arc::new(Mutex::new(Dispenser {
            source,
            queue: VecDeque::new(),
            buffered_rows: 0,
            exhausted: false,
            morsel_rows: opts.resolved_morsel_rows(),
            gate: gate.clone(),
            failed: false,
            token: opts.token.clone(),
        }));
        let factories = Arc::new(stages);
        // Capacity above the window so the *window* (which the gather
        // retires against) governs run-ahead, not channel blocking — a
        // worker parking on a full channel per couple of morsels costs two
        // context switches per morsel and dominated the coordinator time.
        let (out_tx, out_rx) = bounded(window as usize + workers);
        let pool = WorkerPool::new(workers);
        for _ in 0..workers {
            let dispenser = dispenser.clone();
            let gate = gate.clone();
            let factories = factories.clone();
            let out_tx = out_tx.clone();
            pool.spawn(move || worker_loop(dispenser, gate, factories, out_tx, window));
        }
        // Workers hold the only senders now: the channel disconnects when
        // the last worker exits.
        drop(out_tx);
        Ok(ParallelPipeline {
            out_rx,
            gate,
            pending: BTreeMap::new(),
            next_seq: 0,
            ordered: opts.ordered,
            failed: false,
            hint,
            schema,
            carry: RowCarry::default(),
            _pool: pool,
        })
    }

    /// Wall seconds spent so far inside the (serialized) morsel dispenser —
    /// source pulls plus re-chunking. The parallel benchmark uses this to
    /// model the pipeline's serial stage.
    pub fn dispense_secs(&self) -> f64 {
        self.gate.dispense_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    fn retire(&mut self) {
        self.next_seq += 1;
        self.gate.consumed.store(self.next_seq, Ordering::Release);
    }

    fn fail(&mut self, e: CsqError) -> Result<Option<RowBatch>> {
        self.failed = true;
        // Unblock any worker spinning on the window.
        self.gate.abandoned.store(true, Ordering::Relaxed);
        Err(e)
    }

    fn produce(&mut self) -> Result<Option<RowBatch>> {
        if self.failed {
            return Ok(None);
        }
        loop {
            if self.ordered {
                if let Some(entry) = self.pending.remove(&self.next_seq) {
                    self.retire();
                    match entry {
                        Ok(Some(b)) if !b.is_empty() => return Ok(Some(b)),
                        Ok(_) => continue,
                        Err(e) => return self.fail(e),
                    }
                }
            }
            match self.out_rx.recv() {
                Ok((seq, res)) => {
                    if self.ordered {
                        // Fast path: morsels usually arrive in order (the
                        // window keeps workers near the consumer), so skip
                        // the reorder buffer when this is the next seq.
                        if seq == self.next_seq && self.pending.is_empty() {
                            self.retire();
                            match res {
                                Ok(Some(b)) if !b.is_empty() => return Ok(Some(b)),
                                Ok(_) => continue,
                                Err(e) => return self.fail(e),
                            }
                        }
                        self.pending.insert(seq, res);
                    } else {
                        self.retire();
                        match res {
                            Ok(Some(b)) if !b.is_empty() => return Ok(Some(b)),
                            Ok(_) => continue,
                            Err(e) => return self.fail(e),
                        }
                    }
                }
                Err(_) => {
                    // All workers exited. Drain whatever is buffered, then
                    // verify nothing was lost to an abnormal worker death.
                    if self.ordered && self.pending.contains_key(&self.next_seq) {
                        continue;
                    }
                    let dispensed = self.gate.dispensed.load(Ordering::Acquire);
                    if self.next_seq < dispensed {
                        return self.fail(CsqError::Exec(
                            "parallel worker terminated without reporting its morsel".into(),
                        ));
                    }
                    return Ok(None);
                }
            }
        }
    }
}

impl Drop for ParallelPipeline {
    fn drop(&mut self) {
        self.gate.abandoned.store(true, Ordering::Relaxed);
        // Field drops do the rest: out_rx disconnects, the pool joins.
    }
}

batch_operator!(ParallelPipeline, hint: |s: &ParallelPipeline| s.hint);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, RowsOp};
    use csq_common::{DataType, Value};
    use csq_expr::BinaryOp;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 10)]))
            .collect()
    }

    fn gt_pred(col: usize, lit: i64) -> PhysExpr {
        PhysExpr::Binary {
            left: Box::new(PhysExpr::Column(col)),
            op: BinaryOp::Gt,
            right: Box::new(PhysExpr::Literal(Value::Int(lit))),
        }
    }

    fn sfp_stages() -> Vec<Box<dyn StageFactory>> {
        vec![
            Box::new(FilterStageFactory::new(gt_pred(0, 9))),
            Box::new(ProjectStageFactory::new(vec![(
                PhysExpr::Column(1),
                Field::new("b", DataType::Int),
            )])),
        ]
    }

    #[test]
    fn pipeline_dispenses_morsels_over_pruned_columnar_scan() {
        // A ColumnarScan source feeds the dispenser segment by segment; the
        // pipeline re-chunks those into morsels, and zone-map pruning means
        // the workers never see the disproved segments at all.
        use crate::ops::ColumnarScan;
        use csq_storage::{FilterSpec, Table};
        let t = Table::with_segment_rows("t", schema(), 64).unwrap();
        t.insert_all(rows(1000)).unwrap();
        let pred = gt_pred(0, 899);
        let spec = FilterSpec::from_phys(&pred).unwrap();
        let t = std::sync::Arc::new(t);
        let scan = ColumnarScan::new(&t, "t", Some(&spec)).unwrap();
        assert!(
            scan.scan_stats().segments_pruned >= 10,
            "tight range must prune most 64-row segments"
        );
        let mut p = ParallelPipeline::new(
            Box::new(scan),
            vec![Box::new(FilterStageFactory::new(pred))],
            opts(4, true),
        )
        .unwrap();
        let out = collect(&mut p).unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0].value(0), &Value::Int(900));
        assert_eq!(out[99].value(0), &Value::Int(999));
    }

    fn opts(workers: usize, ordered: bool) -> ParallelOpts {
        ParallelOpts {
            workers,
            morsel_rows: 7, // tiny morsels: force real multi-morsel scheduling
            ordered,
            ..ParallelOpts::default()
        }
    }

    #[test]
    fn ordered_gather_matches_serial_exactly() {
        for workers in [1, 2, 4, 8] {
            let serial = {
                let scan = Box::new(RowsOp::new(schema(), rows(500)));
                let f = Box::new(crate::Filter::new(scan, gt_pred(0, 9)));
                let mut p = crate::Project::new(
                    f,
                    vec![(PhysExpr::Column(1), Field::new("b", DataType::Int))],
                );
                collect(&mut p).unwrap()
            };
            let scan = Box::new(RowsOp::new(schema(), rows(500)));
            let mut par = ParallelPipeline::new(scan, sfp_stages(), opts(workers, true)).unwrap();
            assert_eq!(par.schema().len(), 1);
            assert_eq!(collect(&mut par).unwrap(), serial, "workers = {workers}");
        }
    }

    #[test]
    fn unordered_gather_matches_as_multiset() {
        let scan = Box::new(RowsOp::new(schema(), rows(500)));
        let mut par = ParallelPipeline::new(scan, sfp_stages(), opts(4, false)).unwrap();
        let mut got = collect(&mut par).unwrap();
        got.sort_by_key(|r| r.value(0).as_i64().unwrap());
        let expect: Vec<Row> = (10..500)
            .map(|i| Row::new(vec![Value::Int(i * 10)]))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_source_and_fully_filtered_input() {
        let scan = Box::new(RowsOp::new(schema(), Vec::new()));
        let mut par = ParallelPipeline::new(scan, sfp_stages(), opts(3, true)).unwrap();
        assert!(collect(&mut par).unwrap().is_empty());

        let scan = Box::new(RowsOp::new(schema(), rows(100)));
        let stages: Vec<Box<dyn StageFactory>> =
            vec![Box::new(FilterStageFactory::new(gt_pred(0, 1_000)))];
        let mut par = ParallelPipeline::new(scan, stages, opts(3, true)).unwrap();
        assert!(collect(&mut par).unwrap().is_empty());
    }

    #[test]
    fn identity_pipeline_preserves_input() {
        let scan = Box::new(RowsOp::new(schema(), rows(100)));
        let mut par = ParallelPipeline::new(scan, Vec::new(), opts(4, true)).unwrap();
        assert_eq!(par.size_hint(), Some(100));
        assert_eq!(collect(&mut par).unwrap(), rows(100));
    }

    #[test]
    fn stage_error_is_deterministic_in_ordered_mode() {
        // Row 250 has a Str where Ints live: the projection's eval path
        // errors on it, after rows 10..=249 were already emitted.
        let mut data = rows(500);
        data[250] = Row::new(vec![Value::Int(250), Value::from("boom")]);
        let sum = PhysExpr::Binary {
            left: Box::new(PhysExpr::Column(1)),
            op: BinaryOp::Add,
            right: Box::new(PhysExpr::Literal(Value::Int(1))),
        };
        let stages: Vec<Box<dyn StageFactory>> = vec![Box::new(ProjectStageFactory::new(vec![(
            sum,
            Field::new("s", DataType::Int),
        )]))];
        let scan = Box::new(RowsOp::new(schema(), data));
        let mut par = ParallelPipeline::new(scan, stages, opts(4, true)).unwrap();
        let mut seen = 0usize;
        let err = loop {
            match par.next_batch() {
                Ok(Some(b)) => seen += b.len(),
                Ok(None) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), "type");
        // Every complete morsel before the failing one was delivered
        // (morsel_rows = 7; row 250 lives in morsel 35 → 245 prior rows).
        assert_eq!(seen, 245);
        // After the error the operator is done, not wedged.
        assert!(par.next_batch().unwrap().is_none());
    }

    #[test]
    fn mid_stream_stage_panic_errors_instead_of_hanging() {
        // A worker dying mid-stream must not wedge the ordered gather: the
        // panic is caught and reported as that morsel's error. Input is
        // far larger than window × morsel_rows, so without in-band
        // reporting the survivors would stall on the window forever.
        let schema = Arc::new(Schema::new(vec![Field::new("a", DataType::Int)]));
        let data: Vec<Row> = (0..5_000).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let make_schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let stages: Vec<Box<dyn StageFactory>> =
            vec![Box::new(ClosureFactory::new(make_schema, || {
                Box::new(move |batch: RowBatch| {
                    if batch.iter().any(|r| r.value(0).as_i64() == Ok(2_100)) {
                        panic!("stage bug");
                    }
                    Ok(Some(batch))
                })
            }))];
        let scan = Box::new(RowsOp::new(Schema::clone(&schema), data));
        let mut par = ParallelPipeline::new(scan, stages, opts(4, true)).unwrap();
        let mut seen = 0usize;
        let err = loop {
            match par.next_batch() {
                Ok(Some(b)) => seen += b.len(),
                Ok(None) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), "exec");
        assert!(err.to_string().contains("panicked"), "{err}");
        // Ordered gather delivered exactly the morsels before the
        // panicking one (its boundary lies within one morsel of row 2100).
        assert!(
            (2_094..=2_100).contains(&seen),
            "delivered prefix of {seen} rows"
        );
        assert!(par.next_batch().unwrap().is_none(), "failed, not wedged");
    }

    #[test]
    fn tripped_token_surfaces_typed_error_and_stops() {
        let token = CancelToken::new();
        let scan = Box::new(RowsOp::new(schema(), rows(50_000)));
        let mut par =
            ParallelPipeline::new(scan, sfp_stages(), opts(4, true).with_token(token.clone()))
                .unwrap();
        let first = par.next_batch().unwrap().unwrap();
        assert!(!first.is_empty());
        token.cancel();
        // Within a bounded number of pulls the gather must surface the
        // typed error (buffered morsels may still drain first).
        let mut cancelled = false;
        for _ in 0..10_000 {
            match par.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    assert_eq!(e.kind(), "cancelled");
                    cancelled = true;
                    break;
                }
            }
        }
        assert!(cancelled, "cancellation never surfaced");
        assert!(par.next_batch().unwrap().is_none(), "failed, not wedged");
    }

    #[test]
    fn expired_deadline_token_times_out_before_first_batch() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        let scan = Box::new(RowsOp::new(schema(), rows(500)));
        let mut par =
            ParallelPipeline::new(scan, sfp_stages(), opts(2, true).with_token(token)).unwrap();
        let err = match par.next_batch() {
            Ok(Some(_)) => panic!("no rows should be dispensed past an expired deadline"),
            Ok(None) => panic!("expected a timeout error"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn early_drop_shuts_workers_down() {
        let scan = Box::new(RowsOp::new(schema(), rows(10_000)));
        let mut par = ParallelPipeline::new(scan, sfp_stages(), opts(4, true)).unwrap();
        let first = par.next_batch().unwrap().unwrap();
        assert!(!first.is_empty());
        drop(par); // must not hang or leak threads
    }

    #[test]
    fn limit_over_ordered_pipeline_takes_the_prefix() {
        let scan = Box::new(RowsOp::new(schema(), rows(500)));
        let par = ParallelPipeline::new(scan, Vec::new(), opts(4, true)).unwrap();
        let mut lim = crate::Limit::new(Box::new(par), 42);
        assert_eq!(collect(&mut lim).unwrap(), rows(500)[..42].to_vec());
    }
}
