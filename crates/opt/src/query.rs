//! Query-graph extraction: relations and UDF calls become *units*,
//! predicates are classified by the units they require, and every
//! client-site UDF call in the query text is replaced by a reference to its
//! synthetic result column.

use std::collections::BTreeSet;

use csq_common::{CsqError, Result};
use csq_expr::{analysis, ColumnRef, Expr};
use csq_sql::ast::{SelectItem, SelectStmt};

use crate::context::{OptContext, TableStats, UdfMeta};

/// One optimization unit: a base relation or a client-site UDF call
/// (a virtual join with the UDF's virtual table, §2.2).
#[derive(Debug, Clone)]
pub enum Unit {
    /// A base relation from the FROM clause.
    Rel {
        /// FROM alias.
        alias: String,
        /// Catalog table name.
        table: String,
        /// Statistics snapshot.
        stats: TableStats,
    },
    /// A client-site UDF call.
    Udf {
        /// Registered name.
        name: String,
        /// Metadata (result size, selectivity).
        meta: UdfMeta,
        /// Argument columns (qualified, or references to other UDFs'
        /// synthetic result columns).
        args: Vec<ColumnRef>,
        /// Synthetic result column name (`$u0`, `$u1`, ...).
        result_col: String,
    },
}

impl Unit {
    /// Display label for EXPLAIN output.
    pub fn label(&self) -> String {
        match self {
            Unit::Rel { alias, table, .. } => {
                if alias.eq_ignore_ascii_case(table) {
                    table.clone()
                } else {
                    format!("{table} {alias}")
                }
            }
            Unit::Udf { name, args, .. } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                format!("{name}({})", args.join(", "))
            }
        }
    }
}

/// A classified predicate.
#[derive(Debug, Clone)]
pub struct PredInfo {
    /// The (UDF-rewritten) predicate expression.
    pub expr: Expr,
    /// Bitmask of units whose columns it references (must all be applied
    /// before the predicate can be evaluated anywhere).
    pub required: u64,
    /// Estimated selectivity.
    pub selectivity: f64,
    /// True when it references at least one UDF result column — these are
    /// the *pushable predicate* candidates of §2.
    pub references_udf: bool,
}

/// The extracted query: units, predicates, output.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    /// Relations first, then UDF units.
    pub units: Vec<Unit>,
    /// How many leading units are relations.
    pub n_rels: usize,
    /// Classified WHERE conjuncts.
    pub predicates: Vec<PredInfo>,
    /// Output expressions (UDF-rewritten) with display names.
    pub output: Vec<(Expr, String)>,
}

impl QueryGraph {
    /// Total number of units.
    pub fn n_units(&self) -> usize {
        self.units.len()
    }

    /// Bitmask with every unit set.
    pub fn full_mask(&self) -> u64 {
        (1u64 << self.units.len()) - 1
    }

    /// The unit index owning a column reference, if any.
    pub fn owner_of(&self, col: &ColumnRef) -> Option<usize> {
        // Synthetic UDF result columns.
        for (i, u) in self.units.iter().enumerate() {
            if let Unit::Udf { result_col, .. } = u {
                if col.qualifier.is_none() && col.name == *result_col {
                    return Some(i);
                }
            }
        }
        // Relation columns by qualifier, then by unique name.
        if let Some(q) = &col.qualifier {
            for (i, u) in self.units.iter().enumerate() {
                if let Unit::Rel { alias, .. } = u {
                    if alias.eq_ignore_ascii_case(q) {
                        return Some(i);
                    }
                }
            }
            return None;
        }
        let mut found = None;
        for (i, u) in self.units.iter().enumerate() {
            if let Unit::Rel { stats, .. } = u {
                if stats.schema.index_of(None, &col.name).is_ok() {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(i);
                }
            }
        }
        found
    }

    /// Bitmask of units required by an expression.
    pub fn required_units(&self, expr: &Expr) -> Result<u64> {
        let mut mask = 0u64;
        for col in analysis::columns_referenced(expr) {
            let owner = self
                .owner_of(&col)
                .ok_or_else(|| CsqError::Plan(format!("unresolvable column '{col}' in query")))?;
            mask |= 1 << owner;
            // A UDF result reference also requires the UDF's prerequisites;
            // handled transitively by the DP (the UDF unit itself encodes
            // them), so the direct bit is enough here.
        }
        Ok(mask)
    }

    /// Prerequisite mask of a unit: relations providing a UDF's argument
    /// columns plus any UDF units whose results it consumes. Relations have
    /// no prerequisites.
    pub fn prereq_mask(&self, unit: usize) -> u64 {
        match &self.units[unit] {
            Unit::Rel { .. } => 0,
            Unit::Udf { args, .. } => {
                let mut mask = 0u64;
                for a in args {
                    if let Some(o) = self.owner_of(a) {
                        mask |= 1 << o;
                        mask |= self.prereq_mask(o);
                    }
                }
                mask
            }
        }
    }

    /// Average wire size of a column, bytes.
    pub fn col_bytes(&self, col: &ColumnRef) -> f64 {
        match self.owner_of(col) {
            Some(i) => match &self.units[i] {
                Unit::Rel { stats, .. } => stats
                    .schema
                    .index_of(None, &col.name)
                    .map(|idx| stats.col_bytes[idx])
                    .unwrap_or(16.0),
                Unit::Udf { meta, .. } => meta.result_bytes,
            },
            None => 16.0,
        }
    }

    /// All columns referenced by the output and by predicates/UDF args not
    /// yet applied — what later stages still need.
    pub fn needed_columns(&self, applied_preds: u64, applied_units: u64) -> BTreeSet<ColumnRef> {
        let mut need = BTreeSet::new();
        for (e, _) in &self.output {
            need.extend(analysis::columns_referenced(e));
        }
        for (pi, p) in self.predicates.iter().enumerate() {
            if applied_preds & (1 << pi) == 0 {
                need.extend(analysis::columns_referenced(&p.expr));
            }
        }
        for (ui, u) in self.units.iter().enumerate() {
            if applied_units & (1 << ui) == 0 {
                if let Unit::Udf { args, .. } = u {
                    need.extend(args.iter().cloned());
                }
            }
        }
        need
    }
}

/// Extract the query graph from a parsed SELECT, rewriting client-site UDF
/// calls into synthetic result-column references.
pub fn extract(stmt: &SelectStmt, ctx: &OptContext) -> Result<QueryGraph> {
    // Relations.
    let mut units = Vec::new();
    for t in &stmt.from {
        let stats = ctx.table(&t.name)?.clone();
        units.push(Unit::Rel {
            alias: t.alias.clone(),
            table: t.name.clone(),
            stats,
        });
    }
    let n_rels = units.len();

    // Walk every expression, extracting client UDF calls bottom-up.
    let mut udf_units: Vec<Unit> = Vec::new();
    let mut rewrite = |e: &Expr| -> Result<Expr> { extract_udfs(e.clone(), ctx, &mut udf_units) };

    let mut output = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for u in &units {
                    if let Unit::Rel { alias, stats, .. } = u {
                        for f in stats.schema.fields() {
                            output.push((
                                Expr::Column(ColumnRef::qualified(alias.clone(), f.name.clone())),
                                f.name.clone(),
                            ));
                        }
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let rewritten = rewrite(expr)?;
                let name = alias.clone().unwrap_or_else(|| expr.to_string());
                output.push((rewritten, name));
            }
        }
    }

    let mut conjuncts = Vec::new();
    if let Some(w) = &stmt.where_clause {
        for c in analysis::split_conjuncts(w) {
            conjuncts.push(rewrite(&c)?);
        }
    }

    units.extend(udf_units);

    let graph_partial = QueryGraph {
        units,
        n_rels,
        predicates: vec![],
        output,
    };

    let mut predicates = Vec::new();
    for c in conjuncts {
        let required = graph_partial.required_units(&c)?;
        let references_udf = {
            let mut refs = false;
            for col in analysis::columns_referenced(&c) {
                if let Some(i) = graph_partial.owner_of(&col) {
                    if matches!(graph_partial.units[i], Unit::Udf { .. }) {
                        refs = true;
                    }
                }
            }
            refs
        };
        let selectivity = estimate_pred_selectivity(&c, &graph_partial, ctx);
        predicates.push(PredInfo {
            expr: c,
            required,
            selectivity,
            references_udf,
        });
    }

    let mut graph = graph_partial;
    graph.predicates = predicates;

    // Validate output columns resolve.
    for (e, _) in &graph.output {
        graph.required_units(e)?;
    }
    Ok(graph)
}

/// Recursively extract client-site UDF calls, appending units and replacing
/// calls with synthetic column references. Non-client UDFs are rejected
/// (this system optimizes client-site extensions; server UDFs would be a
/// different code path).
fn extract_udfs(e: Expr, ctx: &OptContext, units: &mut Vec<Unit>) -> Result<Expr> {
    Ok(match e {
        Expr::Udf { name, args } => {
            if !ctx.is_client_udf(&name) {
                return Err(CsqError::Plan(format!(
                    "unknown or non-client UDF '{name}' (register it with the client \
                     and advertise metadata to the server)"
                )));
            }
            let meta = ctx.udf(&name)?.clone();
            // Arguments must reduce to plain column references (possibly of
            // other UDF results after extraction).
            let mut arg_cols = Vec::with_capacity(args.len());
            for a in args {
                let a = extract_udfs(a, ctx, units)?;
                match a {
                    Expr::Column(c) => arg_cols.push(c),
                    other => {
                        return Err(CsqError::Plan(format!(
                            "UDF '{name}': argument '{other}' is not a plain column; \
                             computed arguments to client-site UDFs are unsupported"
                        )))
                    }
                }
            }
            if meta.arg_types.len() != arg_cols.len() {
                return Err(CsqError::Plan(format!(
                    "UDF '{name}': expected {} arguments, got {}",
                    meta.arg_types.len(),
                    arg_cols.len()
                )));
            }
            // Re-use an existing unit for an identical call (common when
            // the same call appears in SELECT and WHERE).
            for u in units.iter() {
                if let Unit::Udf {
                    name: n,
                    args: a,
                    result_col,
                    ..
                } = u
                {
                    if n.eq_ignore_ascii_case(&name) && *a == arg_cols {
                        return Ok(Expr::Column(ColumnRef::bare(result_col.clone())));
                    }
                }
            }
            let result_col = format!("$u{}", units.len());
            units.push(Unit::Udf {
                name,
                meta,
                args: arg_cols,
                result_col: result_col.clone(),
            });
            Expr::Column(ColumnRef::bare(result_col))
        }
        Expr::Literal(_) | Expr::Column(_) => e,
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(extract_udfs(*expr, ctx, units)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(extract_udfs(*left, ctx, units)?),
            op,
            right: Box::new(extract_udfs(*right, ctx, units)?),
        },
    })
}

/// Selectivity of a rewritten predicate: UDF-result comparisons use the
/// UDF's advertised selectivity; everything else uses the standard
/// heuristics.
fn estimate_pred_selectivity(e: &Expr, graph: &QueryGraph, _ctx: &OptContext) -> f64 {
    // If the predicate references exactly one UDF result and compares it,
    // use that UDF's advertised selectivity.
    let mut udf_sel: Option<f64> = None;
    for col in analysis::columns_referenced(e) {
        if let Some(i) = graph.owner_of(&col) {
            if let Unit::Udf { meta, .. } = &graph.units[i] {
                udf_sel = Some(match udf_sel {
                    None => meta.selectivity,
                    Some(s) => s.min(meta.selectivity),
                });
            }
        }
    }
    match udf_sel {
        Some(s) => s,
        None => analysis::estimate_selectivity(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::{DataType, Field, Schema};
    use csq_net::NetworkSpec;
    use csq_sql::parse_statement;

    fn ctx() -> OptContext {
        let mut ctx = OptContext::new(NetworkSpec::modem_28_8());
        ctx.add_table(
            "StockQuotes",
            TableStats {
                schema: Schema::new(vec![
                    Field::new("Name", DataType::Str),
                    Field::new("Quotes", DataType::Blob),
                    Field::new("FuturePrices", DataType::Blob),
                    Field::new("Change", DataType::Float),
                    Field::new("Close", DataType::Float),
                ]),
                rows: 100.0,
                row_bytes: 1000.0,
                col_bytes: vec![20.0, 480.0, 482.0, 9.0, 9.0],
            },
        );
        ctx.add_table(
            "Estimations",
            TableStats {
                schema: Schema::new(vec![
                    Field::new("CompanyName", DataType::Str),
                    Field::new("BrokerName", DataType::Str),
                    Field::new("Rating", DataType::Int),
                ]),
                rows: 500.0,
                row_bytes: 49.0,
                col_bytes: vec![20.0, 20.0, 9.0],
            },
        );
        ctx.add_udf(
            UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
                .with_result_bytes(9.0)
                .with_selectivity(0.2),
        );
        ctx.add_udf(
            UdfMeta::client(
                "Volatility",
                vec![DataType::Blob, DataType::Blob],
                DataType::Float,
            )
            .with_result_bytes(9.0),
        );
        ctx
    }

    fn fig11() -> SelectStmt {
        let s = parse_statement(
            "SELECT S.Name, E.BrokerName \
             FROM StockQuotes S, Estimations E \
             WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating",
        )
        .unwrap();
        match s {
            csq_sql::Statement::Select(sel) => sel,
            _ => unreachable!(),
        }
    }

    #[test]
    fn fig11_units_and_predicates() {
        let g = extract(&fig11(), &ctx()).unwrap();
        assert_eq!(g.n_rels, 2);
        assert_eq!(g.n_units(), 3);
        assert_eq!(g.units[2].label(), "ClientAnalysis(S.Quotes)");
        assert_eq!(g.predicates.len(), 2);
        // Join predicate requires S and E.
        assert_eq!(g.predicates[0].required, 0b011);
        assert!(!g.predicates[0].references_udf);
        // UDF predicate requires E and the UDF unit.
        assert_eq!(g.predicates[1].required & 0b100, 0b100);
        assert!(g.predicates[1].references_udf);
        // UDF unit prerequisite is S.
        assert_eq!(g.prereq_mask(2), 0b001);
    }

    #[test]
    fn duplicate_udf_calls_share_a_unit() {
        let stmt = parse_statement(
            "SELECT ClientAnalysis(S.Quotes) FROM StockQuotes S \
             WHERE ClientAnalysis(S.Quotes) > 100",
        )
        .unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let g = extract(&sel, &ctx()).unwrap();
        assert_eq!(g.n_units(), 2, "one relation + one shared UDF unit");
    }

    #[test]
    fn nested_udfs_create_dependent_units() {
        let stmt = parse_statement(
            "SELECT Volatility(S.Quotes, S.FuturePrices) FROM StockQuotes S \
             WHERE ClientAnalysis(S.Quotes) > 0",
        )
        .unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let g = extract(&sel, &ctx()).unwrap();
        assert_eq!(g.n_units(), 3);
        // Both UDFs depend only on S.
        assert_eq!(g.prereq_mask(1), 0b001);
        assert_eq!(g.prereq_mask(2), 0b001);
    }

    #[test]
    fn computed_udf_arguments_rejected() {
        let stmt = parse_statement("SELECT ClientAnalysis(S.Change / S.Close) FROM StockQuotes S")
            .unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert_eq!(extract(&sel, &ctx()).unwrap_err().kind(), "plan");
    }

    #[test]
    fn unknown_udf_rejected() {
        let stmt = parse_statement("SELECT Mystery(S.Quotes) FROM StockQuotes S").unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert_eq!(extract(&sel, &ctx()).unwrap_err().kind(), "plan");
    }

    #[test]
    fn udf_selectivity_used_for_predicates() {
        let g = extract(&fig11(), &ctx()).unwrap();
        // ClientAnalysis advertises 0.2.
        assert!((g.predicates[1].selectivity - 0.2).abs() < 1e-9);
    }

    #[test]
    fn needed_columns_shrink_as_preds_apply() {
        let g = extract(&fig11(), &ctx()).unwrap();
        let all = g.needed_columns(0, 0);
        assert!(all.contains(&ColumnRef::qualified("S", "Quotes")));
        let after = g.needed_columns(0b11, g.full_mask());
        // Only output columns remain.
        assert!(after.contains(&ColumnRef::qualified("S", "Name")));
        assert!(!after.contains(&ColumnRef::qualified("S", "Quotes")));
    }
}
