//! Query-graph extraction: relations and UDF calls become *units*,
//! predicates are classified by the units they require, and every
//! client-site UDF call in the query text is replaced by a reference to its
//! synthetic result column.

use std::collections::BTreeSet;

use csq_common::{CsqError, Result};
use csq_expr::{analysis, AggFunc, ColumnRef, Expr};
use csq_sql::ast::{SelectItem, SelectStmt};

use crate::context::{OptContext, TableStats, UdfMeta};

/// One optimization unit: a base relation or a client-site UDF call
/// (a virtual join with the UDF's virtual table, §2.2).
#[derive(Debug, Clone)]
pub enum Unit {
    /// A base relation from the FROM clause.
    Rel {
        /// FROM alias.
        alias: String,
        /// Catalog table name.
        table: String,
        /// Statistics snapshot.
        stats: TableStats,
    },
    /// A client-site UDF call.
    Udf {
        /// Registered name.
        name: String,
        /// Metadata (result size, selectivity).
        meta: UdfMeta,
        /// Argument columns (qualified, or references to other UDFs'
        /// synthetic result columns).
        args: Vec<ColumnRef>,
        /// Synthetic result column name (`$u0`, `$u1`, ...).
        result_col: String,
    },
}

impl Unit {
    /// Display label for EXPLAIN output.
    pub fn label(&self) -> String {
        match self {
            Unit::Rel { alias, table, .. } => {
                if alias.eq_ignore_ascii_case(table) {
                    table.clone()
                } else {
                    format!("{table} {alias}")
                }
            }
            Unit::Udf { name, args, .. } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                format!("{name}({})", args.join(", "))
            }
        }
    }
}

/// A classified predicate.
#[derive(Debug, Clone)]
pub struct PredInfo {
    /// The (UDF-rewritten) predicate expression.
    pub expr: Expr,
    /// Bitmask of units whose columns it references (must all be applied
    /// before the predicate can be evaluated anywhere).
    pub required: u64,
    /// Estimated selectivity.
    pub selectivity: f64,
    /// True when it references at least one UDF result column — these are
    /// the *pushable predicate* candidates of §2.
    pub references_udf: bool,
}

/// One aggregate call of a grouped query, rewritten into a synthetic
/// result-column reference (`$a0`, `$a1`, ...).
#[derive(Debug, Clone)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` = `COUNT(*)`); plain scalar, no UDFs.
    pub arg: Option<Expr>,
    /// Synthetic result column name.
    pub result_col: String,
}

/// The grouped-aggregation layer of a query: extracted GROUP BY keys,
/// aggregate calls, HAVING, and the final (post-aggregation) SELECT list.
/// The graph's own [`QueryGraph::output`] holds the *pre-aggregation*
/// columns (group keys + aggregate argument columns) the inner plan must
/// produce; the placement of the partial phase is the optimizer's choice
/// ([`crate::dp::optimize`]).
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// Grouping columns (canonicalized to `alias.name`).
    pub group_by: Vec<ColumnRef>,
    /// Aggregate calls in result-column order.
    pub calls: Vec<AggCall>,
    /// HAVING predicate over group columns and `$aN` references.
    pub having: Option<Expr>,
    /// Final SELECT list over group columns and `$aN` references, with
    /// display names.
    pub output: Vec<(Expr, String)>,
}

/// The extracted query: units, predicates, output.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    /// Relations first, then UDF units.
    pub units: Vec<Unit>,
    /// How many leading units are relations.
    pub n_rels: usize,
    /// Classified WHERE conjuncts.
    pub predicates: Vec<PredInfo>,
    /// Output expressions (UDF-rewritten) with display names. For grouped
    /// queries these are the *pre-aggregation* columns (group keys +
    /// aggregate arguments); the post-aggregation list lives in
    /// [`QueryGraph::aggregate`].
    pub output: Vec<(Expr, String)>,
    /// The grouped-aggregation layer, when the query has GROUP BY/HAVING or
    /// aggregate calls.
    pub aggregate: Option<AggregateSpec>,
}

impl QueryGraph {
    /// Total number of units.
    pub fn n_units(&self) -> usize {
        self.units.len()
    }

    /// Bitmask with every unit set.
    pub fn full_mask(&self) -> u64 {
        (1u64 << self.units.len()) - 1
    }

    /// The unit index owning a column reference, if any.
    pub fn owner_of(&self, col: &ColumnRef) -> Option<usize> {
        // Synthetic UDF result columns.
        for (i, u) in self.units.iter().enumerate() {
            if let Unit::Udf { result_col, .. } = u {
                if col.qualifier.is_none() && col.name == *result_col {
                    return Some(i);
                }
            }
        }
        // Relation columns by qualifier, then by unique name.
        if let Some(q) = &col.qualifier {
            for (i, u) in self.units.iter().enumerate() {
                if let Unit::Rel { alias, .. } = u {
                    if alias.eq_ignore_ascii_case(q) {
                        return Some(i);
                    }
                }
            }
            return None;
        }
        let mut found = None;
        for (i, u) in self.units.iter().enumerate() {
            if let Unit::Rel { stats, .. } = u {
                if stats.schema.index_of(None, &col.name).is_ok() {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(i);
                }
            }
        }
        found
    }

    /// Bitmask of units required by an expression.
    pub fn required_units(&self, expr: &Expr) -> Result<u64> {
        let mut mask = 0u64;
        for col in analysis::columns_referenced(expr) {
            let owner = self
                .owner_of(&col)
                .ok_or_else(|| CsqError::Plan(format!("unresolvable column '{col}' in query")))?;
            mask |= 1 << owner;
            // A UDF result reference also requires the UDF's prerequisites;
            // handled transitively by the DP (the UDF unit itself encodes
            // them), so the direct bit is enough here.
        }
        Ok(mask)
    }

    /// Prerequisite mask of a unit: relations providing a UDF's argument
    /// columns plus any UDF units whose results it consumes. Relations have
    /// no prerequisites.
    pub fn prereq_mask(&self, unit: usize) -> u64 {
        match &self.units[unit] {
            Unit::Rel { .. } => 0,
            Unit::Udf { args, .. } => {
                let mut mask = 0u64;
                for a in args {
                    if let Some(o) = self.owner_of(a) {
                        mask |= 1 << o;
                        mask |= self.prereq_mask(o);
                    }
                }
                mask
            }
        }
    }

    /// Average wire size of a column, bytes.
    pub fn col_bytes(&self, col: &ColumnRef) -> f64 {
        match self.owner_of(col) {
            Some(i) => match &self.units[i] {
                Unit::Rel { stats, .. } => stats
                    .schema
                    .index_of(None, &col.name)
                    .map(|idx| stats.col_bytes[idx])
                    .unwrap_or(16.0),
                Unit::Udf { meta, .. } => meta.result_bytes,
            },
            None => 16.0,
        }
    }

    /// The SELECT list execution projects onto: the post-aggregation list
    /// for grouped queries, the plain output otherwise.
    pub fn final_output(&self) -> &[(Expr, String)] {
        match &self.aggregate {
            Some(a) => &a.output,
            None => &self.output,
        }
    }

    /// Canonical display name of a column reference: bare relation columns
    /// resolve to `alias.name`, UDF results to their synthetic column.
    pub fn canonical_name(&self, c: &ColumnRef) -> String {
        if c.qualifier.is_some() {
            return c.to_string();
        }
        if let Some(i) = self.owner_of(c) {
            match &self.units[i] {
                Unit::Udf { result_col, .. } => result_col.clone(),
                Unit::Rel { alias, .. } => format!("{alias}.{}", c.name),
            }
        } else {
            c.to_string()
        }
    }

    /// All columns referenced by the output and by predicates/UDF args not
    /// yet applied — what later stages still need.
    pub fn needed_columns(&self, applied_preds: u64, applied_units: u64) -> BTreeSet<ColumnRef> {
        let mut need = BTreeSet::new();
        for (e, _) in &self.output {
            need.extend(analysis::columns_referenced(e));
        }
        for (pi, p) in self.predicates.iter().enumerate() {
            if applied_preds & (1 << pi) == 0 {
                need.extend(analysis::columns_referenced(&p.expr));
            }
        }
        for (ui, u) in self.units.iter().enumerate() {
            if applied_units & (1 << ui) == 0 {
                if let Unit::Udf { args, .. } = u {
                    need.extend(args.iter().cloned());
                }
            }
        }
        need
    }
}

/// Extract aggregate calls bottom-up, replacing each with a reference to
/// its synthetic result column (identical calls share one column).
fn extract_aggs(e: Expr, calls: &mut Vec<AggCall>) -> Result<Expr> {
    Ok(match e {
        Expr::Aggregate { func, arg } => {
            let arg = arg.map(|a| *a);
            if let Some(a) = &arg {
                if analysis::contains_aggregate(a) {
                    return Err(CsqError::Plan(format!(
                        "aggregate calls cannot be nested inside {}",
                        func.name()
                    )));
                }
                if analysis::contains_udf(a) {
                    return Err(CsqError::Plan(format!(
                        "client-site UDF calls inside {} arguments are unsupported",
                        func.name()
                    )));
                }
            }
            for c in calls.iter() {
                if c.func == func
                    && c.arg.as_ref().map(|x| x.to_string()) == arg.as_ref().map(|x| x.to_string())
                {
                    return Ok(Expr::Column(ColumnRef::bare(c.result_col.clone())));
                }
            }
            let result_col = format!("$a{}", calls.len());
            calls.push(AggCall {
                func,
                arg,
                result_col: result_col.clone(),
            });
            Expr::Column(ColumnRef::bare(result_col))
        }
        Expr::Literal(_) | Expr::Column(_) => e,
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(extract_aggs(*expr, calls)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(extract_aggs(*left, calls)?),
            op,
            right: Box::new(extract_aggs(*right, calls)?),
        },
        Expr::Udf { name, args } => Expr::Udf {
            name,
            args: args
                .into_iter()
                .map(|a| extract_aggs(a, calls))
                .collect::<Result<_>>()?,
        },
    })
}

/// Extract the query graph from a parsed SELECT, rewriting client-site UDF
/// calls into synthetic result-column references.
pub fn extract(stmt: &SelectStmt, ctx: &OptContext) -> Result<QueryGraph> {
    // Relations.
    let mut units = Vec::new();
    for t in &stmt.from {
        let stats = ctx.table(&t.name)?.clone();
        units.push(Unit::Rel {
            alias: t.alias.clone(),
            table: t.name.clone(),
            stats,
        });
    }
    let n_rels = units.len();

    let agg_mode = !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || stmt.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => analysis::contains_aggregate(expr),
            SelectItem::Wildcard => false,
        });
    if stmt.having.is_some() && stmt.group_by.is_empty() {
        return Err(CsqError::Plan("HAVING requires a GROUP BY clause".into()));
    }
    if let Some(w) = &stmt.where_clause {
        if analysis::contains_aggregate(w) {
            return Err(CsqError::Plan(
                "aggregate calls are not allowed in WHERE (use HAVING)".into(),
            ));
        }
    }

    // Walk every expression, extracting client UDF calls bottom-up.
    let mut udf_units: Vec<Unit> = Vec::new();
    let mut rewrite = |e: &Expr| -> Result<Expr> { extract_udfs(e.clone(), ctx, &mut udf_units) };

    // In aggregate mode the SELECT list and HAVING are rewritten over
    // synthetic aggregate result columns; the graph's own output becomes
    // the pre-aggregation columns the inner plan must produce.
    let mut agg_calls: Vec<AggCall> = Vec::new();
    let mut agg_final: Vec<(Expr, String)> = Vec::new();
    let mut agg_having: Option<Expr> = None;

    let mut output = Vec::new();
    if agg_mode {
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(CsqError::Plan(
                        "SELECT * cannot be combined with GROUP BY or aggregates".into(),
                    ));
                }
                SelectItem::Expr { expr, alias } => {
                    let rewritten = extract_aggs(expr.clone(), &mut agg_calls)?;
                    if analysis::contains_udf(&rewritten) {
                        return Err(CsqError::Plan(
                            "client-site UDF calls in a grouped SELECT list are unsupported \
                             (apply the UDF in WHERE or a subquery-free projection instead)"
                                .into(),
                        ));
                    }
                    let name = alias.clone().unwrap_or_else(|| expr.to_string());
                    agg_final.push((rewritten, name));
                }
            }
        }
        if let Some(h) = &stmt.having {
            let rewritten = extract_aggs(h.clone(), &mut agg_calls)?;
            if analysis::contains_udf(&rewritten) {
                return Err(CsqError::Plan(
                    "client-site UDF calls in HAVING are unsupported".into(),
                ));
            }
            agg_having = Some(rewritten);
        }
    } else {
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for u in &units {
                        if let Unit::Rel { alias, stats, .. } = u {
                            for f in stats.schema.fields() {
                                output.push((
                                    Expr::Column(ColumnRef::qualified(
                                        alias.clone(),
                                        f.name.clone(),
                                    )),
                                    f.name.clone(),
                                ));
                            }
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let rewritten = rewrite(expr)?;
                    let name = alias.clone().unwrap_or_else(|| expr.to_string());
                    output.push((rewritten, name));
                }
            }
        }
    }

    let mut conjuncts = Vec::new();
    if let Some(w) = &stmt.where_clause {
        for c in analysis::split_conjuncts(w) {
            conjuncts.push(rewrite(&c)?);
        }
    }

    units.extend(udf_units);

    let mut graph_partial = QueryGraph {
        units,
        n_rels,
        predicates: vec![],
        output,
        aggregate: None,
    };

    if agg_mode {
        // Canonicalize the grouping columns and validate that every
        // non-aggregate reference in the SELECT list / HAVING is grouped.
        let mut group_by = Vec::new();
        let mut group_set = BTreeSet::new();
        for e in &stmt.group_by {
            let Expr::Column(c) = e else {
                return Err(CsqError::Plan(format!(
                    "GROUP BY expressions must be plain columns, got '{e}'"
                )));
            };
            let Some(owner) = graph_partial.owner_of(c) else {
                return Err(CsqError::Plan(format!(
                    "unresolvable column '{c}' in GROUP BY"
                )));
            };
            let Unit::Rel { alias, .. } = &graph_partial.units[owner] else {
                return Err(CsqError::Plan(format!(
                    "GROUP BY column '{c}' must come from a base relation"
                )));
            };
            let canon = ColumnRef::qualified(alias.clone(), c.name.clone());
            // Duplicate keys (`GROUP BY t.k, t.k` or `t.k, k`) are legal
            // SQL and group identically — keep one.
            if group_set.insert(canon.to_string()) {
                group_by.push(canon);
            }
        }
        let result_cols: BTreeSet<&str> = agg_calls.iter().map(|c| c.result_col.as_str()).collect();
        let check_grouped = |e: &Expr| -> Result<()> {
            for c in analysis::columns_referenced(e) {
                if c.qualifier.is_none() && result_cols.contains(c.name.as_str()) {
                    continue;
                }
                if !group_set.contains(&graph_partial.canonical_name(&c)) {
                    return Err(CsqError::Plan(format!(
                        "column '{c}' must appear in GROUP BY or inside an aggregate"
                    )));
                }
            }
            Ok(())
        };
        for (e, _) in &agg_final {
            check_grouped(e)?;
        }
        if let Some(h) = &agg_having {
            check_grouped(h)?;
        }

        // Pre-aggregation output: group keys + aggregate argument columns.
        let mut pre = Vec::new();
        let mut seen = BTreeSet::new();
        for g in &group_by {
            if seen.insert(g.to_string()) {
                pre.push((Expr::Column(g.clone()), g.to_string()));
            }
        }
        for call in &agg_calls {
            if let Some(a) = &call.arg {
                for c in analysis::columns_referenced(a) {
                    let canon = graph_partial.canonical_name(&c);
                    if seen.insert(canon.clone()) {
                        pre.push((Expr::Column(c), canon));
                    }
                }
            }
        }
        graph_partial.output = pre;
        graph_partial.aggregate = Some(AggregateSpec {
            group_by,
            calls: agg_calls,
            having: agg_having,
            output: agg_final,
        });
    }

    let mut predicates = Vec::new();
    for c in conjuncts {
        let required = graph_partial.required_units(&c)?;
        let references_udf = {
            let mut refs = false;
            for col in analysis::columns_referenced(&c) {
                if let Some(i) = graph_partial.owner_of(&col) {
                    if matches!(graph_partial.units[i], Unit::Udf { .. }) {
                        refs = true;
                    }
                }
            }
            refs
        };
        let selectivity = estimate_pred_selectivity(&c, &graph_partial, ctx);
        predicates.push(PredInfo {
            expr: c,
            required,
            selectivity,
            references_udf,
        });
    }

    let mut graph = graph_partial;
    graph.predicates = predicates;

    // Validate output columns resolve.
    for (e, _) in &graph.output {
        graph.required_units(e)?;
    }
    Ok(graph)
}

/// Recursively extract client-site UDF calls, appending units and replacing
/// calls with synthetic column references. Non-client UDFs are rejected
/// (this system optimizes client-site extensions; server UDFs would be a
/// different code path).
fn extract_udfs(e: Expr, ctx: &OptContext, units: &mut Vec<Unit>) -> Result<Expr> {
    Ok(match e {
        Expr::Udf { name, args } => {
            if !ctx.is_client_udf(&name) {
                return Err(CsqError::Plan(format!(
                    "unknown or non-client UDF '{name}' (register it with the client \
                     and advertise metadata to the server)"
                )));
            }
            let meta = ctx.udf(&name)?.clone();
            // Arguments must reduce to plain column references (possibly of
            // other UDF results after extraction).
            let mut arg_cols = Vec::with_capacity(args.len());
            for a in args {
                let a = extract_udfs(a, ctx, units)?;
                match a {
                    Expr::Column(c) => arg_cols.push(c),
                    other => {
                        return Err(CsqError::Plan(format!(
                            "UDF '{name}': argument '{other}' is not a plain column; \
                             computed arguments to client-site UDFs are unsupported"
                        )))
                    }
                }
            }
            if meta.arg_types.len() != arg_cols.len() {
                return Err(CsqError::Plan(format!(
                    "UDF '{name}': expected {} arguments, got {}",
                    meta.arg_types.len(),
                    arg_cols.len()
                )));
            }
            // Re-use an existing unit for an identical call (common when
            // the same call appears in SELECT and WHERE).
            for u in units.iter() {
                if let Unit::Udf {
                    name: n,
                    args: a,
                    result_col,
                    ..
                } = u
                {
                    if n.eq_ignore_ascii_case(&name) && *a == arg_cols {
                        return Ok(Expr::Column(ColumnRef::bare(result_col.clone())));
                    }
                }
            }
            let result_col = format!("$u{}", units.len());
            units.push(Unit::Udf {
                name,
                meta,
                args: arg_cols,
                result_col: result_col.clone(),
            });
            Expr::Column(ColumnRef::bare(result_col))
        }
        Expr::Literal(_) | Expr::Column(_) => e,
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(extract_udfs(*expr, ctx, units)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(extract_udfs(*left, ctx, units)?),
            op,
            right: Box::new(extract_udfs(*right, ctx, units)?),
        },
        Expr::Aggregate { func, .. } => {
            // Aggregates are extracted (into `$aN` references) before UDF
            // extraction runs; reaching one here means it sits somewhere
            // aggregates are not allowed (e.g. WHERE).
            return Err(CsqError::Plan(format!(
                "aggregate {} is not allowed here",
                func.name()
            )));
        }
    })
}

/// Selectivity of a rewritten predicate: UDF-result comparisons use the
/// UDF's advertised selectivity; everything else uses the standard
/// heuristics.
fn estimate_pred_selectivity(e: &Expr, graph: &QueryGraph, _ctx: &OptContext) -> f64 {
    // If the predicate references exactly one UDF result and compares it,
    // use that UDF's advertised selectivity.
    let mut udf_sel: Option<f64> = None;
    for col in analysis::columns_referenced(e) {
        if let Some(i) = graph.owner_of(&col) {
            if let Unit::Udf { meta, .. } = &graph.units[i] {
                udf_sel = Some(match udf_sel {
                    None => meta.selectivity,
                    Some(s) => s.min(meta.selectivity),
                });
            }
        }
    }
    match udf_sel {
        Some(s) => s,
        None => analysis::estimate_selectivity(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::{DataType, Field, Schema};
    use csq_net::NetworkSpec;
    use csq_sql::parse_statement;

    fn ctx() -> OptContext {
        let mut ctx = OptContext::new(NetworkSpec::modem_28_8());
        ctx.add_table(
            "StockQuotes",
            TableStats {
                schema: Schema::new(vec![
                    Field::new("Name", DataType::Str),
                    Field::new("Quotes", DataType::Blob),
                    Field::new("FuturePrices", DataType::Blob),
                    Field::new("Change", DataType::Float),
                    Field::new("Close", DataType::Float),
                ]),
                rows: 100.0,
                row_bytes: 1000.0,
                col_bytes: vec![20.0, 480.0, 482.0, 9.0, 9.0],
                segments: Vec::new(),
            },
        );
        ctx.add_table(
            "Estimations",
            TableStats {
                schema: Schema::new(vec![
                    Field::new("CompanyName", DataType::Str),
                    Field::new("BrokerName", DataType::Str),
                    Field::new("Rating", DataType::Int),
                ]),
                rows: 500.0,
                row_bytes: 49.0,
                col_bytes: vec![20.0, 20.0, 9.0],
                segments: Vec::new(),
            },
        );
        ctx.add_udf(
            UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
                .with_result_bytes(9.0)
                .with_selectivity(0.2),
        );
        ctx.add_udf(
            UdfMeta::client(
                "Volatility",
                vec![DataType::Blob, DataType::Blob],
                DataType::Float,
            )
            .with_result_bytes(9.0),
        );
        ctx
    }

    fn fig11() -> SelectStmt {
        let s = parse_statement(
            "SELECT S.Name, E.BrokerName \
             FROM StockQuotes S, Estimations E \
             WHERE S.Name = E.CompanyName AND ClientAnalysis(S.Quotes) = E.Rating",
        )
        .unwrap();
        match s {
            csq_sql::Statement::Select(sel) => sel,
            _ => unreachable!(),
        }
    }

    #[test]
    fn fig11_units_and_predicates() {
        let g = extract(&fig11(), &ctx()).unwrap();
        assert_eq!(g.n_rels, 2);
        assert_eq!(g.n_units(), 3);
        assert_eq!(g.units[2].label(), "ClientAnalysis(S.Quotes)");
        assert_eq!(g.predicates.len(), 2);
        // Join predicate requires S and E.
        assert_eq!(g.predicates[0].required, 0b011);
        assert!(!g.predicates[0].references_udf);
        // UDF predicate requires E and the UDF unit.
        assert_eq!(g.predicates[1].required & 0b100, 0b100);
        assert!(g.predicates[1].references_udf);
        // UDF unit prerequisite is S.
        assert_eq!(g.prereq_mask(2), 0b001);
    }

    #[test]
    fn duplicate_udf_calls_share_a_unit() {
        let stmt = parse_statement(
            "SELECT ClientAnalysis(S.Quotes) FROM StockQuotes S \
             WHERE ClientAnalysis(S.Quotes) > 100",
        )
        .unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let g = extract(&sel, &ctx()).unwrap();
        assert_eq!(g.n_units(), 2, "one relation + one shared UDF unit");
    }

    #[test]
    fn nested_udfs_create_dependent_units() {
        let stmt = parse_statement(
            "SELECT Volatility(S.Quotes, S.FuturePrices) FROM StockQuotes S \
             WHERE ClientAnalysis(S.Quotes) > 0",
        )
        .unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let g = extract(&sel, &ctx()).unwrap();
        assert_eq!(g.n_units(), 3);
        // Both UDFs depend only on S.
        assert_eq!(g.prereq_mask(1), 0b001);
        assert_eq!(g.prereq_mask(2), 0b001);
    }

    #[test]
    fn computed_udf_arguments_rejected() {
        let stmt = parse_statement("SELECT ClientAnalysis(S.Change / S.Close) FROM StockQuotes S")
            .unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert_eq!(extract(&sel, &ctx()).unwrap_err().kind(), "plan");
    }

    #[test]
    fn unknown_udf_rejected() {
        let stmt = parse_statement("SELECT Mystery(S.Quotes) FROM StockQuotes S").unwrap();
        let sel = match stmt {
            csq_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert_eq!(extract(&sel, &ctx()).unwrap_err().kind(), "plan");
    }

    #[test]
    fn udf_selectivity_used_for_predicates() {
        let g = extract(&fig11(), &ctx()).unwrap();
        // ClientAnalysis advertises 0.2.
        assert!((g.predicates[1].selectivity - 0.2).abs() < 1e-9);
    }

    #[test]
    fn needed_columns_shrink_as_preds_apply() {
        let g = extract(&fig11(), &ctx()).unwrap();
        let all = g.needed_columns(0, 0);
        assert!(all.contains(&ColumnRef::qualified("S", "Quotes")));
        let after = g.needed_columns(0b11, g.full_mask());
        // Only output columns remain.
        assert!(after.contains(&ColumnRef::qualified("S", "Name")));
        assert!(!after.contains(&ColumnRef::qualified("S", "Quotes")));
    }
}
