//! The pre-paper baseline: rank-order placement of expensive predicates.
//!
//! §5 argues that rank-order optimizers (\[HS93], \[CS97]) mis-plan
//! client-site UDFs because they assume (a) a UDF's per-tuple cost is
//! position-independent and (b) duplicates never matter. This baseline
//! reproduces that behaviour: UDFs are applied with the plain
//! semi-join-return strategy (no grouping, no leave-on-client, no client
//! pushdowns, no final merging), placed purely by the System-R
//! selection-eager heuristic. The `ablate_rank_order` bench compares its
//! plans against [`crate::optimize`].

use csq_common::Result;

use crate::context::OptContext;
use crate::dp::{optimize_inner, OptimizedPlan};
use crate::query::QueryGraph;

/// Optimize with the rank-order-style restricted strategy space.
pub fn rank_order_baseline(graph: &QueryGraph, opt: &OptContext) -> Result<OptimizedPlan> {
    optimize_inner(graph, opt, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{TableStats, UdfMeta};
    use crate::query::extract;
    use csq_common::{DataType, Field, Schema};
    use csq_net::NetworkSpec;
    use csq_sql::{parse_statement, Statement};

    fn select(sql: &str) -> csq_sql::SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        }
    }

    fn ctx() -> OptContext {
        let mut ctx = OptContext::new(NetworkSpec::cable_asymmetric());
        ctx.add_table(
            "StockQuotes",
            TableStats {
                schema: Schema::new(vec![
                    Field::new("Name", DataType::Str),
                    Field::new("Quotes", DataType::Blob),
                ]),
                rows: 100.0,
                row_bytes: 1020.0,
                col_bytes: vec![20.0, 1000.0],
                segments: Vec::new(),
            },
        );
        ctx.add_udf(
            UdfMeta::client("ClientAnalysis", vec![DataType::Blob], DataType::Int)
                .with_result_bytes(2000.0)
                .with_selectivity(0.1),
        );
        ctx
    }

    #[test]
    fn baseline_never_beats_full_optimizer() {
        let g = extract(
            &select("SELECT S.Name FROM StockQuotes S WHERE ClientAnalysis(S.Quotes) > 100"),
            &ctx(),
        )
        .unwrap();
        let full = crate::optimize(&g, &ctx()).unwrap();
        let base = rank_order_baseline(&g, &ctx()).unwrap();
        assert!(full.cost_seconds <= base.cost_seconds + 1e-12);
    }

    #[test]
    fn baseline_pays_uplink_for_big_results() {
        // With 2000-byte results on a 28.8k uplink the baseline must return
        // results; the full optimizer can push the predicate client-side and
        // avoid most of the uplink — a strict win.
        let g = extract(
            &select("SELECT S.Name FROM StockQuotes S WHERE ClientAnalysis(S.Quotes) > 100"),
            &ctx(),
        )
        .unwrap();
        let full = crate::optimize(&g, &ctx()).unwrap();
        let base = rank_order_baseline(&g, &ctx()).unwrap();
        assert!(
            full.cost_seconds < base.cost_seconds * 0.5,
            "full {} vs baseline {}",
            full.cost_seconds,
            base.cost_seconds
        );
    }
}
