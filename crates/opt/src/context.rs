//! Optimizer metadata: table statistics, UDF signatures-with-costs, and the
//! network description.
//!
//! The server never holds client UDF *implementations* — only the metadata a
//! client advertises at session setup: argument/result types, expected
//! result size (`R`), and expected selectivity when used as a predicate.

use std::collections::HashMap;

use csq_common::{CsqError, DataType, Result, Schema};
use csq_net::NetworkSpec;

/// Statistics for one base table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Unqualified schema, as in the catalog.
    pub schema: Schema,
    /// Row count.
    pub rows: f64,
    /// Average record wire size, bytes (the paper's `I`).
    pub row_bytes: f64,
    /// Average wire size of each column, bytes (for `A` and projection
    /// estimates); same order as the schema.
    pub col_bytes: Vec<f64>,
    /// Zone-map profile of the table's sealed segments (empty for synthetic
    /// stats): lets scan costing estimate how many segments a pushed filter
    /// prunes without touching the table.
    pub segments: Vec<csq_storage::SegmentZones>,
}

impl TableStats {
    /// Estimated rows a scan actually touches under `spec`: rows of sealed
    /// segments the zone maps fail to prune, plus unsealed rows not covered
    /// by the profile. With no spec (or no profile) this is every row.
    pub fn scan_rows_after_pruning(&self, spec: Option<&csq_storage::FilterSpec>) -> f64 {
        let Some(spec) = spec else { return self.rows };
        let profiled: usize = self.segments.iter().map(|s| s.rows).sum();
        let surviving: usize = self
            .segments
            .iter()
            .filter(|s| !spec.prunes_zones(s))
            .map(|s| s.rows)
            .sum();
        let tail = (self.rows - profiled as f64).max(0.0);
        surviving as f64 + tail
    }

    /// Fraction of the record occupied by the given columns.
    pub fn fraction(&self, cols: &[usize]) -> f64 {
        if self.row_bytes <= 0.0 {
            return 1.0;
        }
        let sum: f64 = cols.iter().map(|&c| self.col_bytes[c]).sum();
        (sum / self.row_bytes).clamp(0.0, 1.0)
    }
}

/// Server-side metadata for a client-site UDF.
#[derive(Debug, Clone)]
pub struct UdfMeta {
    /// Function name.
    pub name: String,
    /// Argument types.
    pub arg_types: Vec<DataType>,
    /// Result type.
    pub return_type: DataType,
    /// Expected result wire size, bytes (`R`).
    pub result_bytes: f64,
    /// Expected selectivity when the result is compared in a predicate.
    pub selectivity: f64,
    /// True when the function must run at the client (the paper's subject);
    /// false would mean an ordinary server UDF (not optimized here).
    pub client_site: bool,
}

impl UdfMeta {
    /// Metadata with neutral defaults: 64-byte results, selectivity ⅓.
    pub fn client(name: &str, arg_types: Vec<DataType>, return_type: DataType) -> UdfMeta {
        UdfMeta {
            name: name.to_string(),
            arg_types,
            return_type,
            result_bytes: 64.0,
            selectivity: 1.0 / 3.0,
            client_site: true,
        }
    }

    /// Builder-style: expected result size.
    pub fn with_result_bytes(mut self, bytes: f64) -> UdfMeta {
        self.result_bytes = bytes;
        self
    }

    /// Builder-style: expected predicate selectivity.
    pub fn with_selectivity(mut self, s: f64) -> UdfMeta {
        self.selectivity = s;
        self
    }
}

/// Everything the optimizer needs to know about the environment.
#[derive(Debug, Clone)]
pub struct OptContext {
    tables: HashMap<String, TableStats>,
    udfs: HashMap<String, UdfMeta>,
    /// Per-column distinct-count overrides, keyed `table.column`
    /// (lowercase). Absent columns fall back to `sqrt(rows)` — the classic
    /// System-R default when no statistics exist.
    col_distincts: HashMap<String, f64>,
    /// The client↔server network.
    pub net: NetworkSpec,
    /// Server-side per-tuple processing cost in "byte-equivalents" — a small
    /// tie-breaker so plans with fewer server operators win among
    /// network-equal plans. The paper assumes server cost is negligible.
    pub server_tuple_cost: f64,
    /// Degree of parallelism of the morsel-driven execution engine
    /// (DESIGN.md §4): per-tuple server cost is discounted by
    /// [`csq_cost::parallel_scale`] at this worker count. 1 = serial.
    pub dop: usize,
    /// Shard count of a coordinator context (DESIGN.md §13): `0` means this
    /// context describes a single-node engine (the default — plans are never
    /// wrapped in Scatter/Gather); `n ≥ 1` means tables are hash-partitioned
    /// across `n` server shards and the enumerator considers shard-set
    /// placements.
    pub shards: usize,
    /// Shard-key column per table (both lowercase) — the hash-partitioning
    /// column rows were routed by, used for shard pruning and the
    /// shard-partial legality check.
    shard_keys: HashMap<String, String>,
}

impl OptContext {
    /// Build with a network description.
    pub fn new(net: NetworkSpec) -> OptContext {
        OptContext {
            tables: HashMap::new(),
            udfs: HashMap::new(),
            col_distincts: HashMap::new(),
            net,
            server_tuple_cost: 0.01,
            dop: 1,
            shards: 0,
            shard_keys: HashMap::new(),
        }
    }

    /// Builder-style: mark this as a coordinator context over `shards`
    /// server shards (≥ 1). The single-node default is 0.
    pub fn with_shards(mut self, shards: usize) -> OptContext {
        self.shards = shards;
        self
    }

    /// True when this context describes a sharded (coordinator) deployment.
    pub fn sharded(&self) -> bool {
        self.shards >= 1
    }

    /// Record the hash-partitioning column of a sharded table.
    pub fn set_shard_key(&mut self, table: &str, column: &str) {
        self.shard_keys
            .insert(table.to_ascii_lowercase(), column.to_ascii_lowercase());
    }

    /// The shard-key column of `table`, if the table is hash-sharded.
    pub fn shard_key(&self, table: &str) -> Option<&str> {
        self.shard_keys
            .get(&table.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// Record the distinct-value count of `table.column` (drives the
    /// grouped-aggregation group-count estimate).
    pub fn set_col_distinct(&mut self, table: &str, column: &str, distinct: f64) {
        self.col_distincts.insert(
            format!(
                "{}.{}",
                table.to_ascii_lowercase(),
                column.to_ascii_lowercase()
            ),
            distinct.max(1.0),
        );
    }

    /// Distinct-value count of `table.column`: the recorded statistic, or
    /// `sqrt(rows)` when none exists.
    pub fn col_distinct(&self, table: &str, column: &str) -> f64 {
        let key = format!(
            "{}.{}",
            table.to_ascii_lowercase(),
            column.to_ascii_lowercase()
        );
        match self.col_distincts.get(&key) {
            Some(&d) => d,
            None => self
                .table(table)
                .map(|t| t.rows.sqrt().max(1.0))
                .unwrap_or(1.0),
        }
    }

    /// Builder-style: set the engine's degree of parallelism (≥ 1).
    pub fn with_dop(mut self, dop: usize) -> OptContext {
        self.dop = dop.max(1);
        self
    }

    /// Register a table's statistics.
    pub fn add_table(&mut self, name: &str, stats: TableStats) {
        self.tables.insert(name.to_ascii_lowercase(), stats);
    }

    /// Register a client UDF's metadata.
    pub fn add_udf(&mut self, meta: UdfMeta) {
        self.udfs.insert(meta.name.to_ascii_lowercase(), meta);
    }

    /// Look up table statistics.
    pub fn table(&self, name: &str) -> Result<&TableStats> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| CsqError::Catalog(format!("optimizer: unknown table '{name}'")))
    }

    /// Look up UDF metadata.
    pub fn udf(&self, name: &str) -> Result<&UdfMeta> {
        self.udfs
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| CsqError::Catalog(format!("optimizer: unknown UDF '{name}'")))
    }

    /// True when `name` is a registered client-site UDF.
    pub fn is_client_udf(&self, name: &str) -> bool {
        self.udfs
            .get(&name.to_ascii_lowercase())
            .is_some_and(|u| u.client_site)
    }
}

/// Compute [`TableStats`] from an actual in-memory table.
pub fn stats_from_table(table: &csq_storage::Table) -> TableStats {
    let rows = table.snapshot();
    let n = rows.len().max(1) as f64;
    let width = table.schema().len();
    let mut col_bytes = vec![0.0; width];
    let mut total = 0.0;
    for r in &rows {
        for (i, v) in r.values().iter().enumerate() {
            col_bytes[i] += v.wire_size() as f64;
        }
        total += r.wire_size() as f64;
    }
    for c in col_bytes.iter_mut() {
        *c /= n;
    }
    TableStats {
        schema: table.schema().clone(),
        rows: rows.len() as f64,
        row_bytes: total / n,
        col_bytes,
        segments: table.zone_profile(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::{Blob, Row, Value};
    use csq_storage::TableBuilder;

    #[test]
    fn stats_from_table_measures_columns() {
        let t = TableBuilder::new("t")
            .column("name", DataType::Str)
            .column("obj", DataType::Blob)
            .row(vec![
                Value::from("abcde"),                // wire 10
                Value::Blob(Blob::synthetic(95, 1)), // wire 100
            ])
            .build()
            .unwrap();
        let s = stats_from_table(&t);
        assert_eq!(s.rows, 1.0);
        assert!((s.row_bytes - 110.0).abs() < 1e-9);
        assert!((s.fraction(&[1]) - 100.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn context_lookup_case_insensitive() {
        let mut ctx = OptContext::new(NetworkSpec::lan());
        ctx.add_udf(UdfMeta::client(
            "ClientAnalysis",
            vec![DataType::Blob],
            DataType::Int,
        ));
        assert!(ctx.udf("clientanalysis").is_ok());
        assert!(ctx.is_client_udf("CLIENTANALYSIS"));
        assert!(ctx.udf("nope").is_err());
        let _ = Row::new(vec![]); // silence unused import in some cfgs
    }
}
