//! Optimizer plan trees and EXPLAIN rendering.

use std::collections::HashMap;

use csq_cost::AggPlacement;

use crate::query::QueryGraph;

/// How a client-site UDF unit is executed (§2.3 strategies plus the §5.1
/// interaction variants).
#[derive(Debug, Clone, PartialEq)]
pub enum UdfStrategy {
    /// Semi-join: ship deduplicated argument columns, return results.
    /// With `leave_on_client`, results (and the shipped arguments) stay at
    /// the client for later client-site operations or final delivery
    /// (§5.1.2 grouping / §5.2.3 column-location property).
    SemiJoin {
        /// Keep arguments+result at the client instead of returning.
        leave_on_client: bool,
    },
    /// Client-site join: ship (needed columns of) whole records, apply the
    /// UDF plus pushed predicates/projections at the client.
    /// With `merged_with_final`, nothing returns to the server — the client
    /// keeps the delivered rows (Figure 12(d)).
    ClientJoin {
        /// Predicate indices evaluated at the client.
        pushed_preds: Vec<usize>,
        /// Merged with the final result operator.
        merged_with_final: bool,
    },
}

/// How a coordinator reassembles scattered per-shard result streams
/// (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherMode {
    /// Concatenate the per-shard row streams in shard order — deterministic
    /// given the topology, used for plain row results.
    Ordered,
    /// Merge per-shard partial-aggregate states group-by-group before the
    /// finalize phase (the shard-partial placement's gather).
    Merge,
}

impl GatherMode {
    /// Explain label.
    pub fn label(self) -> &'static str {
        match self {
            GatherMode::Ordered => "ordered",
            GatherMode::Merge => "merge",
        }
    }
}

/// A plan node. Costing annotations live in [`crate::dp::OptimizedPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan a base relation unit.
    Scan {
        /// Unit index.
        unit: usize,
    },
    /// Join the left plan with a base relation (left-deep, System-R style).
    /// Join predicates are applied by the following `Filter` (the DP applies
    /// predicates greedily as soon as they are evaluable).
    Join {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
    /// Apply a client-site UDF unit.
    ApplyUdf {
        input: Box<PlanNode>,
        /// Unit index of the UDF.
        unit: usize,
        strategy: UdfStrategy,
    },
    /// Server-site selection of the given predicate indices.
    Filter {
        input: Box<PlanNode>,
        preds: Vec<usize>,
    },
    /// Ship client-resident columns back to the server (needed before a
    /// server-site operator can consume them).
    ReturnToServer { input: Box<PlanNode> },
    /// Deliver the output to the client. `client_resident` counts output
    /// columns that were already at the client (delivered for free thanks
    /// to leave-on-client strategies); `pushed_preds` are residual
    /// predicates evaluated at the client on delivery.
    Final {
        input: Box<PlanNode>,
        client_resident: usize,
        pushed_preds: Vec<usize>,
    },
    /// Grouped aggregation over the delivered rows (details in
    /// [`QueryGraph::aggregate`]). `placement` says where the partial phase
    /// ran: `server-partial` reduced rows to groups before they crossed the
    /// wire (shipping decomposed state), `client-only` shipped the
    /// pre-aggregation rows and aggregated at the client. `groups_est` is
    /// the optimizer's group-count estimate.
    Aggregate {
        input: Box<PlanNode>,
        placement: AggPlacement,
        groups_est: f64,
    },
    /// Fan the subplan out to a shard set (DESIGN.md §13): every live shard
    /// runs the subplan over its hash-partition of the data. `pruned` counts
    /// shards skipped because a predicate pins the shard key to one
    /// hash bucket.
    Scatter {
        input: Box<PlanNode>,
        /// Shards in the topology.
        shards: usize,
        /// Shards the coordinator never contacts for this query.
        pruned: usize,
    },
    /// Reassemble the scattered streams at the coordinator: shard-order
    /// concatenation for row results, group-wise state merging for
    /// shard-partial aggregation.
    Gather {
        input: Box<PlanNode>,
        mode: GatherMode,
    },
}

impl PlanNode {
    /// Render an indented EXPLAIN tree using unit/predicate labels from the
    /// query graph.
    pub fn explain(&self, graph: &QueryGraph) -> String {
        self.explain_annotated(graph, &HashMap::new())
    }

    /// Like [`explain`](Self::explain), with an annotation string appended
    /// to each Scan line whose unit index appears in `scan_notes` (the
    /// database layer fills these with live zone-map pruning counts).
    pub fn explain_annotated(
        &self,
        graph: &QueryGraph,
        scan_notes: &HashMap<usize, String>,
    ) -> String {
        let mut out = String::new();
        self.fmt(graph, scan_notes, 0, &mut out);
        out
    }

    fn fmt(
        &self,
        graph: &QueryGraph,
        notes: &HashMap<usize, String>,
        depth: usize,
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth);
        let preds_str = |preds: &[usize]| {
            preds
                .iter()
                .map(|&p| graph.predicates[p].expr.to_string())
                .collect::<Vec<_>>()
                .join(" AND ")
        };
        match self {
            PlanNode::Scan { unit } => match notes.get(unit) {
                Some(n) => {
                    out.push_str(&format!("{pad}Scan {} ({n})\n", graph.units[*unit].label()))
                }
                None => out.push_str(&format!("{pad}Scan {}\n", graph.units[*unit].label())),
            },
            PlanNode::Join { left, right } => {
                out.push_str(&format!("{pad}Join\n"));
                left.fmt(graph, notes, depth + 1, out);
                right.fmt(graph, notes, depth + 1, out);
            }
            PlanNode::ApplyUdf {
                input,
                unit,
                strategy,
            } => {
                let how = match strategy {
                    UdfStrategy::SemiJoin {
                        leave_on_client: false,
                    } => "semi-join".to_string(),
                    UdfStrategy::SemiJoin {
                        leave_on_client: true,
                    } => "semi-join, leave-on-client".to_string(),
                    UdfStrategy::ClientJoin {
                        pushed_preds,
                        merged_with_final,
                    } => {
                        let mut s = "client-site join".to_string();
                        if !pushed_preds.is_empty() {
                            s.push_str(&format!(", push [{}]", preds_str(pushed_preds)));
                        }
                        if *merged_with_final {
                            s.push_str(", merged with final");
                        }
                        s
                    }
                };
                out.push_str(&format!(
                    "{pad}ApplyUdf {} [{how}]\n",
                    graph.units[*unit].label()
                ));
                input.fmt(graph, notes, depth + 1, out);
            }
            PlanNode::Filter { input, preds } => {
                out.push_str(&format!("{pad}Filter [{}]\n", preds_str(preds)));
                input.fmt(graph, notes, depth + 1, out);
            }
            PlanNode::ReturnToServer { input } => {
                out.push_str(&format!("{pad}ReturnToServer\n"));
                input.fmt(graph, notes, depth + 1, out);
            }
            PlanNode::Aggregate {
                input,
                placement,
                groups_est,
            } => {
                let mut desc = String::new();
                if let Some(spec) = &graph.aggregate {
                    let keys: Vec<String> = spec.group_by.iter().map(|c| c.to_string()).collect();
                    let calls: Vec<String> = spec
                        .calls
                        .iter()
                        .map(|c| match &c.arg {
                            Some(a) => format!("{}({a})", c.func.name()),
                            None => format!("{}(*)", c.func.name()),
                        })
                        .collect();
                    if !keys.is_empty() {
                        desc.push_str(&format!(" by [{}]", keys.join(", ")));
                    }
                    if !calls.is_empty() {
                        desc.push_str(&format!(" [{}]", calls.join(", ")));
                    }
                    if let Some(h) = &spec.having {
                        desc.push_str(&format!(" [having: {h}]"));
                    }
                }
                out.push_str(&format!(
                    "{pad}Aggregate [{}]{desc} (~{:.0} groups)\n",
                    placement.label(),
                    groups_est
                ));
                input.fmt(graph, notes, depth + 1, out);
            }
            PlanNode::Final {
                input,
                client_resident,
                pushed_preds,
            } => {
                let mut note = String::new();
                if *client_resident > 0 {
                    note.push_str(&format!(" [{client_resident} column(s) already at client]"));
                }
                if !pushed_preds.is_empty() {
                    note.push_str(&format!(" [client filter: {}]", preds_str(pushed_preds)));
                }
                out.push_str(&format!("{pad}Final{note}\n"));
                input.fmt(graph, notes, depth + 1, out);
            }
            PlanNode::Scatter {
                input,
                shards,
                pruned,
            } => {
                out.push_str(&format!(
                    "{pad}Scatter [{shards} shards, {pruned} pruned]\n"
                ));
                input.fmt(graph, notes, depth + 1, out);
            }
            PlanNode::Gather { input, mode } => {
                out.push_str(&format!("{pad}Gather [{}]\n", mode.label()));
                input.fmt(graph, notes, depth + 1, out);
            }
        }
    }

    /// Collect the UDF application order and strategies (for tests).
    pub fn udf_applications(&self) -> Vec<(usize, UdfStrategy)> {
        let mut v = Vec::new();
        self.walk(&mut |n| {
            if let PlanNode::ApplyUdf { unit, strategy, .. } = n {
                v.push((*unit, strategy.clone()));
            }
        });
        v.reverse(); // walk is top-down; applications happen bottom-up
        v
    }

    /// Depth-first walk (node before children).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode)) {
        f(self);
        match self {
            PlanNode::Scan { .. } => {}
            PlanNode::Join { left, right } => {
                left.walk(f);
                right.walk(f);
            }
            PlanNode::ApplyUdf { input, .. }
            | PlanNode::Filter { input, .. }
            | PlanNode::ReturnToServer { input }
            | PlanNode::Final { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Scatter { input, .. }
            | PlanNode::Gather { input, .. } => input.walk(f),
        }
    }

    /// True when a join appears below the given UDF unit's application
    /// (i.e. the UDF ran after that join) — used in tests that check
    /// operator placement.
    pub fn udf_after_join(&self, udf_unit: usize) -> bool {
        let mut found = false;
        self.walk(&mut |n| {
            if let PlanNode::ApplyUdf { unit, input, .. } = n {
                if *unit == udf_unit {
                    let mut has_join = false;
                    input.walk(&mut |m| {
                        if matches!(m, PlanNode::Join { .. }) {
                            has_join = true;
                        }
                    });
                    found = has_join;
                }
            }
        });
        found
    }
}
