//! The extended System-R dynamic program (§5.2).
//!
//! Plans are built bottom-up over *units* (base relations + client-site
//! UDFs). Each state is keyed by `(applied units, applied predicates,
//! client-resident columns)` — the last component is the paper's new
//! physical property generalized to column granularity (§5.2.3), so plans
//! that left different column sets at the client are kept separately and
//! semi-join grouping falls out of ordinary dynamic programming.
//!
//! Costs are network-transfer seconds: for each operator that moves data,
//! `max(downlink seconds, uplink seconds)` (the bottleneck link, §3.2),
//! summed over operators, plus a tiny per-tuple server cost that breaks
//! ties in favour of plans doing less server work. The paper's assumption
//! that client and server CPU are not bottlenecks is preserved.

use std::collections::{BTreeSet, HashMap};

use csq_common::{CsqError, Result};
use csq_expr::analysis;

use crate::context::OptContext;
use crate::plan::{PlanNode, UdfStrategy};
use crate::query::{QueryGraph, Unit};

/// Parallelizable fraction of server-side operator work assumed by the
/// costing discount for [`OptContext::dop`] (scan/filter/project/join run
/// on workers; dispatch and gather stay serial).
const ENGINE_PARALLEL_FRACTION: f64 = 0.9;

/// The optimizer's output.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen plan.
    pub root: PlanNode,
    /// Estimated total cost, seconds of bottleneck network transfer.
    pub cost_seconds: f64,
    /// Estimated output cardinality.
    pub est_rows: f64,
    /// Number of states explored (for the complexity discussion: the
    /// algorithm is exponential in #joins + #client-site UDFs).
    pub states_explored: usize,
}

#[derive(Clone)]
struct State {
    mask: u64,
    applied_preds: u64,
    client_cols: BTreeSet<String>,
    server_cols: BTreeSet<String>,
    rows: f64,
    cost: f64,
    plan: PlanNode,
}

fn key_of(s: &State) -> (u64, u64, String) {
    let cols = s.client_cols.iter().cloned().collect::<Vec<_>>().join(",");
    (s.mask, s.applied_preds, cols)
}

struct Ctx<'a> {
    graph: &'a QueryGraph,
    opt: &'a OptContext,
    /// Column display name → average wire bytes.
    col_bytes: HashMap<String, f64>,
    /// Per-UDF-unit estimated distinct argument tuples.
    distinct_args: HashMap<usize, f64>,
    /// Column display names per unit.
    unit_cols: Vec<Vec<String>>,
}

impl<'a> Ctx<'a> {
    fn bytes_of(&self, cols: &BTreeSet<String>) -> f64 {
        cols.iter()
            .map(|c| self.col_bytes.get(c).copied().unwrap_or(16.0))
            .sum()
    }

    /// Transfer cost in seconds for one operator moving `down`/`up` bytes.
    fn net_cost(&self, down: f64, up: f64) -> f64 {
        let n = &self.opt.net;
        let down_s = down / n.down_bandwidth;
        let up_s = up * n.uplink_inflation / n.up_bandwidth;
        down_s.max(up_s)
    }

    fn server_cost(&self, rows: f64) -> f64 {
        // The morsel-driven engine runs server-side operators with
        // `opt.dop` workers; per-tuple cost shrinks by Amdahl's law with
        // the engine's measured ~90% parallelizable fraction (DESIGN.md
        // §4). At dop = 1 this divides by exactly 1.0.
        rows * self.opt.server_tuple_cost * 1e-6
            / csq_cost::parallel_scale(self.opt.dop, ENGINE_PARALLEL_FRACTION)
    }

    /// Column display names referenced by an expression.
    fn cols_of_expr(&self, e: &csq_expr::Expr) -> BTreeSet<String> {
        analysis::columns_referenced(e)
            .into_iter()
            .map(|c| self.canonical(&c))
            .collect()
    }

    /// Canonical display name of a reference (resolves bare rel columns to
    /// their alias-qualified form).
    fn canonical(&self, c: &csq_expr::ColumnRef) -> String {
        self.graph.canonical_name(c)
    }

    /// Columns still needed by unapplied predicates, unapplied UDF args,
    /// and the output.
    fn needed(&self, applied_preds: u64, mask: u64) -> BTreeSet<String> {
        self.graph
            .needed_columns(applied_preds, mask)
            .iter()
            .map(|c| self.canonical(c))
            .collect()
    }
}

/// Greedily apply every predicate that is evaluable on the server.
fn greedy_apply(ctx: &Ctx<'_>, s: &mut State) {
    let mut applied = Vec::new();
    for (pi, p) in ctx.graph.predicates.iter().enumerate() {
        if s.applied_preds & (1 << pi) != 0 {
            continue;
        }
        if p.required & !s.mask != 0 {
            continue;
        }
        let cols = ctx.cols_of_expr(&p.expr);
        if cols.iter().all(|c| s.server_cols.contains(c)) {
            s.applied_preds |= 1 << pi;
            s.rows *= p.selectivity;
            applied.push(pi);
        }
    }
    if !applied.is_empty() {
        s.plan = PlanNode::Filter {
            input: Box::new(s.plan.clone()),
            preds: applied,
        };
    }
}

/// Optimize a query graph.
pub fn optimize(graph: &QueryGraph, opt: &OptContext) -> Result<OptimizedPlan> {
    optimize_inner(graph, opt, false)
}

pub(crate) fn optimize_inner(
    graph: &QueryGraph,
    opt: &OptContext,
    rank_mode: bool,
) -> Result<OptimizedPlan> {
    if graph.n_rels == 0 {
        return Err(CsqError::Plan("query has no relations".into()));
    }
    if graph.n_units() > 20 {
        return Err(CsqError::Plan(format!(
            "too many optimization units ({}); the algorithm is exponential \
             in #joins + #client-site UDFs",
            graph.n_units()
        )));
    }

    // Precompute byte sizes and distinct-argument estimates.
    let mut col_bytes = HashMap::new();
    let mut unit_cols: Vec<Vec<String>> = Vec::new();
    for u in &graph.units {
        match u {
            Unit::Rel { alias, stats, .. } => {
                let mut cols = Vec::new();
                for (i, f) in stats.schema.fields().iter().enumerate() {
                    let name = format!("{alias}.{}", f.name);
                    col_bytes.insert(name.clone(), stats.col_bytes[i]);
                    cols.push(name);
                }
                unit_cols.push(cols);
            }
            Unit::Udf {
                result_col, meta, ..
            } => {
                col_bytes.insert(result_col.clone(), meta.result_bytes);
                unit_cols.push(vec![result_col.clone()]);
            }
        }
    }
    let mut distinct_args = HashMap::new();
    for (ui, u) in graph.units.iter().enumerate() {
        if matches!(u, Unit::Udf { .. }) {
            let prereq = graph.prereq_mask(ui);
            let mut d = 1.0f64;
            for (ri, r) in graph.units.iter().enumerate() {
                if prereq & (1 << ri) != 0 {
                    if let Unit::Rel { stats, .. } = r {
                        d *= stats.rows.max(1.0);
                    }
                }
            }
            distinct_args.insert(ui, d);
        }
    }
    let ctx = Ctx {
        graph,
        opt,
        col_bytes,
        distinct_args,
        unit_cols,
    };

    // DP table, staged by popcount.
    let full = graph.full_mask();
    let mut table: HashMap<(u64, u64, String), State> = HashMap::new();
    let mut states_explored = 0usize;

    let insert = |table: &mut HashMap<(u64, u64, String), State>, s: State| {
        let k = key_of(&s);
        match table.get(&k) {
            Some(old) if old.cost <= s.cost => {}
            _ => {
                table.insert(k, s);
            }
        }
    };

    // Seed with single-relation scans.
    for ri in 0..graph.n_rels {
        let Unit::Rel { stats, .. } = &graph.units[ri] else {
            unreachable!()
        };
        let mut s = State {
            mask: 1 << ri,
            applied_preds: 0,
            client_cols: BTreeSet::new(),
            server_cols: ctx.unit_cols[ri].iter().cloned().collect(),
            rows: stats.rows,
            cost: 0.0,
            plan: PlanNode::Scan { unit: ri },
        };
        greedy_apply(&ctx, &mut s);
        // Scan CPU, discounted by estimated zone-map pruning: the columnar
        // scan skips whole segments the pushed filter prefix disproves, so
        // the per-tuple term covers only the rows it actually touches.
        // Every complete plan scans every relation exactly once with the
        // same seed predicates, so the term sharpens cost estimates without
        // changing which plan wins.
        s.cost += ctx.server_cost(scan_rows_estimate(&ctx, ri, s.applied_preds));
        insert(&mut table, s);
    }

    for size in 1..graph.n_units() {
        let current: Vec<State> = table
            .values()
            .filter(|s| (s.mask.count_ones() as usize) == size)
            .cloned()
            .collect();
        for s in current {
            for unit in 0..graph.n_units() {
                if s.mask & (1 << unit) != 0 {
                    continue;
                }
                if graph.prereq_mask(unit) & !s.mask != 0 {
                    continue;
                }
                match &graph.units[unit] {
                    Unit::Rel { .. } => {
                        if let Some(next) = apply_rel(&ctx, &s, unit) {
                            states_explored += 1;
                            insert(&mut table, next);
                        }
                    }
                    Unit::Udf { .. } => {
                        if rank_mode {
                            // The rank-order baseline applies UDFs eagerly
                            // (cheapest-rank-first ≈ as soon as available)
                            // and only knows the plain semi-join-return
                            // strategy with no grouping or pushdowns.
                            if let Some(next) = apply_udf_semijoin(&ctx, &s, unit, false) {
                                states_explored += 1;
                                insert(&mut table, next);
                            }
                        } else {
                            for variant in udf_variants(&ctx, &s, unit, full) {
                                states_explored += 1;
                                insert(&mut table, variant);
                            }
                        }
                    }
                }
            }
        }
    }

    // Finalize every full-mask state.
    let mut best: Option<State> = None;
    let finals: Vec<State> = table.values().filter(|s| s.mask == full).cloned().collect();
    for s in finals {
        if let Some(done) = finalize(&ctx, &s) {
            states_explored += 1;
            match &best {
                Some(b) if b.cost <= done.cost => {}
                _ => best = Some(done),
            }
        }
    }

    let best = best.ok_or_else(|| {
        CsqError::Plan("optimizer found no complete plan (unsatisfiable prerequisites?)".into())
    })?;
    Ok(OptimizedPlan {
        cost_seconds: best.cost,
        est_rows: best.rows,
        // Coordinator contexts get the plan in scatter/gather form; the
        // default (shards = 0) leaves single-node plans untouched.
        root: crate::shard::shardify(best.plan, graph, opt),
        states_explored,
    })
}

/// Estimated rows the columnar scan of relation `unit` materializes under
/// the predicates applied directly above it: the prunable prefix is
/// compiled exactly as lowering compiles it (bind, then
/// [`FilterSpec::from_phys`]) and held against the zone profiles captured
/// in the table statistics.
fn scan_rows_estimate(ctx: &Ctx<'_>, unit: usize, applied: u64) -> f64 {
    let Unit::Rel { alias, stats, .. } = &ctx.graph.units[unit] else {
        return 0.0;
    };
    let exprs: Vec<csq_expr::Expr> = ctx
        .graph
        .predicates
        .iter()
        .enumerate()
        .filter(|&(pi, _)| applied & (1u64 << pi) != 0)
        .map(|(_, p)| p.expr.clone())
        .collect();
    let spec = analysis::conjoin(exprs)
        .and_then(|e| csq_expr::bind(&e, &stats.schema.qualify(alias)).ok())
        .and_then(|p| csq_storage::FilterSpec::from_phys(&p));
    stats.scan_rows_after_pruning(spec.as_ref())
}

/// Join a base relation onto the plan (returning client columns first if
/// any are outstanding).
fn apply_rel(ctx: &Ctx<'_>, s: &State, unit: usize) -> Option<State> {
    let Unit::Rel { stats, .. } = &ctx.graph.units[unit] else {
        return None;
    };
    let mut s2 = s.clone();
    return_to_server(ctx, &mut s2);
    let left_rows = s2.rows;
    s2.mask |= 1 << unit;
    s2.server_cols.extend(ctx.unit_cols[unit].iter().cloned());
    s2.plan = PlanNode::Join {
        left: Box::new(s2.plan),
        right: Box::new(PlanNode::Scan { unit }),
    };
    // Cross product cardinality; greedy_apply charges join predicates.
    // Equi-join selectivity heuristic: 1/max(|L|,|R|) per join predicate is
    // folded into PredInfo.selectivity upstream? No — PredInfo uses generic
    // heuristics; refine equijoins here by replacing the generic 0.1 with
    // 1/max(rows). We approximate by scaling rows directly for equijoin
    // predicates that become applicable.
    s2.rows = left_rows * stats.rows;
    let before_preds = s2.applied_preds;
    greedy_apply(ctx, &mut s2);
    // Replace generic equi-join selectivities with 1/max cardinality.
    for pi in 0..ctx.graph.predicates.len() {
        let bit = 1u64 << pi;
        if s2.applied_preds & bit != 0 && before_preds & bit == 0 {
            let p = &ctx.graph.predicates[pi];
            if !p.references_udf && analysis::as_equijoin(&p.expr).is_some() {
                // Undo the generic selectivity, apply the join heuristic.
                s2.rows /= p.selectivity;
                s2.rows *= 1.0 / left_rows.max(stats.rows).max(1.0);
            }
        }
    }
    s2.cost += ctx.server_cost(s2.rows);
    Some(s2)
}

/// Ship any client-resident (non-server) columns back to the server.
fn return_to_server(ctx: &Ctx<'_>, s: &mut State) {
    if s.client_cols.is_empty() {
        return;
    }
    let to_return: BTreeSet<String> = s
        .client_cols
        .iter()
        .filter(|c| !s.server_cols.contains(*c))
        .cloned()
        .collect();
    if !to_return.is_empty() {
        let up = s.rows * ctx.bytes_of(&to_return);
        s.cost += ctx.net_cost(0.0, up);
        s.server_cols.extend(to_return);
        s.plan = PlanNode::ReturnToServer {
            input: Box::new(s.plan.clone()),
        };
    }
    s.client_cols.clear();
    // Newly server-resident UDF results may unlock predicates.
    greedy_apply(ctx, s);
}

/// All strategy variants for applying UDF `unit` to state `s`.
fn udf_variants(ctx: &Ctx<'_>, s: &State, unit: usize, full: u64) -> Vec<State> {
    let mut out = Vec::new();
    if let Some(v) = apply_udf_semijoin(ctx, s, unit, false) {
        out.push(v);
    }
    if let Some(v) = apply_udf_semijoin(ctx, s, unit, true) {
        out.push(v);
    }
    if let Some(v) = apply_udf_client_join(ctx, s, unit, false, full) {
        out.push(v);
    }
    if let Some(v) = apply_udf_client_join(ctx, s, unit, true, full) {
        out.push(v);
    }
    out
}

fn udf_arg_cols(ctx: &Ctx<'_>, unit: usize) -> (BTreeSet<String>, f64) {
    let Unit::Udf { args, .. } = &ctx.graph.units[unit] else {
        unreachable!()
    };
    let cols: BTreeSet<String> = args.iter().map(|a| ctx.canonical(a)).collect();
    let bytes = ctx.bytes_of(&cols);
    (cols, bytes)
}

/// Semi-join application (§2.3.1). `leave_on_client` defers the uplink
/// (§5.2.3's column-location property).
fn apply_udf_semijoin(
    ctx: &Ctx<'_>,
    s: &State,
    unit: usize,
    leave_on_client: bool,
) -> Option<State> {
    let Unit::Udf {
        meta, result_col, ..
    } = &ctx.graph.units[unit]
    else {
        return None;
    };
    let (arg_cols, arg_bytes) = udf_arg_cols(ctx, unit);
    // Arguments must be server-resident or already at the client.
    let args_at_client = arg_cols.iter().all(|c| s.client_cols.contains(c));
    if !args_at_client && !arg_cols.iter().all(|c| s.server_cols.contains(c)) {
        return None;
    }
    let distinct = ctx.distinct_args.get(&unit).copied().unwrap_or(s.rows);
    let d = (distinct / s.rows.max(1.0)).min(1.0);
    let mut s2 = s.clone();
    s2.mask |= 1 << unit;
    // Downlink: dedup'd argument columns — free when a previous client-site
    // operation already left them there (grouping, §5.1.2).
    let down = if args_at_client {
        0.0
    } else {
        s.rows * d * arg_bytes
    };
    let up = if leave_on_client {
        0.0
    } else {
        s.rows * d * meta.result_bytes
    };
    s2.cost += ctx.net_cost(down, up) + ctx.server_cost(s.rows);
    if leave_on_client {
        s2.client_cols.extend(arg_cols);
        s2.client_cols.insert(result_col.clone());
    } else {
        s2.server_cols.insert(result_col.clone());
    }
    s2.plan = PlanNode::ApplyUdf {
        input: Box::new(s2.plan),
        unit,
        strategy: UdfStrategy::SemiJoin { leave_on_client },
    };
    greedy_apply(ctx, &mut s2);
    Some(s2)
}

/// Client-site join application (§2.3.2). Ships needed record columns,
/// pushes evaluable predicates and the projection. With `merged_with_final`
/// nothing returns (Fig 12(d)) — only legal as the last unit with all
/// residual predicates pushable.
fn apply_udf_client_join(
    ctx: &Ctx<'_>,
    s: &State,
    unit: usize,
    merged_with_final: bool,
    full: u64,
) -> Option<State> {
    let Unit::Udf {
        meta: _,
        result_col,
        ..
    } = &ctx.graph.units[unit]
    else {
        return None;
    };
    let new_mask = s.mask | (1 << unit);
    if merged_with_final && new_mask != full {
        return None;
    }
    let (arg_cols, _) = udf_arg_cols(ctx, unit);
    if !arg_cols.iter().all(|c| s.server_cols.contains(c)) {
        // Whole-record shipping needs the arguments server-side. (A CSJ over
        // client-resident args would be a grouped client op — covered by the
        // semi-join leave-on-client variants.)
        return None;
    }

    // Ship the columns later stages still need, plus the arguments.
    let mut shipped: BTreeSet<String> = ctx
        .needed(s.applied_preds, s.mask)
        .intersection(&s.server_cols)
        .cloned()
        .collect();
    shipped.extend(arg_cols.iter().cloned());
    let down = s.rows * ctx.bytes_of(&shipped);

    // Push every unapplied predicate that is evaluable from shipped ∪
    // result ∪ client-resident columns.
    let mut visible = shipped.clone();
    visible.insert(result_col.clone());
    visible.extend(s.client_cols.iter().cloned());
    let mut pushed = Vec::new();
    let mut sel = 1.0;
    let mut applied = s.applied_preds;
    for (pi, p) in ctx.graph.predicates.iter().enumerate() {
        if applied & (1 << pi) != 0 {
            continue;
        }
        if p.required & !new_mask != 0 {
            continue;
        }
        let cols = ctx.cols_of_expr(&p.expr);
        if cols.iter().all(|c| visible.contains(c)) {
            pushed.push(pi);
            sel *= p.selectivity;
            applied |= 1 << pi;
        }
    }
    if merged_with_final {
        // Every remaining predicate must have been pushable.
        for (pi, _) in ctx.graph.predicates.iter().enumerate() {
            if applied & (1 << pi) == 0 {
                return None;
            }
        }
        // Output columns must be visible at the client.
        let out_cols: BTreeSet<String> = ctx
            .graph
            .output
            .iter()
            .flat_map(|(e, _)| ctx.cols_of_expr(e))
            .collect();
        if !out_cols.iter().all(|c| visible.contains(c)) {
            return None;
        }
    }

    let rows_after = s.rows * sel;

    // Pushable projection: return only what later stages / output need.
    let needed_after: BTreeSet<String> = ctx
        .needed(applied, new_mask)
        .intersection(&visible)
        .cloned()
        .collect();
    let up = if merged_with_final {
        0.0
    } else {
        rows_after * ctx.bytes_of(&needed_after)
    };

    let mut s2 = s.clone();
    s2.mask = new_mask;
    s2.applied_preds = applied;
    s2.rows = rows_after;
    s2.cost += ctx.net_cost(down, up) + ctx.server_cost(s.rows);
    if merged_with_final {
        s2.client_cols = visible;
    } else {
        s2.client_cols.clear();
        s2.server_cols = needed_after;
    }
    s2.plan = PlanNode::ApplyUdf {
        input: Box::new(s2.plan),
        unit,
        strategy: UdfStrategy::ClientJoin {
            pushed_preds: pushed,
            merged_with_final,
        },
    };
    greedy_apply(ctx, &mut s2);
    Some(s2)
}

/// Apply the final result operator: deliver output columns to the client,
/// paying only for columns not already client-resident; residual predicates
/// that need client-resident columns are evaluated on delivery.
fn finalize(ctx: &Ctx<'_>, s: &State) -> Option<State> {
    let mut s2 = s.clone();
    let out_cols: BTreeSet<String> = ctx
        .graph
        .output
        .iter()
        .flat_map(|(e, _)| ctx.cols_of_expr(e))
        .collect();

    // Residual predicates: evaluable at the client once their server
    // columns are shipped with the result.
    let mut pushed = Vec::new();
    let mut extra_cols: BTreeSet<String> = BTreeSet::new();
    for (pi, p) in ctx.graph.predicates.iter().enumerate() {
        if s2.applied_preds & (1 << pi) != 0 {
            continue;
        }
        if p.required & !s2.mask != 0 {
            return None; // should not happen at full mask
        }
        let cols = ctx.cols_of_expr(&p.expr);
        for c in cols {
            if !s2.client_cols.contains(&c) {
                if !s2.server_cols.contains(&c) {
                    return None; // column lost — invalid plan shape
                }
                extra_cols.insert(c);
            }
        }
        pushed.push(pi);
        s2.applied_preds |= 1 << pi;
        s2.rows *= p.selectivity;
    }

    let mut ship: BTreeSet<String> = out_cols
        .iter()
        .filter(|c| !s2.client_cols.contains(*c))
        .cloned()
        .collect();
    ship.extend(extra_cols);
    for c in &ship {
        if !s2.server_cols.contains(c) {
            return None;
        }
    }
    let client_resident = out_cols.len() - ship.iter().filter(|c| out_cols.contains(*c)).count();
    let down = s.rows * ctx.bytes_of(&ship);

    // Delivery cost of the plain (non-aggregated) output.
    let mut delivery = ctx.net_cost(down, 0.0);
    let mut agg_node = None;
    if let Some(spec) = &ctx.graph.aggregate {
        // Grouped aggregation: enumerate where the partial phase runs.
        //
        // * client-only — ship the pre-aggregation rows (the `down` above)
        //   and aggregate at the client (serial per-tuple work).
        // * server-partial — the server reduces rows to groups first and
        //   ships decomposed state (`groups × state bytes`); the partial
        //   pass runs on the morsel-driven engine, so its per-tuple cost is
        //   discounted by `dop` like every server-side operator. Only legal
        //   when every aggregation input is server-resident and no residual
        //   predicate remains to be evaluated at the client pre-grouping.
        let key_cols: BTreeSet<String> = spec.group_by.iter().map(|c| c.to_string()).collect();
        let mut state_bytes = ctx.bytes_of(&key_cols);
        for call in &spec.calls {
            let arg_bytes = call
                .arg
                .as_ref()
                .map(|a| ctx.bytes_of(&ctx.cols_of_expr(a)))
                .unwrap_or(0.0);
            state_bytes += csq_cost::agg_state_bytes(call.func, arg_bytes);
        }
        let distincts: Vec<f64> = spec
            .group_by
            .iter()
            .map(|g| {
                for u in &ctx.graph.units {
                    if let Unit::Rel { alias, table, .. } = u {
                        if Some(alias.as_str()) == g.qualifier.as_deref() {
                            return ctx.opt.col_distinct(table, &g.name);
                        }
                    }
                }
                s2.rows.sqrt().max(1.0)
            })
            .collect();
        let groups = csq_cost::estimate_group_count(s2.rows.max(0.0), &distincts);
        // The shipping-volume model lives in csq-cost; this DP turns its
        // per-placement byte counts into seconds and layers the (tiny)
        // site-CPU terms on top.
        let params = csq_cost::AggPlacementParams {
            rows: s2.rows,
            groups,
            row_bytes: ctx.bytes_of(&ship),
            state_bytes,
        };
        let tuple_secs = ctx.opt.server_tuple_cost * 1e-6;
        let client_total = delivery + params.rows * tuple_secs;
        let server_legal = pushed.is_empty() && out_cols.iter().all(|c| s2.server_cols.contains(c));
        let placement = if ctx.opt.sharded() {
            // N-site enumeration (DESIGN.md §13): there is no single
            // "server" — the candidates are gathering the raw rows from
            // every shard and aggregating at the coordinator (client-only's
            // analogue) vs. per-shard partial aggregation with a
            // coordinator finalize. The latter needs the partial phase to
            // run per shard unchanged: server-legal (no residual client
            // predicates, server-resident inputs) and a pushable plan
            // (single relation, no UDF units).
            let shard_legal = server_legal && ctx.graph.n_rels == 1 && ctx.graph.units.len() == 1;
            let sp = csq_cost::ShardedAggParams {
                base: params,
                shards: ctx.opt.shards.max(1),
            };
            // Per-shard partial work runs concurrently across shards, each
            // on its own dop-discounted engine, so the CPU term covers one
            // shard's slice; the coordinator then merges every gathered
            // per-shard group state.
            let shard_total = ctx.net_cost(sp.gather_bytes(), 0.0)
                + ctx.server_cost(params.rows / sp.shards as f64)
                + sp.shards as f64 * sp.per_shard_groups() * tuple_secs;
            if shard_legal && shard_total < client_total {
                delivery = shard_total;
                csq_cost::AggPlacement::ShardPartial
            } else {
                delivery = client_total;
                csq_cost::AggPlacement::ClientOnly
            }
        } else {
            let server_total = ctx.net_cost(
                params.down_bytes(csq_cost::AggPlacement::ServerPartial),
                0.0,
            ) + ctx.server_cost(params.rows)
                + groups * tuple_secs; // the client still merges and finishes
            let placement = if server_legal && server_total < client_total {
                delivery = server_total;
                csq_cost::AggPlacement::ServerPartial
            } else {
                delivery = client_total;
                csq_cost::AggPlacement::ClientOnly
            };
            debug_assert!(
                // CPU terms only sharpen ties; the byte-level chooser and
                // this enumeration must agree whenever server-partial is
                // legal and the byte gap is decisive.
                !server_legal
                    || csq_cost::choose_agg_placement(&params) == placement
                    || (ctx.net_cost(
                        params.down_bytes(csq_cost::AggPlacement::ServerPartial),
                        0.0
                    ) - ctx
                        .net_cost(params.down_bytes(csq_cost::AggPlacement::ClientOnly), 0.0))
                    .abs()
                        < ctx.server_cost(params.rows) + params.rows * tuple_secs
            );
            placement
        };
        let having_sel = spec
            .having
            .as_ref()
            .map(analysis::estimate_selectivity)
            .unwrap_or(1.0);
        s2.rows = groups * having_sel;
        agg_node = Some((placement, groups));
    }
    s2.cost += delivery;
    s2.plan = PlanNode::Final {
        input: Box::new(s2.plan),
        client_resident,
        pushed_preds: pushed,
    };
    if let Some((placement, groups_est)) = agg_node {
        s2.plan = PlanNode::Aggregate {
            input: Box::new(s2.plan),
            placement,
            groups_est,
        };
    }
    Some(s2)
}
