//! Shard-aware plan post-processing (DESIGN.md §13).
//!
//! A coordinator context ([`OptContext::with_shards`]) optimizes queries
//! with the ordinary two-site DP, then [`shardify`] rewrites the winning
//! plan into the scatter/gather form the coordinator executes:
//!
//! * **Pushable** queries (a single base relation, no client-site UDF
//!   units) run the whole subplan on every live shard — the plan below the
//!   finalize layer is wrapped in `Gather(Scatter(...))`, and a
//!   shard-partial `Aggregate` sits above the gather as the coordinator's
//!   merge+finalize phase.
//! * Everything else (joins, UDFs) gathers each base relation's shard
//!   partitions separately and runs the remaining operators at the
//!   coordinator, whose morsel engine repartitions with its `Exchange`
//!   operators.
//!
//! Shard pruning: when a conjunct pins a table's hash-partitioning column
//! to a literal (`key = lit`), only the shard owning that hash bucket is
//! contacted; the `Scatter` node records how many shards that skipped.

use csq_common::Value;
use csq_expr::{BinaryOp, Expr};

use crate::context::OptContext;
use crate::plan::{GatherMode, PlanNode};
use crate::query::{QueryGraph, Unit};

/// The literal a query pins relation `unit`'s shard key to, if any: a
/// conjunct of the form `key = literal` (either side) over the table's
/// hash-partitioning column. The coordinator routes such scans to the
/// single shard owning the literal's hash bucket.
pub fn pinned_shard_value<'a>(
    graph: &'a QueryGraph,
    opt: &OptContext,
    unit: usize,
) -> Option<&'a Value> {
    let Unit::Rel {
        alias,
        table,
        stats,
    } = &graph.units[unit]
    else {
        return None;
    };
    let key = opt.shard_key(table)?;
    // Pruning routes by `Value::hash`, so the literal must already be the
    // column's exact type: `Int(5)` and `Float(5.0)` compare equal under SQL
    // coercion but hash to different buckets. A mistyped literal falls back
    // to contacting every shard, which is always correct.
    let key_type = stats
        .schema
        .index_of(None, key)
        .ok()
        .map(|i| stats.schema.field(i).dtype)?;
    graph
        .predicates
        .iter()
        .filter(|p| p.required == (1u64 << unit))
        .find_map(|p| eq_literal_on(&p.expr, alias, key))
        .filter(|v| v.data_type() == Some(key_type))
}

fn eq_literal_on<'a>(e: &'a Expr, alias: &str, key: &str) -> Option<&'a Value> {
    let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = e
    else {
        return None;
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c))
            if c.name.eq_ignore_ascii_case(key)
                && c.qualifier
                    .as_deref()
                    .is_none_or(|q| q.eq_ignore_ascii_case(alias)) =>
        {
            Some(v)
        }
        _ => None,
    }
}

/// True when the whole plan can run per shard unchanged: a single base
/// relation and no client-site UDF units.
pub fn pushable(graph: &QueryGraph) -> bool {
    graph.n_rels == 1 && graph.units.len() == 1
}

/// Shards a scan of relation `unit` skips: all but one when the shard key
/// is pinned, none otherwise.
pub fn pruned_for(graph: &QueryGraph, opt: &OptContext, unit: usize) -> usize {
    if pinned_shard_value(graph, opt, unit).is_some() {
        opt.shards.saturating_sub(1)
    } else {
        0
    }
}

/// Rewrite an optimized single-node plan into the scatter/gather form a
/// coordinator executes (see module docs). No-op for unsharded contexts.
pub fn shardify(root: PlanNode, graph: &QueryGraph, opt: &OptContext) -> PlanNode {
    if !opt.sharded() {
        return root;
    }
    if pushable(graph) {
        let pruned = pruned_for(graph, opt, 0);
        return match root {
            // The finalize Aggregate stays above the gather: shards run the
            // subplan (for shard-partial, their local partial phase) and the
            // coordinator merges/finishes.
            PlanNode::Aggregate {
                input,
                placement,
                groups_est,
            } => {
                let mode = match placement {
                    csq_cost::AggPlacement::ShardPartial => GatherMode::Merge,
                    _ => GatherMode::Ordered,
                };
                PlanNode::Aggregate {
                    input: Box::new(wrap(input, opt.shards, pruned, mode)),
                    placement,
                    groups_est,
                }
            }
            other => wrap(Box::new(other), opt.shards, pruned, GatherMode::Ordered),
        };
    }
    wrap_scans(root, graph, opt)
}

fn wrap(input: Box<PlanNode>, shards: usize, pruned: usize, mode: GatherMode) -> PlanNode {
    PlanNode::Gather {
        input: Box::new(PlanNode::Scatter {
            input,
            shards,
            pruned,
        }),
        mode,
    }
}

/// Fallback form: every base-relation scan gathers its shard partitions;
/// joins/UDFs/aggregation run above, at the coordinator.
fn wrap_scans(node: PlanNode, graph: &QueryGraph, opt: &OptContext) -> PlanNode {
    match node {
        PlanNode::Scan { unit } => wrap(
            Box::new(PlanNode::Scan { unit }),
            opt.shards,
            pruned_for(graph, opt, unit),
            GatherMode::Ordered,
        ),
        PlanNode::Join { left, right } => PlanNode::Join {
            left: Box::new(wrap_scans(*left, graph, opt)),
            right: Box::new(wrap_scans(*right, graph, opt)),
        },
        PlanNode::ApplyUdf {
            input,
            unit,
            strategy,
        } => PlanNode::ApplyUdf {
            input: Box::new(wrap_scans(*input, graph, opt)),
            unit,
            strategy,
        },
        PlanNode::Filter { input, preds } => PlanNode::Filter {
            input: Box::new(wrap_scans(*input, graph, opt)),
            preds,
        },
        PlanNode::ReturnToServer { input } => PlanNode::ReturnToServer {
            input: Box::new(wrap_scans(*input, graph, opt)),
        },
        PlanNode::Final {
            input,
            client_resident,
            pushed_preds,
        } => PlanNode::Final {
            input: Box::new(wrap_scans(*input, graph, opt)),
            client_resident,
            pushed_preds,
        },
        PlanNode::Aggregate {
            input,
            placement,
            groups_est,
        } => PlanNode::Aggregate {
            input: Box::new(wrap_scans(*input, graph, opt)),
            placement,
            groups_est,
        },
        // Already wrapped (shardify is idempotent only because these stop
        // the recursion).
        done @ (PlanNode::Scatter { .. } | PlanNode::Gather { .. }) => done,
    }
}
