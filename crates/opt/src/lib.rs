//! # csq-opt — query optimization for client-site UDFs (§5)
//!
//! The paper shows that rank-order placement of expensive predicates breaks
//! down for client-site UDFs because (a) a client-site operator's cost
//! depends on its *neighbours* (grouped UDFs ship shared arguments once;
//! a UDF adjacent to the final result operator never ships results back),
//! and (b) semi-join costs depend on input duplicates, which join operators
//! change. Their fix — reproduced here — is a System-R bottom-up dynamic
//! program where:
//!
//! * every base relation **and every client-site UDF call** is a *join
//!   unit* (the UDF joins with a virtual, index-only UDF table, §2.2);
//! * plans carry a new physical property, the **site** of their result —
//!   generalized to the *set of columns resident at the client* so that
//!   semi-join grouping (§5.1.2) falls out of ordinary property matching;
//! * pushable selections and projections are placed at the client when the
//!   chosen strategy allows it (client-site joins and final-merged UDFs).
//!
//! Entry point: [`optimize`] over a parsed query + [`OptContext`] metadata.
//! The result is a [`PlanNode`] tree with estimated costs, printable via
//! [`PlanNode::explain`], plus a [`rank_order_baseline`] implementing the
//! pre-paper strategy for the ablation benches.

pub mod context;
pub mod dp;
pub mod plan;
pub mod query;
pub mod rank;
pub mod shard;

pub use context::{OptContext, TableStats, UdfMeta};
pub use csq_cost::AggPlacement;
pub use dp::{optimize, OptimizedPlan};
pub use plan::{GatherMode, PlanNode, UdfStrategy};
pub use query::{AggCall, AggregateSpec, QueryGraph, Unit};
pub use rank::rank_order_baseline;
