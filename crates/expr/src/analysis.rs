//! Expression analysis used by the planner and optimizer.

use std::collections::BTreeSet;

use crate::logical::{BinaryOp, ColumnRef, Expr};

/// Split a predicate into its top-level AND conjuncts.
///
/// `a AND (b AND c)` → `[a, b, c]`. OR is never split.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect_conjuncts(expr, &mut out);
    out
}

fn collect_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Re-assemble conjuncts into a single predicate (`None` if empty).
pub fn conjoin(conjuncts: Vec<Expr>) -> Option<Expr> {
    conjuncts.into_iter().reduce(Expr::and)
}

/// All column references in the expression (sorted, deduplicated).
pub fn columns_referenced(expr: &Expr) -> BTreeSet<ColumnRef> {
    let mut out = BTreeSet::new();
    expr.walk(&mut |e| {
        if let Expr::Column(c) = e {
            out.insert(c.clone());
        }
    });
    out
}

/// Names of all UDFs called anywhere in the expression (sorted, dedup'd).
pub fn udfs_referenced(expr: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    expr.walk(&mut |e| {
        if let Expr::Udf { name, .. } = e {
            out.insert(name.clone());
        }
    });
    out
}

/// True when the expression contains at least one UDF call.
pub fn contains_udf(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if matches!(e, Expr::Udf { .. }) {
            found = true;
        }
    });
    found
}

/// True when the expression contains at least one aggregate call.
/// (Grouping validation itself runs on the planner's *rewritten*
/// expressions — aggregate calls already replaced by `$aN` references — so
/// plain [`columns_referenced`] covers the "outside aggregates" check.)
pub fn contains_aggregate(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if matches!(e, Expr::Aggregate { .. }) {
            found = true;
        }
    });
    found
}

/// Heuristic selectivity for a predicate, used when no explicit annotation is
/// available. Mirrors the classic System-R defaults.
pub fn estimate_selectivity(expr: &Expr) -> f64 {
    match expr {
        Expr::Literal(csq_common::Value::Bool(true)) => 1.0,
        Expr::Literal(csq_common::Value::Bool(false)) => 0.0,
        Expr::Binary { op, left, right } => match op {
            BinaryOp::Eq => 0.1,
            BinaryOp::NotEq => 0.9,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 1.0 / 3.0,
            BinaryOp::And => estimate_selectivity(left) * estimate_selectivity(right),
            BinaryOp::Or => {
                let (l, r) = (estimate_selectivity(left), estimate_selectivity(right));
                (l + r - l * r).clamp(0.0, 1.0)
            }
            _ => 1.0,
        },
        Expr::Unary {
            op: crate::logical::UnaryOp::Not,
            expr,
        } => 1.0 - estimate_selectivity(expr),
        _ => 0.5,
    }
}

/// If `expr` is an equi-comparison between exactly two columns from two
/// different qualifier sets, return the pair — used to recognize join
/// predicates like `S.Name = E.CompanyName`.
pub fn as_equijoin(expr: &Expr) -> Option<(ColumnRef, ColumnRef)> {
    if let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = expr
    {
        if let (Expr::Column(l), Expr::Column(r)) = (left.as_ref(), right.as_ref()) {
            return Some((l.clone(), r.clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::Expr;

    fn fig1_where() -> Expr {
        // S.Change / S.Close > 0.2 AND ClientAnalysis(S.Quotes) > 500
        let simple = Expr::binary(
            Expr::binary(
                Expr::col("S", "Change"),
                BinaryOp::Div,
                Expr::col("S", "Close"),
            ),
            BinaryOp::Gt,
            Expr::lit(0.2),
        );
        let udf = Expr::binary(
            Expr::udf("ClientAnalysis", vec![Expr::col("S", "Quotes")]),
            BinaryOp::Gt,
            Expr::lit(500i64),
        );
        simple.and(udf)
    }

    #[test]
    fn split_conjuncts_flattens() {
        let cs = split_conjuncts(&fig1_where());
        assert_eq!(cs.len(), 2);
        assert!(!contains_udf(&cs[0]));
        assert!(contains_udf(&cs[1]));
    }

    #[test]
    fn split_does_not_break_or() {
        let e = Expr::binary(Expr::lit(true), BinaryOp::Or, Expr::lit(false));
        assert_eq!(split_conjuncts(&e).len(), 1);
    }

    #[test]
    fn conjoin_inverts_split() {
        let e = fig1_where();
        let re = conjoin(split_conjuncts(&e)).unwrap();
        assert_eq!(re, e);
    }

    #[test]
    fn columns_and_udfs_collected() {
        let e = fig1_where();
        let cols = columns_referenced(&e);
        assert_eq!(cols.len(), 3);
        assert!(cols.contains(&ColumnRef::qualified("S", "Quotes")));
        let udfs = udfs_referenced(&e);
        assert_eq!(udfs.into_iter().collect::<Vec<_>>(), vec!["ClientAnalysis"]);
    }

    #[test]
    fn selectivity_heuristics() {
        let eq = Expr::binary(Expr::col_bare("a"), BinaryOp::Eq, Expr::lit(1i64));
        assert!((estimate_selectivity(&eq) - 0.1).abs() < 1e-12);
        let both = eq.clone().and(eq.clone());
        assert!((estimate_selectivity(&both) - 0.01).abs() < 1e-12);
        let or = Expr::binary(eq.clone(), BinaryOp::Or, eq);
        assert!((estimate_selectivity(&or) - 0.19).abs() < 1e-12);
    }

    #[test]
    fn equijoin_recognized() {
        let e = Expr::binary(
            Expr::col("S", "Name"),
            BinaryOp::Eq,
            Expr::col("E", "CompanyName"),
        );
        let (l, r) = as_equijoin(&e).unwrap();
        assert_eq!(l, ColumnRef::qualified("S", "Name"));
        assert_eq!(r, ColumnRef::qualified("E", "CompanyName"));
        let not_join = Expr::binary(Expr::col("S", "Name"), BinaryOp::Eq, Expr::lit("x"));
        assert!(as_equijoin(&not_join).is_none());
    }
}
