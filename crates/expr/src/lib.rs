//! # csq-expr — scalar expressions
//!
//! Expressions appear at two levels:
//!
//! * [`Expr`] — *logical* expressions referencing columns by
//!   `[qualifier.]name` and functions by name. This is what the SQL front end
//!   produces and what the optimizer rearranges. Client-site UDF calls are
//!   ordinary [`Expr::Udf`] nodes here; the optimizer is responsible for
//!   extracting them into dedicated shipping operators.
//! * [`PhysExpr`] — *physical* expressions bound to a concrete row layout
//!   (columns by ordinal), evaluable against a [`csq_common::Row`].
//!
//! [`analysis`] provides the helpers the planner and optimizer need:
//! conjunct splitting, referenced-column collection, type inference, and
//! selectivity heuristics.

pub mod analysis;
pub mod logical;
pub mod physical;

pub use analysis::{columns_referenced, split_conjuncts, udfs_referenced};
pub use logical::{AggFunc, BinaryOp, ColumnRef, Expr, UnaryOp};
pub use physical::{bind, PhysExpr};
