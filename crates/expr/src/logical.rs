//! Logical (unbound) expressions.

use csq_common::Value;
use std::fmt;

/// A column reference `[qualifier.]name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Optional table alias.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    /// True for comparison operators producing BOOL from two comparables.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for `AND` / `OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
        )
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// SQL aggregate functions over a group of rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)` — rows, or rows with a non-NULL argument.
    Count,
    /// `SUM(expr)` — NULL over an all-NULL (or empty) group.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)` — always a FLOAT; NULL over an all-NULL group.
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Recognize an aggregate function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ]
        .into_iter()
        .find(|f| name.eq_ignore_ascii_case(f.name()))
    }

    /// Result type given the argument type (`None` for `COUNT(*)` or an
    /// argument whose type is unknown).
    pub fn result_type(self, arg: Option<csq_common::DataType>) -> csq_common::DataType {
        use csq_common::DataType;
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Int),
        }
    }
}

/// A logical scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Literal(Value),
    /// A column reference.
    Column(ColumnRef),
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operation.
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// A user-defined function call `name(args...)`. Whether it is
    /// client-site is a property of the registered function, not the syntax.
    Udf { name: String, args: Vec<Expr> },
    /// An aggregate call `FUNC(expr)` / `COUNT(*)` (`arg` is `None`).
    /// Only meaningful in SELECT items and HAVING; the planner rewrites
    /// every call into a reference to its synthetic result column.
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// `left op right` convenience constructor.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// A qualified column expression.
    pub fn col(qualifier: &str, name: &str) -> Expr {
        Expr::Column(ColumnRef::qualified(qualifier, name))
    }

    /// An unqualified column expression.
    pub fn col_bare(name: &str) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// A literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// A UDF call expression.
    pub fn udf(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Udf {
            name: name.to_string(),
            args,
        }
    }

    /// An aggregate call expression (`arg = None` is `COUNT(*)`).
    pub fn agg(func: AggFunc, arg: Option<Expr>) -> Expr {
        Expr::Aggregate {
            func,
            arg: arg.map(Box::new),
        }
    }

    /// `AND` of two expressions.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, other)
    }

    /// Depth-first walk over this expression and all children.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Udf { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.walk(f);
                }
            }
        }
    }

    /// Rewrite every node bottom-up with `f`.
    pub fn rewrite(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Literal(_) | Expr::Column(_) => self,
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.rewrite(f)),
            },
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.rewrite(f)),
                op,
                right: Box::new(right.rewrite(f)),
            },
            Expr::Udf { name, args } => Expr::Udf {
                name,
                args: args.into_iter().map(|a| a.rewrite(f)).collect(),
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func,
                arg: arg.map(|a| Box::new(a.rewrite(f))),
            },
        };
        f(rebuilt)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "-({expr})"),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Udf { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => write!(f, "{}({a})", func.name()),
                None => write!(f, "{}(*)", func.name()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::binary(
            Expr::binary(
                Expr::col("S", "Change"),
                BinaryOp::Div,
                Expr::col("S", "Close"),
            ),
            BinaryOp::Gt,
            Expr::lit(0.2),
        );
        assert_eq!(e.to_string(), "((S.Change / S.Close) > 0.2)");
    }

    #[test]
    fn udf_display() {
        let e = Expr::binary(
            Expr::udf("ClientAnalysis", vec![Expr::col("S", "Quotes")]),
            BinaryOp::Gt,
            Expr::lit(500i64),
        );
        assert_eq!(e.to_string(), "(ClientAnalysis(S.Quotes) > 500)");
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::udf("f", vec![Expr::col_bare("a"), Expr::lit(1i64)]).and(Expr::lit(true));
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 5); // and, udf, a, 1, true
    }

    #[test]
    fn rewrite_replaces_columns() {
        let e = Expr::col_bare("a").and(Expr::col_bare("b"));
        let rewritten = e.rewrite(&|x| match x {
            Expr::Column(_) => Expr::lit(true),
            other => other,
        });
        assert_eq!(rewritten.to_string(), "(true AND true)");
    }
}
