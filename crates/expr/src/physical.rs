//! Physical (bound) expressions: columns resolved to ordinals, evaluable.
//!
//! UDF calls cannot be bound here: by the time a plan reaches execution,
//! every client-site UDF has been extracted into a shipping operator and its
//! result is just a column of the input. Attempting to bind a residual
//! [`Expr::Udf`] is a planning bug and reported as such.

use csq_common::{CsqError, DataType, Result, Row, Schema, Value};

use crate::logical::{BinaryOp, Expr, UnaryOp};

/// A bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    /// A constant.
    Literal(Value),
    /// Input column at this ordinal.
    Column(usize),
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<PhysExpr> },
    /// Binary operation.
    Binary {
        left: Box<PhysExpr>,
        op: BinaryOp,
        right: Box<PhysExpr>,
    },
}

/// Bind `expr` against `schema`, resolving column references to ordinals.
pub fn bind(expr: &Expr, schema: &Schema) -> Result<PhysExpr> {
    match expr {
        Expr::Literal(v) => Ok(PhysExpr::Literal(v.clone())),
        Expr::Column(c) => {
            let idx = schema.index_of(c.qualifier.as_deref(), &c.name)?;
            Ok(PhysExpr::Column(idx))
        }
        Expr::Unary { op, expr } => Ok(PhysExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        }),
        Expr::Binary { left, op, right } => Ok(PhysExpr::Binary {
            left: Box::new(bind(left, schema)?),
            op: *op,
            right: Box::new(bind(right, schema)?),
        }),
        Expr::Udf { name, .. } => Err(CsqError::Plan(format!(
            "UDF '{name}' reached physical binding; it should have been \
             extracted into a shipping operator by the optimizer"
        ))),
        Expr::Aggregate { func, .. } => Err(CsqError::Plan(format!(
            "aggregate {} reached physical binding; it should have been \
             rewritten into a result-column reference by the planner",
            func.name()
        ))),
    }
}

impl PhysExpr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            PhysExpr::Literal(v) => Ok(v.clone()),
            PhysExpr::Column(i) => {
                if *i >= row.len() {
                    return Err(CsqError::Exec(format!(
                        "column ordinal {i} out of bounds for row of width {}",
                        row.len()
                    )));
                }
                Ok(row.value(*i).clone())
            }
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                eval_unary(*op, v)
            }
            PhysExpr::Binary { left, op, right } => {
                // Short-circuit AND/OR with SQL three-valued logic.
                if op.is_logical() {
                    return eval_logical(*op, left, right, row);
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
        }
    }

    /// Evaluate as a predicate: NULL (unknown) is treated as false, per SQL
    /// WHERE semantics.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        Ok(self.eval(row)?.as_bool()?.unwrap_or(false))
    }

    /// Infer the output type given the input schema (used by projections).
    pub fn infer_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            PhysExpr::Literal(v) => v
                .data_type()
                .ok_or_else(|| CsqError::Type("cannot infer type of bare NULL literal".into())),
            PhysExpr::Column(i) => Ok(schema.field(*i).dtype),
            PhysExpr::Unary { op, expr } => match op {
                UnaryOp::Not => Ok(DataType::Bool),
                UnaryOp::Neg => expr.infer_type(schema),
            },
            PhysExpr::Binary { left, op, right } => {
                if op.is_comparison() || op.is_logical() {
                    Ok(DataType::Bool)
                } else {
                    let (lt, rt) = (left.infer_type(schema)?, right.infer_type(schema)?);
                    if lt == DataType::Float || rt == DataType::Float || *op == BinaryOp::Div {
                        Ok(DataType::Float)
                    } else {
                        Ok(DataType::Int)
                    }
                }
            }
        }
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Not => match v.as_bool()? {
            Some(b) => Ok(Value::Bool(!b)),
            None => Ok(Value::Null),
        },
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Null => Ok(Value::Null),
            other => Err(CsqError::Type(format!(
                "cannot negate {:?}",
                other.data_type()
            ))),
        },
    }
}

fn eval_logical(op: BinaryOp, left: &PhysExpr, right: &PhysExpr, row: &Row) -> Result<Value> {
    let l = left.eval(row)?.as_bool()?;
    match (op, l) {
        // Short circuits.
        (BinaryOp::And, Some(false)) => Ok(Value::Bool(false)),
        (BinaryOp::Or, Some(true)) => Ok(Value::Bool(true)),
        _ => {
            let r = right.eval(row)?.as_bool()?;
            let out = match op {
                BinaryOp::And => match (l, r) {
                    (Some(true), Some(true)) => Some(true),
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    _ => None,
                },
                BinaryOp::Or => match (l, r) {
                    (Some(false), Some(false)) => Some(false),
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    _ => None,
                },
                _ => unreachable!("eval_logical called with non-logical op"),
            };
            Ok(out.map(Value::Bool).unwrap_or(Value::Null))
        }
    }
}

/// Evaluate a non-logical binary operator on two values.
pub fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if op.is_comparison() {
        let ord = l.sql_cmp(r)?;
        let out = match ord {
            None => Value::Null,
            Some(o) => {
                use std::cmp::Ordering::*;
                let b = match op {
                    BinaryOp::Eq => o == Equal,
                    BinaryOp::NotEq => o != Equal,
                    BinaryOp::Lt => o == Less,
                    BinaryOp::LtEq => o != Greater,
                    BinaryOp::Gt => o == Greater,
                    BinaryOp::GtEq => o != Less,
                    _ => unreachable!(),
                };
                Value::Bool(b)
            }
        };
        return Ok(out);
    }
    // Arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) if op != BinaryOp::Div => {
            let out = match op {
                BinaryOp::Add => a.checked_add(*b),
                BinaryOp::Sub => a.checked_sub(*b),
                BinaryOp::Mul => a.checked_mul(*b),
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| CsqError::Exec("integer overflow".into()))
        }
        _ => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            let out = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(CsqError::Exec("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("S", "Change", DataType::Float),
            Field::qualified("S", "Close", DataType::Float),
            Field::qualified("S", "Name", DataType::Str),
        ])
    }

    fn row() -> Row {
        Row::new(vec![
            Value::Float(30.0),
            Value::Float(100.0),
            Value::from("acme"),
        ])
    }

    #[test]
    fn bind_and_eval_paper_predicate() {
        // S.Change / S.Close > 0.2  — the server-site predicate of Figure 1.
        let e = Expr::binary(
            Expr::binary(
                Expr::col("S", "Change"),
                BinaryOp::Div,
                Expr::col("S", "Close"),
            ),
            BinaryOp::Gt,
            Expr::lit(0.2),
        );
        let p = bind(&e, &schema()).unwrap();
        assert!(p.eval_predicate(&row()).unwrap());
        assert_eq!(p.infer_type(&schema()).unwrap(), DataType::Bool);
    }

    #[test]
    fn binding_udf_is_plan_error() {
        let e = Expr::udf("ClientAnalysis", vec![Expr::col("S", "Name")]);
        let err = bind(&e, &schema()).unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn unknown_column_fails_bind() {
        let e = Expr::col("S", "Volume");
        assert_eq!(bind(&e, &schema()).unwrap_err().kind(), "catalog");
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND false = false; NULL AND true = NULL; NULL OR true = true.
        let null = PhysExpr::Literal(Value::Null);
        let t = PhysExpr::Literal(Value::Bool(true));
        let f = PhysExpr::Literal(Value::Bool(false));
        let r = Row::new(vec![]);
        let and_nf = PhysExpr::Binary {
            left: Box::new(null.clone()),
            op: BinaryOp::And,
            right: Box::new(f.clone()),
        };
        assert_eq!(and_nf.eval(&r).unwrap(), Value::Bool(false));
        let and_nt = PhysExpr::Binary {
            left: Box::new(null.clone()),
            op: BinaryOp::And,
            right: Box::new(t.clone()),
        };
        assert_eq!(and_nt.eval(&r).unwrap(), Value::Null);
        let or_nt = PhysExpr::Binary {
            left: Box::new(null),
            op: BinaryOp::Or,
            right: Box::new(t),
        };
        assert_eq!(or_nt.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn predicate_treats_null_as_false() {
        let p = PhysExpr::Literal(Value::Null);
        assert!(!p.eval_predicate(&Row::new(vec![])).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let r = Row::new(vec![]);
        let add = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Int(2))),
            op: BinaryOp::Add,
            right: Box::new(PhysExpr::Literal(Value::Int(3))),
        };
        assert_eq!(add.eval(&r).unwrap(), Value::Int(5));
        let div = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Int(1))),
            op: BinaryOp::Div,
            right: Box::new(PhysExpr::Literal(Value::Int(2))),
        };
        assert_eq!(div.eval(&r).unwrap(), Value::Float(0.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let div = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Int(1))),
            op: BinaryOp::Div,
            right: Box::new(PhysExpr::Literal(Value::Int(0))),
        };
        assert_eq!(div.eval(&Row::new(vec![])).unwrap_err().kind(), "exec");
    }

    #[test]
    fn overflow_errors() {
        let mul = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Int(i64::MAX))),
            op: BinaryOp::Mul,
            right: Box::new(PhysExpr::Literal(Value::Int(2))),
        };
        assert_eq!(mul.eval(&Row::new(vec![])).unwrap_err().kind(), "exec");
    }

    #[test]
    fn short_circuit_avoids_rhs_error() {
        // false AND (1/0) must not evaluate the division.
        let bad = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Int(1))),
            op: BinaryOp::Div,
            right: Box::new(PhysExpr::Literal(Value::Int(0))),
        };
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::Literal(Value::Bool(false))),
            op: BinaryOp::And,
            right: Box::new(bad),
        };
        assert_eq!(e.eval(&Row::new(vec![])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn out_of_bounds_column_is_exec_error() {
        let c = PhysExpr::Column(5);
        assert_eq!(c.eval(&Row::new(vec![])).unwrap_err().kind(), "exec");
    }
}
