//! Seeded, deadline-bounded exponential backoff for client retries.
//!
//! This is the **sanctioned sleep site** for the client/service path: the
//! `no-bare-sleep` lint (csq-analyze) forbids ad-hoc `std::thread::sleep`
//! calls in service-path crates precisely so that every retry wait in the
//! system flows through this helper, where it is (a) capped, (b) jittered
//! deterministically from a committed seed, and (c) bounded by the caller's
//! remaining deadline budget.
//!
//! The schedule is classic capped exponential with equal-jitter: attempt
//! `n` draws uniformly from `[d/2, d)` where `d = min(cap, base · 2^n)`.
//! Jitter is derived from SplitMix64 seeded with `seed ⊕ mix(attempt)`, so
//! the full schedule is a pure function of `(seed, attempt)` — two clients
//! with different seeds decorrelate, while a test replaying a seed observes
//! the exact same waits.

use std::time::Duration;

use csq_common::Deadline;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Deterministic capped-exponential backoff policy.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl Default for Backoff {
    /// 10ms base, 1s cap, fixed seed — sensible for LAN service retries.
    fn default() -> Backoff {
        Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 0x5EED)
    }
}

impl Backoff {
    /// A policy waiting `base · 2^attempt` (capped at `cap`, equal-jittered)
    /// before retry number `attempt`. `seed` makes the jitter deterministic.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let cap = cap.max(base);
        Backoff { base, cap, seed }
    }

    /// The configured cap — no [`delay`](Backoff::delay) ever exceeds it.
    pub fn cap(&self) -> Duration {
        self.cap
    }

    /// The jittered wait before retry `attempt` (0-based). Pure in
    /// `(seed, attempt)`: calling twice returns the same duration.
    pub fn delay(&self, attempt: u32) -> Duration {
        // 2^attempt, saturating well past any realistic cap.
        let factor = 1u32 << attempt.min(20);
        let envelope = self.base.checked_mul(factor).unwrap_or(self.cap);
        let envelope = envelope.min(self.cap);
        let floor = envelope / 2;
        // Decorrelate attempts under one seed without sequential state, so
        // delay(n) is addressable directly (no need to replay 0..n).
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let span = (envelope - floor).as_nanos() as f64;
        floor + Duration::from_nanos((rng.gen_f64() * span) as u64)
    }

    /// Sleep before retry `attempt`, bounded by the caller's deadline.
    ///
    /// Returns `false` **without sleeping** when the wait would consume the
    /// entire remaining budget — a retry that wakes up already expired is
    /// wasted work, so the caller should give up and surface its last error
    /// instead. With no deadline it always sleeps and returns `true`.
    pub fn sleep(&self, attempt: u32, deadline: Option<&Deadline>) -> bool {
        let d = self.delay(attempt);
        if let Some(dl) = deadline {
            if d >= dl.remaining() {
                return false;
            }
        }
        std::thread::sleep(d);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_deterministic_per_seed_and_attempt() {
        let a = Backoff::new(Duration::from_millis(5), Duration::from_secs(2), 7);
        let b = Backoff::new(Duration::from_millis(5), Duration::from_secs(2), 7);
        for n in 0..12 {
            assert_eq!(a.delay(n), b.delay(n));
        }
        let c = Backoff::new(Duration::from_millis(5), Duration::from_secs(2), 8);
        assert!(
            (0..12).any(|n| a.delay(n) != c.delay(n)),
            "different seeds should decorrelate"
        );
    }

    #[test]
    fn delay_never_exceeds_cap() {
        let p = Backoff::new(Duration::from_millis(10), Duration::from_millis(250), 42);
        for n in 0..64 {
            assert!(p.delay(n) <= p.cap(), "attempt {n} exceeded the cap");
        }
    }

    #[test]
    fn sleep_refuses_to_burn_the_whole_budget() {
        let p = Backoff::new(Duration::from_secs(1), Duration::from_secs(1), 1);
        let dl = Deadline::from_timeout(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        assert!(!p.sleep(0, Some(&dl)), "1s wait vs 5ms budget must refuse");
        assert!(t0.elapsed() < Duration::from_millis(100), "must not sleep");
    }

    #[test]
    fn sleep_without_deadline_waits_and_returns_true() {
        let p = Backoff::new(Duration::from_millis(1), Duration::from_millis(2), 3);
        assert!(p.sleep(0, None));
    }
}
