//! UDF trait, signatures, and the client registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use csq_common::{CsqError, DataType, Result, Value};

/// Declared interface of a UDF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfSignature {
    /// Function name as referenced in SQL (case-insensitive lookup).
    pub name: String,
    /// Argument types in order.
    pub arg_types: Vec<DataType>,
    /// Result type.
    pub return_type: DataType,
}

impl UdfSignature {
    /// Build a signature.
    pub fn new(name: impl Into<String>, arg_types: Vec<DataType>, return_type: DataType) -> Self {
        UdfSignature {
            name: name.into(),
            arg_types,
            return_type,
        }
    }

    /// Check an argument list against this signature.
    pub fn check_args(&self, args: &[Value]) -> Result<()> {
        if args.len() != self.arg_types.len() {
            return Err(CsqError::Client(format!(
                "UDF '{}': expected {} arguments, got {}",
                self.name,
                self.arg_types.len(),
                args.len()
            )));
        }
        for (i, (v, expected)) in args.iter().zip(&self.arg_types).enumerate() {
            if let Some(dt) = v.data_type() {
                if !expected.accepts(dt) {
                    return Err(CsqError::Client(format!(
                        "UDF '{}', argument {i}: expected {expected}, got {dt}",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Per-invocation CPU cost model for the virtual-time simulator, in µs:
/// `fixed + per_byte × argument_bytes`. The paper assumes the client is not
/// the pipeline bottleneck; the default (zero) encodes that assumption, and
/// the ablation benches override it to explore client-bound regimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UdfCost {
    /// Fixed cost per invocation, µs.
    pub fixed_us: f64,
    /// Additional cost per argument byte, µs.
    pub per_byte_us: f64,
}

impl Default for UdfCost {
    fn default() -> Self {
        UdfCost {
            fixed_us: 0.0,
            per_byte_us: 0.0,
        }
    }
}

impl UdfCost {
    /// Cost of one invocation over `arg_bytes` bytes of arguments, µs.
    pub fn invocation_us(&self, arg_bytes: usize) -> u64 {
        (self.fixed_us + self.per_byte_us * arg_bytes as f64).ceil() as u64
    }
}

/// A scalar user-defined function executing at the client site.
pub trait ScalarUdf: Send + Sync {
    /// Name, argument types, result type.
    fn signature(&self) -> &UdfSignature;

    /// Evaluate on one argument tuple.
    fn invoke(&self, args: &[Value]) -> Result<Value>;

    /// Evaluate on a batch of argument tuples. The default maps
    /// [`ScalarUdf::invoke`]; implementations override to amortize
    /// per-invocation setup across the batch (the VM reuses one value
    /// stack, see `csq_client::vm::VmUdf`).
    fn invoke_batch(&self, batch: &[&[Value]]) -> Result<Vec<Value>> {
        batch.iter().map(|args| self.invoke(args)).collect()
    }

    /// Expected wire size of one result, bytes — the paper's `R`, used by
    /// the cost model and optimizer. `None` when unknown (a default is
    /// assumed).
    fn result_size_hint(&self) -> Option<usize> {
        None
    }

    /// Expected selectivity when the result is used as a predicate
    /// (`UDF(x) > c` etc.). `None` when unknown.
    fn selectivity_hint(&self) -> Option<f64> {
        None
    }

    /// CPU cost model for the simulator.
    fn cost(&self) -> UdfCost {
        UdfCost::default()
    }
}

/// The client-site function registry with invocation accounting.
///
/// The server holds only signatures (via signature-level
/// metadata exchanged at session setup); implementations never leave the
/// client — the confidentiality property motivating client-site UDFs.
#[derive(Default)]
pub struct ClientRuntime {
    udfs: RwLock<HashMap<String, Arc<dyn ScalarUdf>>>,
    invocations: AtomicU64,
    cache_hits: AtomicU64,
}

impl ClientRuntime {
    /// Empty runtime.
    pub fn new() -> ClientRuntime {
        ClientRuntime::default()
    }

    /// Register a UDF. Errors on duplicate names.
    pub fn register(&self, udf: Arc<dyn ScalarUdf>) -> Result<()> {
        let key = udf.signature().name.to_ascii_lowercase();
        let mut udfs = self.udfs.write();
        if udfs.contains_key(&key) {
            return Err(CsqError::Client(format!(
                "UDF '{}' already registered",
                udf.signature().name
            )));
        }
        udfs.insert(key, udf);
        Ok(())
    }

    /// Register a UDF, replacing any existing implementation under the same
    /// (case-insensitive) name. Returns `true` when a previous
    /// implementation was replaced. Re-registration is how a long-lived
    /// client rolls out a new UDF version mid-session; the query service's
    /// plan cache watches for it (re-registration bumps the database's plan
    /// epoch, invalidating cached plans whose UDF metadata went stale).
    pub fn replace(&self, udf: Arc<dyn ScalarUdf>) -> bool {
        let key = udf.signature().name.to_ascii_lowercase();
        self.udfs.write().insert(key, udf).is_some()
    }

    /// Look up a UDF by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn ScalarUdf>> {
        self.udfs
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| CsqError::Client(format!("unknown UDF '{name}'")))
    }

    /// Invoke `name` on `args`, with signature checking and accounting.
    pub fn invoke(&self, name: &str, args: &[Value]) -> Result<Value> {
        let udf = self.get(name)?;
        udf.signature().check_args(args)?;
        self.invocations.fetch_add(1, Ordering::Relaxed);
        udf.invoke(args)
    }

    /// Invoke `name` on a whole batch of argument tuples: signatures are
    /// checked per tuple, the invocation counter advances by the batch
    /// size, and the UDF's (possibly amortized) batch entry point runs.
    /// The counter covers the whole batch even when the UDF fails midway
    /// (errors poison the session, so per-tuple precision on the error
    /// path buys nothing).
    pub fn invoke_batch(&self, name: &str, batch: &[&[Value]]) -> Result<Vec<Value>> {
        let udf = self.get(name)?;
        for args in batch {
            udf.signature().check_args(args)?;
        }
        self.invocations
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let out = udf.invoke_batch(batch)?;
        // A custom override returning the wrong arity would otherwise panic
        // downstream consumers indexing result slots.
        if out.len() != batch.len() {
            return Err(CsqError::Client(format!(
                "UDF '{name}' batch returned {} results for {} argument tuples",
                out.len(),
                batch.len()
            )));
        }
        Ok(out)
    }

    /// Record a duplicate-elimination cache hit (the invocation was avoided).
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Total UDF invocations executed.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Total invocations avoided via duplicate caching.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Names of registered UDFs (sorted).
    pub fn udf_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .udfs
            .read()
            .values()
            .map(|u| u.signature().name.clone())
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::Blob;

    struct Doubler {
        sig: UdfSignature,
    }

    impl Doubler {
        fn new() -> Doubler {
            Doubler {
                sig: UdfSignature::new("Double", vec![DataType::Int], DataType::Int),
            }
        }
    }

    impl ScalarUdf for Doubler {
        fn signature(&self) -> &UdfSignature {
            &self.sig
        }
        fn invoke(&self, args: &[Value]) -> Result<Value> {
            Ok(Value::Int(args[0].as_i64()? * 2))
        }
    }

    #[test]
    fn register_invoke_account() {
        let rt = ClientRuntime::new();
        rt.register(Arc::new(Doubler::new())).unwrap();
        assert_eq!(
            rt.invoke("double", &[Value::Int(21)]).unwrap(),
            Value::Int(42)
        );
        assert_eq!(rt.invocations(), 1);
        rt.record_cache_hit();
        assert_eq!(rt.cache_hits(), 1);
        assert_eq!(rt.udf_names(), vec!["Double".to_string()]);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let rt = ClientRuntime::new();
        rt.register(Arc::new(Doubler::new())).unwrap();
        assert_eq!(
            rt.register(Arc::new(Doubler::new())).unwrap_err().kind(),
            "client"
        );
    }

    #[test]
    fn unknown_udf_is_client_error() {
        let rt = ClientRuntime::new();
        assert_eq!(rt.invoke("nope", &[]).unwrap_err().kind(), "client");
    }

    #[test]
    fn signature_checks_arity_and_types() {
        let rt = ClientRuntime::new();
        rt.register(Arc::new(Doubler::new())).unwrap();
        assert!(rt.invoke("Double", &[]).is_err());
        assert!(rt
            .invoke("Double", &[Value::Blob(Blob::synthetic(4, 0))])
            .is_err());
        // NULL passes the type check (SQL semantics); the UDF itself decides.
        assert!(rt.invoke("Double", &[Value::Null]).is_err()); // as_i64 on NULL
    }

    #[test]
    fn cost_model_arithmetic() {
        let c = UdfCost {
            fixed_us: 10.0,
            per_byte_us: 0.5,
        };
        assert_eq!(c.invocation_us(100), 60);
        assert_eq!(UdfCost::default().invocation_us(1 << 20), 0);
    }
}
