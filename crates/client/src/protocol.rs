//! The server↔client wire protocol.
//!
//! A session executes one *client task*: an ordered list of UDF steps (each
//! appends a result column to the incoming row), an optional **pushable
//! predicate** evaluated at the client, and an optional **pushable
//! projection** selecting which columns are returned. This is exactly the
//! client half of the paper's strategies:
//!
//! * semi-join — rows are (deduplicated) argument tuples; no predicate may
//!   be pushed (results must return 1:1, §2.3.1); returned columns are the
//!   UDF results.
//! * client-site join — rows are whole records; pushable selections and
//!   projections run at the client (§2.3.2), shrinking the uplink stream.
//!
//! Everything is encoded with the `csq-common` codec so the byte counts the
//! network model charges are the real encoded sizes.

use csq_common::codec::{encode_row, encode_value, Decoder};
use csq_common::{CsqError, Result, Row};
use csq_expr::{BinaryOp, PhysExpr, UnaryOp};

/// Which strategy this task implements (affects validation, not execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskMode {
    /// Semi-join: argument tuples in, result columns out, strict 1:1.
    SemiJoin,
    /// Client-site join: whole records in, filtered/projected records out.
    ClientJoin,
}

/// One UDF application step: invoke `udf` on the columns at `arg_cols` of
/// the *current* row (input columns plus results of earlier steps) and
/// append the result as a new column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfStep {
    /// Registered UDF name.
    pub udf: String,
    /// Argument column ordinals into the extended row.
    pub arg_cols: Vec<u32>,
}

/// The full description of what the client does to each incoming row.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientTask {
    /// Strategy mode.
    pub mode: TaskMode,
    /// Width of incoming rows (validated on every batch).
    pub input_width: u32,
    /// UDF steps applied in order.
    pub steps: Vec<UdfStep>,
    /// Pushable predicate over the extended row (`ClientJoin` only).
    pub predicate: Option<PhysExpr>,
    /// Pushable projection: ordinals of the extended row to return.
    /// `None` returns the whole extended row.
    pub return_cols: Option<Vec<u32>>,
    /// Memoize UDF results per distinct argument tuple at the client
    /// (\[HN97]-style caching); saves invocations when the server ships
    /// argument duplicates (client-site join on sorted input).
    pub dedup_cache: bool,
}

impl ClientTask {
    /// Validate internal consistency (step/predicate/projection ordinals in
    /// range, SJ restrictions).
    pub fn validate(&self) -> Result<()> {
        let mut width = self.input_width;
        for (i, s) in self.steps.iter().enumerate() {
            for &c in &s.arg_cols {
                if c >= width {
                    return Err(CsqError::Plan(format!(
                        "task step {i} ('{}'): argument column {c} out of range (width {width})",
                        s.udf
                    )));
                }
            }
            width += 1;
        }
        if self.mode == TaskMode::SemiJoin && self.predicate.is_some() {
            return Err(CsqError::Plan(
                "semi-join tasks cannot push predicates: results must map 1:1 \
                 to argument tuples"
                    .into(),
            ));
        }
        if let Some(p) = &self.predicate {
            check_expr_width(p, width)?;
        }
        if let Some(cols) = &self.return_cols {
            for &c in cols {
                if c >= width {
                    return Err(CsqError::Plan(format!(
                        "task projection: column {c} out of range (width {width})"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Width of the extended row after all steps.
    pub fn extended_width(&self) -> u32 {
        self.input_width + self.steps.len() as u32
    }
}

fn check_expr_width(e: &PhysExpr, width: u32) -> Result<()> {
    match e {
        PhysExpr::Literal(_) => Ok(()),
        PhysExpr::Column(i) => {
            if (*i as u32) < width {
                Ok(())
            } else {
                Err(CsqError::Plan(format!(
                    "task predicate: column {i} out of range (width {width})"
                )))
            }
        }
        PhysExpr::Unary { expr, .. } => check_expr_width(expr, width),
        PhysExpr::Binary { left, right, .. } => {
            check_expr_width(left, width)?;
            check_expr_width(right, width)
        }
    }
}

/// Server→client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Install the session's task (sent once, first).
    Install(ClientTask),
    /// A batch of rows to process.
    Batch(Vec<Row>),
    /// No more batches; the client finishes and closes.
    Finish,
}

/// Client→server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Processed rows for one request batch (may be empty after filtering).
    Batch(Vec<Row>),
    /// The task failed; the session is dead.
    Error(String),
}

// ---- encoding ------------------------------------------------------------

const REQ_INSTALL: u8 = 1;
const REQ_BATCH: u8 = 2;
const REQ_FINISH: u8 = 3;
const RESP_BATCH: u8 = 1;
const RESP_ERROR: u8 = 2;

const EXPR_LIT: u8 = 0;
const EXPR_COL: u8 = 1;
const EXPR_UNARY: u8 = 2;
const EXPR_BINARY: u8 = 3;

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn binary_op_code(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Add => 0,
        BinaryOp::Sub => 1,
        BinaryOp::Mul => 2,
        BinaryOp::Div => 3,
        BinaryOp::Eq => 4,
        BinaryOp::NotEq => 5,
        BinaryOp::Lt => 6,
        BinaryOp::LtEq => 7,
        BinaryOp::Gt => 8,
        BinaryOp::GtEq => 9,
        BinaryOp::And => 10,
        BinaryOp::Or => 11,
    }
}

fn binary_op_from(code: u8) -> Result<BinaryOp> {
    Ok(match code {
        0 => BinaryOp::Add,
        1 => BinaryOp::Sub,
        2 => BinaryOp::Mul,
        3 => BinaryOp::Div,
        4 => BinaryOp::Eq,
        5 => BinaryOp::NotEq,
        6 => BinaryOp::Lt,
        7 => BinaryOp::LtEq,
        8 => BinaryOp::Gt,
        9 => BinaryOp::GtEq,
        10 => BinaryOp::And,
        11 => BinaryOp::Or,
        other => return Err(CsqError::Codec(format!("bad binary op code {other}"))),
    })
}

/// Append the encoding of a physical expression.
pub fn encode_expr(e: &PhysExpr, out: &mut Vec<u8>) {
    match e {
        PhysExpr::Literal(v) => {
            out.push(EXPR_LIT);
            encode_value(v, out);
        }
        PhysExpr::Column(i) => {
            out.push(EXPR_COL);
            put_u32(out, *i as u32);
        }
        PhysExpr::Unary { op, expr } => {
            out.push(EXPR_UNARY);
            out.push(match op {
                UnaryOp::Not => 0,
                UnaryOp::Neg => 1,
            });
            encode_expr(expr, out);
        }
        PhysExpr::Binary { left, op, right } => {
            out.push(EXPR_BINARY);
            out.push(binary_op_code(*op));
            encode_expr(left, out);
            encode_expr(right, out);
        }
    }
}

/// Decode a physical expression.
pub fn decode_expr(d: &mut Decoder<'_>) -> Result<PhysExpr> {
    match d.take_u8()? {
        EXPR_LIT => Ok(PhysExpr::Literal(d.value()?)),
        EXPR_COL => Ok(PhysExpr::Column(d.take_u32()? as usize)),
        EXPR_UNARY => {
            let op = match d.take_u8()? {
                0 => UnaryOp::Not,
                1 => UnaryOp::Neg,
                other => return Err(CsqError::Codec(format!("bad unary op code {other}"))),
            };
            Ok(PhysExpr::Unary {
                op,
                expr: Box::new(decode_expr(d)?),
            })
        }
        EXPR_BINARY => {
            let op = binary_op_from(d.take_u8()?)?;
            let left = Box::new(decode_expr(d)?);
            let right = Box::new(decode_expr(d)?);
            Ok(PhysExpr::Binary { left, op, right })
        }
        other => Err(CsqError::Codec(format!("bad expr tag {other}"))),
    }
}

pub(crate) fn take_str(d: &mut Decoder<'_>) -> Result<String> {
    let len = d.take_u32()? as usize;
    let bytes = d.take_bytes(len)?;
    std::str::from_utf8(bytes)
        .map(|s| s.to_string())
        .map_err(|e| CsqError::Codec(format!("invalid UTF-8: {e}")))
}

pub(crate) fn take_bool(d: &mut Decoder<'_>) -> Result<bool> {
    match d.take_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(CsqError::Codec(format!("bad bool byte {other}"))),
    }
}

fn encode_task(task: &ClientTask, out: &mut Vec<u8>) {
    out.push(match task.mode {
        TaskMode::SemiJoin => 0,
        TaskMode::ClientJoin => 1,
    });
    put_u32(out, task.input_width);
    put_u32(out, task.steps.len() as u32);
    for s in &task.steps {
        put_str(out, &s.udf);
        put_u32(out, s.arg_cols.len() as u32);
        for &c in &s.arg_cols {
            put_u32(out, c);
        }
    }
    match &task.predicate {
        Some(p) => {
            put_bool(out, true);
            encode_expr(p, out);
        }
        None => put_bool(out, false),
    }
    match &task.return_cols {
        Some(cols) => {
            put_bool(out, true);
            put_u32(out, cols.len() as u32);
            for &c in cols {
                put_u32(out, c);
            }
        }
        None => put_bool(out, false),
    }
    put_bool(out, task.dedup_cache);
}

fn decode_task(d: &mut Decoder<'_>) -> Result<ClientTask> {
    let mode = match d.take_u8()? {
        0 => TaskMode::SemiJoin,
        1 => TaskMode::ClientJoin,
        other => return Err(CsqError::Codec(format!("bad task mode {other}"))),
    };
    let input_width = d.take_u32()?;
    let n_steps = d.take_count(9)?; // name len + arg count at minimum
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        let udf = take_str(d)?;
        let n_args = d.take_count(4)?;
        let mut arg_cols = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            arg_cols.push(d.take_u32()?);
        }
        steps.push(UdfStep { udf, arg_cols });
    }
    let predicate = if take_bool(d)? {
        Some(decode_expr(d)?)
    } else {
        None
    };
    let return_cols = if take_bool(d)? {
        let n = d.take_count(4)?;
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            cols.push(d.take_u32()?);
        }
        Some(cols)
    } else {
        None
    };
    let dedup_cache = take_bool(d)?;
    Ok(ClientTask {
        mode,
        input_width,
        steps,
        predicate,
        return_cols,
        dedup_cache,
    })
}

fn encode_row_batch(rows: &[Row], out: &mut Vec<u8>) {
    put_u32(out, rows.len() as u32);
    for r in rows {
        encode_row(r, out);
    }
}

fn decode_row_batch(d: &mut Decoder<'_>) -> Result<Vec<Row>> {
    // Each row needs at least its 4-byte column count.
    let n = d.take_count(4)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(d.row()?);
    }
    Ok(rows)
}

impl Request {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Install(task) => {
                out.push(REQ_INSTALL);
                encode_task(task, &mut out);
            }
            Request::Batch(rows) => {
                out.push(REQ_BATCH);
                encode_row_batch(rows, &mut out);
            }
            Request::Finish => out.push(REQ_FINISH),
        }
        out
    }

    /// Encode a `Request::Batch` message directly from borrowed rows —
    /// byte-identical to `Request::Batch(rows.to_vec()).encode()` without
    /// cloning the rows first. This is what the shipping senders use on
    /// their hot path.
    pub fn encode_batch<'r, I>(rows: I) -> Vec<u8>
    where
        I: ExactSizeIterator<Item = &'r Row> + Clone,
    {
        let mut out = Vec::new();
        out.push(REQ_BATCH);
        csq_common::codec::encode_rows_iter(rows, &mut out);
        out
    }

    fn decode_with(d: &mut Decoder<'_>) -> Result<Request> {
        let req = match d.take_u8()? {
            REQ_INSTALL => Request::Install(decode_task(d)?),
            REQ_BATCH => Request::Batch(decode_row_batch(d)?),
            REQ_FINISH => Request::Finish,
            other => return Err(CsqError::Codec(format!("bad request tag {other}"))),
        };
        if !d.is_exhausted() {
            return Err(CsqError::Codec("trailing bytes after request".into()));
        }
        Ok(req)
    }

    /// Decode from wire bytes (copies string/blob payloads).
    pub fn decode(buf: &[u8]) -> Result<Request> {
        Request::decode_with(&mut Decoder::new(buf))
    }

    /// Zero-copy decode: `Str`/`Blob` values in a `Batch` borrow their
    /// payloads from the shared message buffer.
    pub fn decode_shared(buf: &std::sync::Arc<Vec<u8>>) -> Result<Request> {
        Request::decode_with(&mut Decoder::shared(buf))
    }
}

impl Response {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Batch(rows) => {
                out.push(RESP_BATCH);
                encode_row_batch(rows, &mut out);
            }
            Response::Error(msg) => {
                out.push(RESP_ERROR);
                put_str(&mut out, msg);
            }
        }
        out
    }

    fn decode_with(d: &mut Decoder<'_>) -> Result<Response> {
        let resp = match d.take_u8()? {
            RESP_BATCH => Response::Batch(decode_row_batch(d)?),
            RESP_ERROR => Response::Error(take_str(d)?),
            other => return Err(CsqError::Codec(format!("bad response tag {other}"))),
        };
        if !d.is_exhausted() {
            return Err(CsqError::Codec("trailing bytes after response".into()));
        }
        Ok(resp)
    }

    /// Decode from wire bytes (copies string/blob payloads).
    pub fn decode(buf: &[u8]) -> Result<Response> {
        Response::decode_with(&mut Decoder::new(buf))
    }

    /// Zero-copy decode: `Str`/`Blob` values in a `Batch` borrow their
    /// payloads from the shared message buffer.
    pub fn decode_shared(buf: &std::sync::Arc<Vec<u8>>) -> Result<Response> {
        Response::decode_with(&mut Decoder::shared(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::Value;

    fn demo_task() -> ClientTask {
        ClientTask {
            mode: TaskMode::ClientJoin,
            input_width: 3,
            steps: vec![
                UdfStep {
                    udf: "ClientAnalysis".into(),
                    arg_cols: vec![1],
                },
                UdfStep {
                    udf: "Volatility".into(),
                    arg_cols: vec![1, 2],
                },
            ],
            predicate: Some(PhysExpr::Binary {
                left: Box::new(PhysExpr::Column(3)),
                op: BinaryOp::Gt,
                right: Box::new(PhysExpr::Literal(Value::Int(500))),
            }),
            return_cols: Some(vec![0, 3, 4]),
            dedup_cache: true,
        }
    }

    #[test]
    fn task_roundtrips() {
        let task = demo_task();
        let req = Request::Install(task.clone());
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn batch_and_finish_roundtrip() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::from("a")]),
            Row::new(vec![Value::Int(2), Value::Null]),
        ];
        let req = Request::Batch(rows.clone());
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        assert_eq!(
            Request::decode(&Request::Finish.encode()).unwrap(),
            Request::Finish
        );
    }

    #[test]
    fn response_roundtrips() {
        let resp = Response::Batch(vec![Row::new(vec![Value::Bool(true)])]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let err = Response::Error("boom".into());
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn expr_roundtrips_nested() {
        let e = PhysExpr::Binary {
            left: Box::new(PhysExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(PhysExpr::Column(7)),
            }),
            op: BinaryOp::Or,
            right: Box::new(PhysExpr::Binary {
                left: Box::new(PhysExpr::Literal(Value::Float(1.5))),
                op: BinaryOp::LtEq,
                right: Box::new(PhysExpr::Column(0)),
            }),
        };
        let mut buf = Vec::new();
        encode_expr(&e, &mut buf);
        let mut d = Decoder::new(&buf);
        assert_eq!(decode_expr(&mut d).unwrap(), e);
        assert!(d.is_exhausted());
    }

    #[test]
    fn validate_catches_bad_ordinals() {
        let mut t = demo_task();
        t.validate().unwrap();
        t.steps[0].arg_cols = vec![9];
        assert_eq!(t.validate().unwrap_err().kind(), "plan");

        let mut t = demo_task();
        t.return_cols = Some(vec![99]);
        assert_eq!(t.validate().unwrap_err().kind(), "plan");
    }

    #[test]
    fn semijoin_rejects_pushed_predicate() {
        let mut t = demo_task();
        t.mode = TaskMode::SemiJoin;
        assert_eq!(t.validate().unwrap_err().kind(), "plan");
        t.predicate = None;
        t.validate().unwrap();
    }

    #[test]
    fn steps_widen_visible_columns() {
        // Step 1 result (col 3) usable as step 2 argument.
        let t = ClientTask {
            mode: TaskMode::SemiJoin,
            input_width: 3,
            steps: vec![
                UdfStep {
                    udf: "a".into(),
                    arg_cols: vec![0],
                },
                UdfStep {
                    udf: "b".into(),
                    arg_cols: vec![3],
                },
            ],
            predicate: None,
            return_cols: Some(vec![4]),
            dedup_cache: false,
        };
        t.validate().unwrap();
        assert_eq!(t.extended_width(), 5);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(&[42]).is_err());
        assert!(Response::decode(&[]).is_err());
        let mut good = Request::Finish.encode();
        good.push(0);
        assert!(Request::decode(&good).is_err());
    }
}
