//! The query-service wire protocol: SQL in, result streams out.
//!
//! This sits one level *above* the shipping protocol in [`crate::protocol`].
//! That protocol is what the server speaks to a client-site UDF runtime
//! inside one query; this one is what an application speaks to the whole
//! database over a real socket (see `csq-net::tcp`): send SQL (or a
//! prepared-statement handle), get back a column header, a stream of row
//! chunks, and a terminator — or a typed error that maps 1:1 onto
//! [`CsqError::kind`], so errors observed through the service are
//! comparable to errors from the in-process engine (the differential suite
//! relies on this).
//!
//! Results are *streamed* in bounded chunks rather than sent as one
//! message: a client that disconnects mid-result costs the server only the
//! chunk in flight, and the per-frame length cap in the transport stays
//! effective no matter how large a result set is.

use csq_common::codec::Decoder;
use csq_common::{CsqError, Result, Row};

use crate::protocol::{put_bool, put_str, put_u32, take_bool, take_str};

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Execute one SQL statement (planned through the server's plan cache).
    Query {
        /// SQL text.
        sql: String,
        /// Per-query deadline budget in milliseconds; `0` means no
        /// deadline. The server enforces it cooperatively and answers a
        /// typed `timeout` error once it expires.
        deadline_ms: u64,
    },
    /// Parse/optimize only; the plan is pinned to this session under the
    /// returned statement id.
    Prepare {
        /// SQL text (SELECT only).
        sql: String,
    },
    /// Execute a statement previously pinned by `Prepare` on this session.
    Execute {
        /// Session-local statement id from [`QueryResponse::Prepared`].
        stmt: u32,
        /// Per-query deadline budget in milliseconds; `0` = none.
        deadline_ms: u64,
    },
    /// Unpin a prepared statement (fire-and-forget: the server sends no
    /// reply; TCP ordering guarantees it is processed before any later
    /// request on the session). Frees the server-side plan pin and its
    /// slot under the per-session prepared-statement cap.
    CloseStmt {
        /// Session-local statement id to release.
        stmt: u32,
    },
    /// Graceful session end.
    Close,
    /// Ask for this session's identity (id plus cancel key) so another
    /// connection can target it with `CancelQuery`. Answered with
    /// [`QueryResponse::Session`].
    SessionInfo,
    /// Kill the query currently running on session `session` (the
    /// Postgres-style out-of-band cancel: a busy session cannot read its
    /// own socket mid-query, so the cancel arrives on a *different*
    /// connection). Fire-and-forget — no reply on this connection; the
    /// target session's own connection observes a typed `cancelled` error.
    /// `key` must match the secret returned by `SessionInfo`, so a
    /// stranger guessing session ids cannot kill other users' queries.
    CancelQuery {
        /// Target session id.
        session: u64,
        /// That session's cancel key.
        key: u64,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Result stream header: output column display names.
    Begin {
        /// Column display names, in output order.
        columns: Vec<String>,
    },
    /// One chunk of result rows (zero or more chunks per query).
    Rows(Vec<Row>),
    /// Result stream terminator.
    End {
        /// Total rows streamed.
        rows: u64,
        /// DML-affected row count (0 for SELECT).
        affected: u64,
        /// Whether the server reused a cached plan (no parse/optimize).
        plan_cache_hit: bool,
    },
    /// The statement failed. `kind` is the server-side [`CsqError::kind`]
    /// tag. With `fatal: false` the session survives and the next request
    /// plans fresh; `fatal: true` announces the server is closing this
    /// connection right after the reply (admission refusal, shutdown
    /// notice, protocol fault), so clients must not reuse or pool it.
    Error {
        /// Error category tag.
        kind: String,
        /// Human-readable message.
        message: String,
        /// True when the server closes the connection after this reply.
        fatal: bool,
        /// The server's verdict on whether retrying (with backoff, possibly
        /// on a fresh connection) can succeed. Usually
        /// [`CsqError::retryable`] of the underlying error, but the server
        /// may override — e.g. a load-shed refusal keeps kind `limit` yet
        /// is retryable once pressure clears.
        retryable: bool,
    },
    /// Answer to `Prepare`.
    Prepared {
        /// Session-local statement id.
        stmt: u32,
        /// Whether the plan came from the server's plan cache.
        plan_cache_hit: bool,
    },
    /// Answer to `SessionInfo`: this session's identity for out-of-band
    /// cancellation.
    Session {
        /// Server-assigned session id.
        id: u64,
        /// Secret cancel key for this session.
        key: u64,
    },
}

impl QueryResponse {
    /// The error response for a statement failure the session survives.
    pub fn from_error(e: &CsqError) -> QueryResponse {
        QueryResponse::Error {
            kind: e.kind().to_string(),
            message: e.message().to_string(),
            fatal: false,
            retryable: e.retryable(),
        }
    }

    /// The error response for a failure after which the server closes the
    /// connection.
    pub fn fatal_error(e: &CsqError) -> QueryResponse {
        QueryResponse::Error {
            kind: e.kind().to_string(),
            message: e.message().to_string(),
            fatal: true,
            retryable: e.retryable(),
        }
    }

    /// A fatal error the server nonetheless invites the client to retry
    /// (on a fresh connection, after backoff): the load-shed / admission
    /// refusal. Overrides the default classification, which would call a
    /// `limit` error permanent.
    pub fn retryable_refusal(e: &CsqError) -> QueryResponse {
        QueryResponse::Error {
            kind: e.kind().to_string(),
            message: e.message().to_string(),
            fatal: true,
            retryable: true,
        }
    }

    /// A refusal the *session survives*: the server declined this one
    /// statement (e.g. statement-level load shedding under a full work
    /// queue) but keeps the connection open, so the client should retry on
    /// the **same** connection after backing off. Overrides the default
    /// classification, which would call a `limit` error permanent.
    pub fn survivable_refusal(e: &CsqError) -> QueryResponse {
        QueryResponse::Error {
            kind: e.kind().to_string(),
            message: e.message().to_string(),
            fatal: false,
            retryable: true,
        }
    }
}

const REQ_QUERY: u8 = 1;
const REQ_PREPARE: u8 = 2;
const REQ_EXECUTE: u8 = 3;
const REQ_CLOSE: u8 = 4;
const REQ_CLOSE_STMT: u8 = 5;
const REQ_SESSION_INFO: u8 = 6;
const REQ_CANCEL_QUERY: u8 = 7;

const RESP_BEGIN: u8 = 1;
const RESP_ROWS: u8 = 2;
const RESP_END: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_PREPARED: u8 = 5;
const RESP_SESSION: u8 = 6;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl QueryRequest {
    /// Encode to wire bytes (one frame payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QueryRequest::Query { sql, deadline_ms } => {
                out.push(REQ_QUERY);
                put_str(&mut out, sql);
                put_u64(&mut out, *deadline_ms);
            }
            QueryRequest::Prepare { sql } => {
                out.push(REQ_PREPARE);
                put_str(&mut out, sql);
            }
            QueryRequest::Execute { stmt, deadline_ms } => {
                out.push(REQ_EXECUTE);
                put_u32(&mut out, *stmt);
                put_u64(&mut out, *deadline_ms);
            }
            QueryRequest::CloseStmt { stmt } => {
                out.push(REQ_CLOSE_STMT);
                put_u32(&mut out, *stmt);
            }
            QueryRequest::Close => out.push(REQ_CLOSE),
            QueryRequest::SessionInfo => out.push(REQ_SESSION_INFO),
            QueryRequest::CancelQuery { session, key } => {
                out.push(REQ_CANCEL_QUERY);
                put_u64(&mut out, *session);
                put_u64(&mut out, *key);
            }
        }
        out
    }

    fn decode_with(d: &mut Decoder<'_>) -> Result<QueryRequest> {
        let req = match d.take_u8()? {
            REQ_QUERY => QueryRequest::Query {
                sql: take_str(d)?,
                deadline_ms: d.take_u64()?,
            },
            REQ_PREPARE => QueryRequest::Prepare { sql: take_str(d)? },
            REQ_EXECUTE => QueryRequest::Execute {
                stmt: d.take_u32()?,
                deadline_ms: d.take_u64()?,
            },
            REQ_CLOSE_STMT => QueryRequest::CloseStmt {
                stmt: d.take_u32()?,
            },
            REQ_CLOSE => QueryRequest::Close,
            REQ_SESSION_INFO => QueryRequest::SessionInfo,
            REQ_CANCEL_QUERY => QueryRequest::CancelQuery {
                session: d.take_u64()?,
                key: d.take_u64()?,
            },
            other => return Err(CsqError::Codec(format!("bad query request tag {other}"))),
        };
        if !d.is_exhausted() {
            return Err(CsqError::Codec("trailing bytes after query request".into()));
        }
        Ok(req)
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<QueryRequest> {
        QueryRequest::decode_with(&mut Decoder::new(buf))
    }
}

impl QueryResponse {
    /// Encode to wire bytes (one frame payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QueryResponse::Begin { columns } => {
                out.push(RESP_BEGIN);
                put_u32(&mut out, columns.len() as u32);
                for c in columns {
                    put_str(&mut out, c);
                }
            }
            QueryResponse::Rows(rows) => {
                out.push(RESP_ROWS);
                csq_common::codec::encode_rows(rows, &mut out);
            }
            QueryResponse::End {
                rows,
                affected,
                plan_cache_hit,
            } => {
                out.push(RESP_END);
                put_u64(&mut out, *rows);
                put_u64(&mut out, *affected);
                put_bool(&mut out, *plan_cache_hit);
            }
            QueryResponse::Error {
                kind,
                message,
                fatal,
                retryable,
            } => {
                out.push(RESP_ERROR);
                put_str(&mut out, kind);
                put_str(&mut out, message);
                put_bool(&mut out, *fatal);
                put_bool(&mut out, *retryable);
            }
            QueryResponse::Prepared {
                stmt,
                plan_cache_hit,
            } => {
                out.push(RESP_PREPARED);
                put_u32(&mut out, *stmt);
                put_bool(&mut out, *plan_cache_hit);
            }
            QueryResponse::Session { id, key } => {
                out.push(RESP_SESSION);
                put_u64(&mut out, *id);
                put_u64(&mut out, *key);
            }
        }
        out
    }

    /// Encode a `Rows` chunk directly from borrowed rows — byte-identical
    /// to `QueryResponse::Rows(rows.to_vec()).encode()` without cloning
    /// first; this is the server's result-streaming hot path.
    pub fn encode_rows_chunk(rows: &[Row]) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(RESP_ROWS);
        csq_common::codec::encode_rows(rows, &mut out);
        out
    }

    fn decode_with(d: &mut Decoder<'_>) -> Result<QueryResponse> {
        let resp = match d.take_u8()? {
            RESP_BEGIN => {
                let n = d.take_count(4)?;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(take_str(d)?);
                }
                QueryResponse::Begin { columns }
            }
            RESP_ROWS => {
                let n = d.take_count(4)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(d.row()?);
                }
                QueryResponse::Rows(rows)
            }
            RESP_END => QueryResponse::End {
                rows: d.take_u64()?,
                affected: d.take_u64()?,
                plan_cache_hit: take_bool(d)?,
            },
            RESP_ERROR => QueryResponse::Error {
                kind: take_str(d)?,
                message: take_str(d)?,
                fatal: take_bool(d)?,
                retryable: take_bool(d)?,
            },
            RESP_PREPARED => QueryResponse::Prepared {
                stmt: d.take_u32()?,
                plan_cache_hit: take_bool(d)?,
            },
            RESP_SESSION => QueryResponse::Session {
                id: d.take_u64()?,
                key: d.take_u64()?,
            },
            other => return Err(CsqError::Codec(format!("bad query response tag {other}"))),
        };
        if !d.is_exhausted() {
            return Err(CsqError::Codec(
                "trailing bytes after query response".into(),
            ));
        }
        Ok(resp)
    }

    /// Decode from wire bytes (copies string/blob payloads).
    pub fn decode(buf: &[u8]) -> Result<QueryResponse> {
        QueryResponse::decode_with(&mut Decoder::new(buf))
    }

    /// Zero-copy decode: `Str`/`Blob` values in a `Rows` chunk stay views
    /// of the shared frame buffer.
    pub fn decode_shared(buf: &std::sync::Arc<Vec<u8>>) -> Result<QueryResponse> {
        QueryResponse::decode_with(&mut Decoder::shared(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_common::Value;
    use std::sync::Arc;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            QueryRequest::Query {
                sql: "SELECT R.Id FROM R R".into(),
                deadline_ms: 0,
            },
            QueryRequest::Query {
                sql: "SELECT R.Id FROM R R".into(),
                deadline_ms: 2_500,
            },
            QueryRequest::Prepare { sql: "".into() },
            QueryRequest::Execute {
                stmt: 42,
                deadline_ms: 125,
            },
            QueryRequest::CloseStmt { stmt: 42 },
            QueryRequest::Close,
            QueryRequest::SessionInfo,
            QueryRequest::CancelQuery {
                session: u64::MAX,
                key: 0x1234_5678_9abc_def0,
            },
        ];
        for r in reqs {
            assert_eq!(QueryRequest::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            QueryResponse::Begin {
                columns: vec!["Id".into(), "count(*)".into()],
            },
            QueryResponse::Rows(vec![
                Row::new(vec![Value::Int(1), Value::from("abc")]),
                Row::new(vec![Value::Null, Value::Float(2.5)]),
            ]),
            QueryResponse::End {
                rows: 17,
                affected: 0,
                plan_cache_hit: true,
            },
            QueryResponse::Error {
                kind: "parse".into(),
                message: "unexpected token".into(),
                fatal: false,
                retryable: false,
            },
            QueryResponse::Error {
                kind: "timeout".into(),
                message: "query deadline exceeded".into(),
                fatal: false,
                retryable: true,
            },
            QueryResponse::Prepared {
                stmt: 7,
                plan_cache_hit: false,
            },
            QueryResponse::Session {
                id: 3,
                key: u64::MAX,
            },
        ];
        for r in resps {
            assert_eq!(QueryResponse::decode(&r.encode()).unwrap(), r);
            let shared = Arc::new(r.encode());
            assert_eq!(QueryResponse::decode_shared(&shared).unwrap(), r);
        }
    }

    #[test]
    fn rows_chunk_fast_path_is_byte_identical() {
        let rows = vec![
            Row::new(vec![Value::Int(5), Value::from("payload")]),
            Row::new(vec![Value::Int(6), Value::Null]),
        ];
        assert_eq!(
            QueryResponse::encode_rows_chunk(&rows),
            QueryResponse::Rows(rows).encode()
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(QueryRequest::decode(&[]).is_err());
        assert!(QueryRequest::decode(&[99]).is_err());
        assert!(QueryResponse::decode(&[0]).is_err());
        let mut trailing = QueryRequest::Close.encode();
        trailing.push(1);
        assert!(QueryRequest::decode(&trailing).is_err());
    }

    #[test]
    fn error_response_matches_error_kinds() {
        let e = CsqError::Catalog("unknown table 'T'".into());
        let resp = QueryResponse::from_error(&e);
        let QueryResponse::Error {
            kind,
            message,
            fatal,
            retryable,
        } = resp
        else {
            panic!("expected error response");
        };
        assert!(!fatal);
        assert!(!retryable, "catalog errors are permanent");
        assert_eq!(CsqError::from_kind(&kind, message), e);
        assert!(matches!(
            QueryResponse::fatal_error(&e),
            QueryResponse::Error { fatal: true, .. }
        ));
    }

    #[test]
    fn retryable_flag_tracks_error_classification() {
        assert!(matches!(
            QueryResponse::from_error(&CsqError::Timeout("m".into())),
            QueryResponse::Error {
                retryable: true,
                ..
            }
        ));
        assert!(matches!(
            QueryResponse::from_error(&CsqError::Cancelled("m".into())),
            QueryResponse::Error {
                retryable: false,
                ..
            }
        ));
        // The shed refusal: kind limit, yet explicitly retryable + fatal.
        let shed = QueryResponse::retryable_refusal(&CsqError::Limit("server saturated".into()));
        assert!(matches!(
            shed,
            QueryResponse::Error {
                retryable: true,
                fatal: true,
                ..
            }
        ));
    }
}
