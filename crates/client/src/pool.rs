//! Client-side access to the query service: a single framed connection
//! ([`ServiceConn`]) and a bounded, blocking [`ConnectionPool`] for
//! many-threads-few-connections applications.
//!
//! A pooled connection is checked out with [`ConnectionPool::get`], used
//! like a plain [`ServiceConn`], and returned on drop. Connections whose
//! *transport* failed (socket error, codec desync) are discarded instead of
//! returned — a server-side query error (bad SQL, unknown table) leaves the
//! session healthy and the connection reusable, exactly mirroring the
//! server's per-session error isolation.

use std::net::ToSocketAddrs;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use csq_common::{CsqError, Deadline, Result, Row};
use csq_net::{Frame, NetStats, TcpConn};

use crate::backoff::Backoff;
use crate::qproto::{QueryRequest, QueryResponse};

/// A complete result fetched through the service.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteResult {
    /// Output column display names.
    pub columns: Vec<String>,
    /// Result rows, in stream order.
    pub rows: Vec<Row>,
    /// DML-affected row count (0 for SELECT).
    pub affected: u64,
    /// Whether the server answered from its plan cache.
    pub plan_cache_hit: bool,
}

/// A session-local prepared statement handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatementHandle {
    id: u32,
}

/// A session's out-of-band cancellation credentials, as returned by
/// [`ServiceConn::session_info`]. Present the pair on a *different*
/// connection via [`ServiceConn::cancel_query`] to kill whatever query the
/// session is running; the secret `key` stops other clients from guessing
/// session ids and cancelling queries that are not theirs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTicket {
    /// Server-assigned session id.
    pub session: u64,
    /// Per-session cancellation secret.
    pub key: u64,
}

/// Per-request execution options: one struct for everything that shapes how
/// a statement runs, instead of one method per combination.
///
/// * `deadline` — overall budget. Enforced twice: forwarded to the server
///   (cooperative kill at the statement's next cancellation checkpoint) and
///   armed client-side as a bounded response wait, so even a server that
///   never starts the statement surfaces a typed `timeout`.
/// * `retry` — automatic retry policy. On a [`ConnectionPool`] each attempt
///   checks out a fresh connection; on a bare [`ServiceConn`] attempts
///   replay on the same session and stop early if the transport broke.
///   When both this and the policy's own legacy `deadline` field are set,
///   `QueryOptions::deadline` wins.
///
/// `QueryOptions::default()` means: no deadline, no retry — identical to
/// the plain [`ServiceConn::query`].
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Overall budget for the request (across all retry attempts), or
    /// `None` for unbounded.
    pub deadline: Option<Duration>,
    /// Retry policy, or `None` for a single attempt.
    pub retry: Option<RetryPolicy>,
}

impl QueryOptions {
    /// No deadline, no retry.
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// Set the overall deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> QueryOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Enable retry under `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> QueryOptions {
        self.retry = Some(policy);
        self
    }

    /// The wire deadline in milliseconds (0 = none), clamped up to 1ms so a
    /// sub-millisecond budget still reads as a bound.
    fn deadline_ms(&self) -> u64 {
        match self.deadline {
            Some(d) => (d.as_millis() as u64).max(1),
            None => 0,
        }
    }

    /// The retry policy with the options-level deadline folded in (the
    /// options' deadline wins over the policy's legacy field).
    fn merged_policy(&self) -> Option<RetryPolicy> {
        self.retry.as_ref().map(|p| {
            let mut p = p.clone();
            p.deadline = self.deadline.or(p.deadline);
            p
        })
    }
}

/// One framed connection to a query service.
pub struct ServiceConn {
    conn: TcpConn,
    stats: NetStats,
    /// Set when the transport or protocol desynchronized; the connection
    /// must not be reused (the pool drops it instead of returning it).
    broken: bool,
    /// Statement ids prepared on this session and not yet released —
    /// server-side plan pins counting against the per-session cap. The
    /// pool releases them when a checkout ends (handles are lost on drop,
    /// so an unreleased pin could never be used again anyway).
    open_stmts: Vec<u32>,
    /// The server's explicit retryability verdict from the most recent
    /// wire `Error` frame, if the last request failed with one. `None`
    /// after a success or a transport-level failure (for those, classify
    /// via [`CsqError::retryable`] instead).
    last_retryable: Option<bool>,
    /// Result rows received during the most recent result stream. The
    /// retry layer replays a failed query only when this is zero — once
    /// any row was delivered, a replay could double-observe side effects
    /// or silently re-read a prefix.
    last_rows_received: u64,
}

impl ServiceConn {
    /// Connect to a service address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceConn> {
        Ok(ServiceConn {
            conn: TcpConn::connect(addr)?,
            stats: NetStats::new(),
            broken: false,
            open_stmts: Vec::new(),
            last_retryable: None,
            last_rows_received: 0,
        })
    }

    /// Client-side byte/message accounting (sends are uplink, receives are
    /// downlink — the client's view of the same wire the server counts).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// True when a transport/protocol failure poisoned this connection.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The server's retryability verdict for the last request, when it
    /// failed with a wire `Error` frame; `None` otherwise (success, or a
    /// transport failure — classify those with [`CsqError::retryable`]).
    pub fn last_error_retryable(&self) -> Option<bool> {
        self.last_retryable
    }

    /// Rows received during the most recent result stream (reset per
    /// query/execute). Zero means a failed request is safe to replay.
    pub fn rows_received(&self) -> u64 {
        self.last_rows_received
    }

    /// Record a wire `Error` frame: remember the server's retryability
    /// verdict, poison the connection if the server said fatal (it closes
    /// the socket after a fatal reply), and produce the typed error.
    fn wire_error(
        &mut self,
        kind: &str,
        message: String,
        fatal: bool,
        retryable: bool,
    ) -> CsqError {
        self.broken |= fatal;
        self.last_retryable = Some(retryable);
        CsqError::from_kind(kind, message)
    }

    fn send(&mut self, req: &QueryRequest) -> Result<()> {
        let payload = req.encode();
        self.stats
            .record_up(payload.len() + csq_net::FRAME_HEADER_BYTES);
        self.conn.send(&payload).inspect_err(|_| {
            self.broken = true;
        })
    }

    fn recv(&mut self) -> Result<QueryResponse> {
        match self.conn.recv() {
            Ok(Frame::Payload(buf)) => {
                self.stats
                    .record_down(buf.len() + csq_net::FRAME_HEADER_BYTES);
                // Zero-copy: row payloads stay views of the frame buffer.
                let buf = Arc::new(buf);
                QueryResponse::decode_shared(&buf).inspect_err(|_| {
                    self.broken = true;
                })
            }
            Ok(Frame::Closed) => {
                self.broken = true;
                Err(CsqError::Net("server closed the connection".into()))
            }
            Ok(Frame::TimedOut) => {
                // Only possible while a response deadline is armed: the
                // server blew the budget (or this session is parked in the
                // service's admission queue and never started). Broken
                // either way — a late response frame would desync the
                // stream.
                self.broken = true;
                Err(CsqError::Timeout(
                    "no response within the query deadline".into(),
                ))
            }
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    /// Drain one result stream (after `Query`/`Execute` was sent).
    fn read_result(&mut self) -> Result<RemoteResult> {
        self.last_retryable = None;
        self.last_rows_received = 0;
        let columns = match self.recv()? {
            QueryResponse::Begin { columns } => columns,
            QueryResponse::Error {
                kind,
                message,
                fatal,
                retryable,
            } => {
                // A fatal error (admission refusal, server shutdown) means
                // the server closes this connection after replying — it
                // must not go back into a pool.
                return Err(self.wire_error(&kind, message, fatal, retryable));
            }
            other => {
                self.broken = true;
                return Err(CsqError::Net(format!(
                    "protocol violation: expected Begin, got {other:?}"
                )));
            }
        };
        let mut rows = Vec::new();
        loop {
            match self.recv()? {
                QueryResponse::Rows(chunk) => {
                    self.last_rows_received += chunk.len() as u64;
                    rows.extend(chunk);
                }
                QueryResponse::End {
                    rows: n,
                    affected,
                    plan_cache_hit,
                } => {
                    if n as usize != rows.len() {
                        self.broken = true;
                        return Err(CsqError::Net(format!(
                            "protocol violation: End declared {n} rows, received {}",
                            rows.len()
                        )));
                    }
                    return Ok(RemoteResult {
                        columns,
                        rows,
                        affected,
                        plan_cache_hit,
                    });
                }
                QueryResponse::Error {
                    kind,
                    message,
                    fatal,
                    retryable,
                } => {
                    return Err(self.wire_error(&kind, message, fatal, retryable));
                }
                other => {
                    self.broken = true;
                    return Err(CsqError::Net(format!(
                        "protocol violation: expected Rows/End, got {other:?}"
                    )));
                }
            }
        }
    }

    /// Execute one SQL statement under `opts`, collecting the full result.
    ///
    /// This is the primary entrypoint; [`query`](Self::query) and
    /// [`query_deadline`](Self::query_deadline) are thin wrappers over it.
    /// With `opts.retry` set, failed attempts replay **on this same
    /// session** when the error is retryable, no result rows were received
    /// (a replay must not double-observe a partial stream), and the
    /// transport is still healthy — a broken connection ends the loop
    /// immediately, since this method cannot re-dial (use
    /// [`ConnectionPool::query_with`] for that).
    pub fn query_with(&mut self, sql: &str, opts: &QueryOptions) -> Result<RemoteResult> {
        let Some(policy) = opts.merged_policy() else {
            return self.raw_query(sql, opts.deadline_ms());
        };
        let deadline = policy.deadline.map(Deadline::from_timeout);
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            let deadline_ms = match &deadline {
                Some(dl) => (dl.remaining().as_millis() as u64).max(1),
                None => 0,
            };
            match self.raw_query(sql, deadline_ms) {
                Ok(result) => return Ok(result),
                Err(e) => {
                    let retryable = self.last_error_retryable().unwrap_or_else(|| e.retryable());
                    let replay_safe = self.last_rows_received == 0;
                    let give_up = self.broken
                        || !retryable
                        || !replay_safe
                        || attempt + 1 == attempts
                        || !policy.backoff.sleep(attempt, deadline.as_ref());
                    if give_up {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("retry loop always returns on its last attempt")
    }

    /// Execute one SQL statement, collecting the full result.
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult> {
        self.raw_query(sql, 0)
    }

    /// Execute one SQL statement under a deadline of `deadline_ms`
    /// milliseconds (0 = none). Wrapper over [`query_with`](Self::query_with)
    /// semantics; see [`QueryOptions::deadline`] for how the deadline is
    /// enforced on both sides.
    pub fn query_deadline(&mut self, sql: &str, deadline_ms: u64) -> Result<RemoteResult> {
        self.raw_query(sql, deadline_ms)
    }

    /// One query attempt on the wire under a millisecond deadline (0 = none).
    fn raw_query(&mut self, sql: &str, deadline_ms: u64) -> Result<RemoteResult> {
        self.send(&QueryRequest::Query {
            sql: sql.into(),
            deadline_ms,
        })?;
        self.read_result_within(deadline_ms)
    }

    /// Extra slack on the client-side response timeout beyond the server's
    /// deadline: covers scheduling jitter plus the error frame's travel
    /// time, so the server's *typed* answer wins the race when both sides
    /// enforce the same budget.
    const RESPONSE_GRACE: Duration = Duration::from_millis(500);

    /// [`read_result`](Self::read_result) with a client-side backstop: when
    /// a deadline is set, the connection's idle timeout is armed for the
    /// duration of the result stream so the wait is bounded even if the
    /// server never starts the statement. `deadline_ms == 0` reads
    /// unbounded, matching [`query`](Self::query).
    fn read_result_within(&mut self, deadline_ms: u64) -> Result<RemoteResult> {
        if deadline_ms == 0 {
            return self.read_result();
        }
        self.conn.set_idle_timeout(Some(
            Duration::from_millis(deadline_ms) + Self::RESPONSE_GRACE,
        ));
        let result = self.read_result();
        self.conn.set_idle_timeout(None);
        result
    }

    /// Prepare a SELECT for repeated execution on this session. Returns the
    /// handle plus whether the server's plan cache already had the plan.
    pub fn prepare(&mut self, sql: &str) -> Result<(StatementHandle, bool)> {
        self.last_retryable = None;
        self.send(&QueryRequest::Prepare { sql: sql.into() })?;
        match self.recv()? {
            QueryResponse::Prepared {
                stmt,
                plan_cache_hit,
            } => {
                self.open_stmts.push(stmt);
                Ok((StatementHandle { id: stmt }, plan_cache_hit))
            }
            QueryResponse::Error {
                kind,
                message,
                fatal,
                retryable,
            } => Err(self.wire_error(&kind, message, fatal, retryable)),
            other => {
                self.broken = true;
                Err(CsqError::Net(format!(
                    "protocol violation: expected Prepared, got {other:?}"
                )))
            }
        }
    }

    /// Execute a prepared statement under `opts`. Prepared handles are
    /// session-local, so retry here replays on this same session under the
    /// same safety rules as [`query_with`](Self::query_with) (retryable
    /// error, zero rows received, transport healthy).
    pub fn execute_with(
        &mut self,
        stmt: StatementHandle,
        opts: &QueryOptions,
    ) -> Result<RemoteResult> {
        let Some(policy) = opts.merged_policy() else {
            return self.raw_execute(stmt, opts.deadline_ms());
        };
        let deadline = policy.deadline.map(Deadline::from_timeout);
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            let deadline_ms = match &deadline {
                Some(dl) => (dl.remaining().as_millis() as u64).max(1),
                None => 0,
            };
            match self.raw_execute(stmt, deadline_ms) {
                Ok(result) => return Ok(result),
                Err(e) => {
                    let retryable = self.last_error_retryable().unwrap_or_else(|| e.retryable());
                    let replay_safe = self.last_rows_received == 0;
                    let give_up = self.broken
                        || !retryable
                        || !replay_safe
                        || attempt + 1 == attempts
                        || !policy.backoff.sleep(attempt, deadline.as_ref());
                    if give_up {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("retry loop always returns on its last attempt")
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, stmt: StatementHandle) -> Result<RemoteResult> {
        self.raw_execute(stmt, 0)
    }

    /// Execute a prepared statement under a deadline of `deadline_ms`
    /// milliseconds (0 = none). Wrapper over
    /// [`execute_with`](Self::execute_with) semantics.
    pub fn execute_deadline(
        &mut self,
        stmt: StatementHandle,
        deadline_ms: u64,
    ) -> Result<RemoteResult> {
        self.raw_execute(stmt, deadline_ms)
    }

    /// One execute attempt on the wire under a millisecond deadline (0 = none).
    fn raw_execute(&mut self, stmt: StatementHandle, deadline_ms: u64) -> Result<RemoteResult> {
        self.send(&QueryRequest::Execute {
            stmt: stmt.id,
            deadline_ms,
        })?;
        self.read_result_within(deadline_ms)
    }

    /// Fetch this session's out-of-band cancellation credentials. Hand the
    /// ticket to [`ServiceConn::cancel_query`] on a *different* connection
    /// to cancel whatever this session is running.
    pub fn session_info(&mut self) -> Result<SessionTicket> {
        self.last_retryable = None;
        self.send(&QueryRequest::SessionInfo)?;
        match self.recv()? {
            QueryResponse::Session { id, key } => Ok(SessionTicket { session: id, key }),
            QueryResponse::Error {
                kind,
                message,
                fatal,
                retryable,
            } => Err(self.wire_error(&kind, message, fatal, retryable)),
            other => {
                self.broken = true;
                Err(CsqError::Net(format!(
                    "protocol violation: expected Session, got {other:?}"
                )))
            }
        }
    }

    /// Ask the server to cancel the query running on another session
    /// (fire-and-forget, like Postgres' out-of-band cancel: no reply, and
    /// a wrong ticket is silently ignored). The *target* observes the
    /// cancellation as a typed `cancelled` error on its own connection.
    pub fn cancel_query(&mut self, ticket: SessionTicket) -> Result<()> {
        self.send(&QueryRequest::CancelQuery {
            session: ticket.session,
            key: ticket.key,
        })
    }

    /// Release a prepared statement's server-side pin (fire-and-forget —
    /// no round trip; the server processes it before any later request on
    /// this session). The handle must not be executed afterwards.
    pub fn close_statement(&mut self, stmt: StatementHandle) -> Result<()> {
        self.open_stmts.retain(|&id| id != stmt.id);
        self.send(&QueryRequest::CloseStmt { stmt: stmt.id })
    }

    /// Release every prepared statement still pinned on this session
    /// (fire-and-forget). The pool calls this when a checkout ends so pins
    /// cannot accumulate across users of a recycled connection.
    pub fn release_statements(&mut self) -> Result<()> {
        for id in std::mem::take(&mut self.open_stmts) {
            self.send(&QueryRequest::CloseStmt { stmt: id })?;
        }
        Ok(())
    }

    /// Gracefully end the session.
    pub fn close(mut self) {
        let _ = self.send(&QueryRequest::Close);
        self.conn.shutdown();
    }
}

/// How long [`ConnectionPool::get`] waits for a free slot before giving up
/// with a typed `timeout` error. Generous — it exists so a wedged or
/// saturated pool turns into a diagnosable error instead of a parked thread
/// forever; latency-sensitive callers pass their own budget via
/// [`ConnectionPool::get_within`].
pub const DEFAULT_CHECKOUT_WAIT: Duration = Duration::from_secs(30);

/// Retry policy for [`ConnectionPool::query_with_retry`]: how many attempts,
/// how to wait between them, and the overall wall-clock budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (min 1).
    pub max_attempts: u32,
    /// Seeded backoff schedule between attempts.
    pub backoff: Backoff,
    /// Overall budget across *all* attempts (checkout, wire time, and
    /// backoff waits). Also forwarded to the server as each attempt's
    /// query deadline, so a straggler attempt is killed server-side
    /// rather than dragging past the client's own budget. `None` = no
    /// deadline.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff: Backoff::default(),
            deadline: None,
        }
    }
}

/// A bounded pool of service connections shared by many threads.
///
/// Connections are created lazily up to `max`; [`get`](ConnectionPool::get)
/// waits (bounded) when all are checked out — the client-side face of the
/// server's admission backpressure. Internally the pool is a channel of
/// `max` slots — an empty slot means "you may dial", a full one carries an
/// idle connection; the channel's recv is the wait queue.
pub struct ConnectionPool {
    addr: std::net::SocketAddr,
    slots_tx: Sender<Option<ServiceConn>>,
    slots_rx: Receiver<Option<ServiceConn>>,
    checkout_wait: Duration,
}

impl ConnectionPool {
    /// A pool of up to `max` connections to `addr`.
    ///
    /// Size `max` for the client's own concurrency (how many statements it
    /// wants in flight at once), bounded by the service's
    /// `ServiceConfig::max_sessions`. An idle pooled connection parks in
    /// the server's session scheduler at near-zero cost — it does *not*
    /// pin a server worker — so pools well above the server's worker count
    /// are fine; the worker count only bounds how many of the pool's
    /// statements execute simultaneously.
    pub fn new(addr: impl ToSocketAddrs, max: usize) -> Result<ConnectionPool> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| CsqError::Net(format!("resolve pool address: {e}")))?
            .next()
            .ok_or_else(|| CsqError::Net("pool address resolved to nothing".into()))?;
        let max = max.max(1);
        let (slots_tx, slots_rx) = bounded(max);
        for _ in 0..max {
            let _ = slots_tx.send(None);
        }
        Ok(ConnectionPool {
            addr,
            slots_tx,
            slots_rx,
            checkout_wait: DEFAULT_CHECKOUT_WAIT,
        })
    }

    /// Override the default checkout wait used by [`get`](ConnectionPool::get).
    pub fn with_checkout_wait(mut self, wait: Duration) -> ConnectionPool {
        self.checkout_wait = wait;
        self
    }

    /// Check out a connection, dialing a fresh one if this slot has none.
    /// Waits up to the pool's checkout wait (default
    /// [`DEFAULT_CHECKOUT_WAIT`]) while all `max` connections are in use,
    /// then fails with a typed `timeout` error instead of blocking forever.
    pub fn get(&self) -> Result<PooledConn<'_>> {
        self.get_within(self.checkout_wait)
    }

    /// Check out a connection, waiting at most `wait` for a free slot.
    /// Fails with a typed `timeout` error once the budget is spent.
    pub fn get_within(&self, wait: Duration) -> Result<PooledConn<'_>> {
        let slot = match self.slots_rx.recv_timeout(wait) {
            Ok(slot) => slot,
            Err(RecvTimeoutError::Timeout) => {
                return Err(CsqError::Timeout(format!(
                    "connection pool checkout timed out after {wait:?} (all connections busy)"
                )));
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(CsqError::Net("connection pool closed".into()));
            }
        };
        let conn = match slot {
            Some(conn) => conn,
            None => match ServiceConn::connect(self.addr) {
                Ok(conn) => conn,
                Err(e) => {
                    // Give the slot back so a later caller can retry.
                    let _ = self.slots_tx.send(None);
                    return Err(e);
                }
            },
        };
        Ok(PooledConn {
            pool: self,
            conn: Some(conn),
        })
    }

    /// Execute `sql` under `opts`: checkout, deadline, and (when
    /// `opts.retry` is set) automatic retry with a fresh checkout per
    /// attempt. The primary pool entrypoint;
    /// [`query_with_retry`](Self::query_with_retry) is a thin wrapper.
    pub fn query_with(&self, sql: &str, opts: &QueryOptions) -> Result<RemoteResult> {
        match opts.merged_policy() {
            Some(policy) => self.query_retry_core(sql, &policy),
            None => self.get()?.query_deadline(sql, opts.deadline_ms()),
        }
    }

    /// Execute `sql` with automatic retry under `policy`.
    ///
    /// An attempt is retried only when **all** of these hold:
    /// * the failure is retryable — the server's explicit wire verdict
    ///   when an `Error` frame arrived, otherwise the client-side
    ///   [`CsqError::retryable`] classification (net/codec/timeout);
    /// * **zero result rows** were received by the failed attempt, so a
    ///   replay cannot double-observe a partially-delivered stream;
    /// * attempts and wall-clock budget remain, and the next backoff wait
    ///   fits inside the remaining budget.
    ///
    /// The remaining budget is also forwarded as each attempt's server-side
    /// query deadline, so no attempt outlives the caller's patience.
    pub fn query_with_retry(&self, sql: &str, policy: &RetryPolicy) -> Result<RemoteResult> {
        self.query_retry_core(sql, policy)
    }

    fn query_retry_core(&self, sql: &str, policy: &RetryPolicy) -> Result<RemoteResult> {
        let deadline = policy.deadline.map(Deadline::from_timeout);
        let attempts = policy.max_attempts.max(1);
        let mut last_err: Option<CsqError> = None;
        for attempt in 0..attempts {
            if let Some(dl) = &deadline {
                if dl.expired() {
                    return Err(last_err.unwrap_or_else(|| {
                        CsqError::Timeout("retry budget exhausted before any attempt".into())
                    }));
                }
            }
            let checkout = match &deadline {
                Some(dl) => self.get_within(dl.remaining().min(self.checkout_wait)),
                None => self.get(),
            };
            let mut conn = match checkout {
                Ok(conn) => conn,
                Err(e) => {
                    let give_up = !e.retryable()
                        || attempt + 1 == attempts
                        || !policy.backoff.sleep(attempt, deadline.as_ref());
                    if give_up {
                        return Err(e);
                    }
                    last_err = Some(e);
                    continue;
                }
            };
            // Forward the remaining budget as the server-side deadline
            // (clamped up to 1ms so "almost spent" still reads as a bound).
            let deadline_ms = match &deadline {
                Some(dl) => (dl.remaining().as_millis() as u64).max(1),
                None => 0,
            };
            match conn.query_deadline(sql, deadline_ms) {
                Ok(result) => return Ok(result),
                Err(e) => {
                    let retryable = conn.last_error_retryable().unwrap_or_else(|| e.retryable());
                    let replay_safe = conn.rows_received() == 0;
                    drop(conn); // return (or discard) the slot before sleeping
                    let give_up = !retryable
                        || !replay_safe
                        || attempt + 1 == attempts
                        || !policy.backoff.sleep(attempt, deadline.as_ref());
                    if give_up {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        // Unreachable: the loop always returns on its last attempt.
        Err(last_err
            .unwrap_or_else(|| CsqError::Exec("retry loop ended without an attempt".into())))
    }
}

/// A checked-out pool connection; returns itself (or its empty slot, when
/// broken) to the pool on drop.
pub struct PooledConn<'a> {
    pool: &'a ConnectionPool,
    conn: Option<ServiceConn>,
}

impl Deref for PooledConn<'_> {
    type Target = ServiceConn;
    fn deref(&self) -> &ServiceConn {
        self.conn.as_ref().expect("pooled connection taken")
    }
}

impl DerefMut for PooledConn<'_> {
    fn deref_mut(&mut self) -> &mut ServiceConn {
        self.conn.as_mut().expect("pooled connection taken")
    }
}

impl Drop for PooledConn<'_> {
    fn drop(&mut self) {
        let Some(mut conn) = self.conn.take() else {
            return; // already returned (cannot happen today, but stay quiet)
        };
        // Prepared handles die with the checkout, so their server-side
        // pins must too — otherwise a recycled connection accumulates
        // pins until the per-session cap refuses every future prepare.
        let _ = conn.release_statements();
        let slot = if conn.is_broken() { None } else { Some(conn) };
        let _ = self.pool.slots_tx.send(slot);
    }
}
