//! Client-side access to the query service: a single framed connection
//! ([`ServiceConn`]) and a bounded, blocking [`ConnectionPool`] for
//! many-threads-few-connections applications.
//!
//! A pooled connection is checked out with [`ConnectionPool::get`], used
//! like a plain [`ServiceConn`], and returned on drop. Connections whose
//! *transport* failed (socket error, codec desync) are discarded instead of
//! returned — a server-side query error (bad SQL, unknown table) leaves the
//! session healthy and the connection reusable, exactly mirroring the
//! server's per-session error isolation.

use std::net::ToSocketAddrs;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};

use csq_common::{CsqError, Result, Row};
use csq_net::{Frame, NetStats, TcpConn};

use crate::qproto::{QueryRequest, QueryResponse};

/// A complete result fetched through the service.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteResult {
    /// Output column display names.
    pub columns: Vec<String>,
    /// Result rows, in stream order.
    pub rows: Vec<Row>,
    /// DML-affected row count (0 for SELECT).
    pub affected: u64,
    /// Whether the server answered from its plan cache.
    pub plan_cache_hit: bool,
}

/// A session-local prepared statement handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatementHandle {
    id: u32,
}

/// One framed connection to a query service.
pub struct ServiceConn {
    conn: TcpConn,
    stats: NetStats,
    /// Set when the transport or protocol desynchronized; the connection
    /// must not be reused (the pool drops it instead of returning it).
    broken: bool,
    /// Statement ids prepared on this session and not yet released —
    /// server-side plan pins counting against the per-session cap. The
    /// pool releases them when a checkout ends (handles are lost on drop,
    /// so an unreleased pin could never be used again anyway).
    open_stmts: Vec<u32>,
}

impl ServiceConn {
    /// Connect to a service address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceConn> {
        Ok(ServiceConn {
            conn: TcpConn::connect(addr)?,
            stats: NetStats::new(),
            broken: false,
            open_stmts: Vec::new(),
        })
    }

    /// Client-side byte/message accounting (sends are uplink, receives are
    /// downlink — the client's view of the same wire the server counts).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// True when a transport/protocol failure poisoned this connection.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    fn send(&mut self, req: &QueryRequest) -> Result<()> {
        let payload = req.encode();
        self.stats
            .record_up(payload.len() + csq_net::FRAME_HEADER_BYTES);
        self.conn.send(&payload).inspect_err(|_| {
            self.broken = true;
        })
    }

    fn recv(&mut self) -> Result<QueryResponse> {
        match self.conn.recv() {
            Ok(Frame::Payload(buf)) => {
                self.stats
                    .record_down(buf.len() + csq_net::FRAME_HEADER_BYTES);
                // Zero-copy: row payloads stay views of the frame buffer.
                let buf = Arc::new(buf);
                QueryResponse::decode_shared(&buf).inspect_err(|_| {
                    self.broken = true;
                })
            }
            Ok(Frame::Closed) => {
                self.broken = true;
                Err(CsqError::Net("server closed the connection".into()))
            }
            Ok(Frame::TimedOut) => {
                self.broken = true;
                Err(CsqError::Net("unexpected idle timeout on client".into()))
            }
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    /// Drain one result stream (after `Query`/`Execute` was sent).
    fn read_result(&mut self) -> Result<RemoteResult> {
        let columns = match self.recv()? {
            QueryResponse::Begin { columns } => columns,
            QueryResponse::Error {
                kind,
                message,
                fatal,
            } => {
                // A fatal error (admission refusal, server shutdown) means
                // the server closes this connection after replying — it
                // must not go back into a pool.
                self.broken |= fatal;
                return Err(CsqError::from_kind(&kind, message));
            }
            other => {
                self.broken = true;
                return Err(CsqError::Net(format!(
                    "protocol violation: expected Begin, got {other:?}"
                )));
            }
        };
        let mut rows = Vec::new();
        loop {
            match self.recv()? {
                QueryResponse::Rows(chunk) => rows.extend(chunk),
                QueryResponse::End {
                    rows: n,
                    affected,
                    plan_cache_hit,
                } => {
                    if n as usize != rows.len() {
                        self.broken = true;
                        return Err(CsqError::Net(format!(
                            "protocol violation: End declared {n} rows, received {}",
                            rows.len()
                        )));
                    }
                    return Ok(RemoteResult {
                        columns,
                        rows,
                        affected,
                        plan_cache_hit,
                    });
                }
                QueryResponse::Error {
                    kind,
                    message,
                    fatal,
                } => {
                    self.broken |= fatal;
                    return Err(CsqError::from_kind(&kind, message));
                }
                other => {
                    self.broken = true;
                    return Err(CsqError::Net(format!(
                        "protocol violation: expected Rows/End, got {other:?}"
                    )));
                }
            }
        }
    }

    /// Execute one SQL statement, collecting the full result.
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult> {
        self.send(&QueryRequest::Query { sql: sql.into() })?;
        self.read_result()
    }

    /// Prepare a SELECT for repeated execution on this session. Returns the
    /// handle plus whether the server's plan cache already had the plan.
    pub fn prepare(&mut self, sql: &str) -> Result<(StatementHandle, bool)> {
        self.send(&QueryRequest::Prepare { sql: sql.into() })?;
        match self.recv()? {
            QueryResponse::Prepared {
                stmt,
                plan_cache_hit,
            } => {
                self.open_stmts.push(stmt);
                Ok((StatementHandle { id: stmt }, plan_cache_hit))
            }
            QueryResponse::Error {
                kind,
                message,
                fatal,
            } => {
                self.broken |= fatal;
                Err(CsqError::from_kind(&kind, message))
            }
            other => {
                self.broken = true;
                Err(CsqError::Net(format!(
                    "protocol violation: expected Prepared, got {other:?}"
                )))
            }
        }
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, stmt: StatementHandle) -> Result<RemoteResult> {
        self.send(&QueryRequest::Execute { stmt: stmt.id })?;
        self.read_result()
    }

    /// Release a prepared statement's server-side pin (fire-and-forget —
    /// no round trip; the server processes it before any later request on
    /// this session). The handle must not be executed afterwards.
    pub fn close_statement(&mut self, stmt: StatementHandle) -> Result<()> {
        self.open_stmts.retain(|&id| id != stmt.id);
        self.send(&QueryRequest::CloseStmt { stmt: stmt.id })
    }

    /// Release every prepared statement still pinned on this session
    /// (fire-and-forget). The pool calls this when a checkout ends so pins
    /// cannot accumulate across users of a recycled connection.
    pub fn release_statements(&mut self) -> Result<()> {
        for id in std::mem::take(&mut self.open_stmts) {
            self.send(&QueryRequest::CloseStmt { stmt: id })?;
        }
        Ok(())
    }

    /// Gracefully end the session.
    pub fn close(mut self) {
        let _ = self.send(&QueryRequest::Close);
        self.conn.shutdown();
    }
}

/// A bounded pool of service connections shared by many threads.
///
/// Connections are created lazily up to `max`; [`get`](ConnectionPool::get)
/// blocks when all are checked out (the client-side face of the server's
/// admission backpressure). Internally the pool is a channel of `max`
/// slots — an empty slot means "you may dial", a full one carries an idle
/// connection; the channel's blocking recv is the wait queue.
pub struct ConnectionPool {
    addr: std::net::SocketAddr,
    slots_tx: Sender<Option<ServiceConn>>,
    slots_rx: Receiver<Option<ServiceConn>>,
}

impl ConnectionPool {
    /// A pool of up to `max` connections to `addr`.
    pub fn new(addr: impl ToSocketAddrs, max: usize) -> Result<ConnectionPool> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| CsqError::Net(format!("resolve pool address: {e}")))?
            .next()
            .ok_or_else(|| CsqError::Net("pool address resolved to nothing".into()))?;
        let max = max.max(1);
        let (slots_tx, slots_rx) = bounded(max);
        for _ in 0..max {
            let _ = slots_tx.send(None);
        }
        Ok(ConnectionPool {
            addr,
            slots_tx,
            slots_rx,
        })
    }

    /// Check out a connection, dialing a fresh one if this slot has none.
    /// Blocks while all `max` connections are in use.
    pub fn get(&self) -> Result<PooledConn<'_>> {
        let slot = self
            .slots_rx
            .recv()
            .map_err(|_| CsqError::Net("connection pool closed".into()))?;
        let conn = match slot {
            Some(conn) => conn,
            None => match ServiceConn::connect(self.addr) {
                Ok(conn) => conn,
                Err(e) => {
                    // Give the slot back so a later caller can retry.
                    let _ = self.slots_tx.send(None);
                    return Err(e);
                }
            },
        };
        Ok(PooledConn {
            pool: self,
            conn: Some(conn),
        })
    }
}

/// A checked-out pool connection; returns itself (or its empty slot, when
/// broken) to the pool on drop.
pub struct PooledConn<'a> {
    pool: &'a ConnectionPool,
    conn: Option<ServiceConn>,
}

impl Deref for PooledConn<'_> {
    type Target = ServiceConn;
    fn deref(&self) -> &ServiceConn {
        self.conn.as_ref().expect("pooled connection taken")
    }
}

impl DerefMut for PooledConn<'_> {
    fn deref_mut(&mut self) -> &mut ServiceConn {
        self.conn.as_mut().expect("pooled connection taken")
    }
}

impl Drop for PooledConn<'_> {
    fn drop(&mut self) {
        let Some(mut conn) = self.conn.take() else {
            return; // already returned (cannot happen today, but stay quiet)
        };
        // Prepared handles die with the checkout, so their server-side
        // pins must too — otherwise a recycled connection accumulates
        // pins until the per-session cap refuses every future prepare.
        let _ = conn.release_statements();
        let slot = if conn.is_broken() { None } else { Some(conn) };
        let _ = self.pool.slots_tx.send(slot);
    }
}
