//! The paper's synthetic experiment UDFs.
//!
//! §4.1: "`UDF` is a simple function that returned another object of the
//! same size" — [`ObjectUdf`].
//! §4.2 (Figure 7): "`UDF1` takes an object from the Argument column and
//! returns true or false" with a controlled selectivity — [`PredicateUdf`];
//! "`UDF2` takes the same object and returns a result of known size" —
//! [`ObjectUdf`] with an explicit result size.
//!
//! Both are deterministic functions of their argument bytes so duplicate
//! arguments give duplicate results (required for semantic equivalence of
//! semi-join duplicate elimination) and runs are reproducible.

use csq_common::{Blob, DataType, Result, Value};

use crate::runtime::{ScalarUdf, UdfCost, UdfSignature};

/// Stable 64-bit hash of a byte slice (FNV-1a), the seed for synthetic
/// results. Private to keep callers honest about determinism.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Blob → Blob UDF producing a result of fixed size, deterministically
/// derived from the argument. With `result_size: None` the result has the
/// same size as the argument payload (§4.1's "object of the same size").
pub struct ObjectUdf {
    sig: UdfSignature,
    result_size: Option<usize>,
    cost: UdfCost,
}

impl ObjectUdf {
    /// `name(BLOB) -> BLOB` returning `result_size` bytes (payload).
    pub fn sized(name: &str, result_size: usize) -> ObjectUdf {
        ObjectUdf {
            sig: UdfSignature::new(name, vec![DataType::Blob], DataType::Blob),
            result_size: Some(result_size),
            cost: UdfCost::default(),
        }
    }

    /// `name(BLOB, ..., BLOB) -> BLOB` with `arity` blob arguments,
    /// returning `result_size` bytes derived from all of them (e.g. the
    /// paper's `Volatility(S.Quotes, S.FuturePrices)`).
    pub fn sized_n(name: &str, arity: usize, result_size: usize) -> ObjectUdf {
        assert!(arity >= 1, "UDFs need at least one argument");
        ObjectUdf {
            sig: UdfSignature::new(name, vec![DataType::Blob; arity], DataType::Blob),
            result_size: Some(result_size),
            cost: UdfCost::default(),
        }
    }

    /// `name(BLOB) -> BLOB` returning an object the size of its argument.
    pub fn same_size(name: &str) -> ObjectUdf {
        ObjectUdf {
            sig: UdfSignature::new(name, vec![DataType::Blob], DataType::Blob),
            result_size: None,
            cost: UdfCost::default(),
        }
    }

    /// Attach a CPU cost model (builder style).
    pub fn with_cost(mut self, cost: UdfCost) -> ObjectUdf {
        self.cost = cost;
        self
    }
}

impl ScalarUdf for ObjectUdf {
    fn signature(&self) -> &UdfSignature {
        &self.sig
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        // Seed from every argument so multi-argument results depend on all
        // inputs, while staying deterministic for duplicate tuples.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        let mut first_len = 0;
        for (i, a) in args.iter().enumerate() {
            let b = a.as_blob()?;
            if i == 0 {
                first_len = b.len();
            }
            seed ^= fnv1a(b.as_bytes()).rotate_left(i as u32);
        }
        let size = self.result_size.unwrap_or(first_len);
        Ok(Value::Blob(Blob::synthetic(size, seed)))
    }

    fn result_size_hint(&self) -> Option<usize> {
        // Wire size of a Blob is payload + 5; the paper's `R` counts the
        // object size, so report the payload-based wire size when known.
        self.result_size.map(|s| s + 5)
    }

    fn cost(&self) -> UdfCost {
        self.cost
    }
}

/// Blob → Bool UDF with a controlled selectivity: a deterministic hash of
/// the argument is compared against the selectivity threshold, so over
/// distinct random arguments the pass fraction converges to `selectivity`.
pub struct PredicateUdf {
    sig: UdfSignature,
    selectivity: f64,
    cost: UdfCost,
}

impl PredicateUdf {
    /// `name(BLOB) -> BOOL` passing ≈`selectivity` of distinct arguments.
    pub fn new(name: &str, selectivity: f64) -> PredicateUdf {
        assert!(
            (0.0..=1.0).contains(&selectivity),
            "selectivity must be in [0,1]"
        );
        PredicateUdf {
            sig: UdfSignature::new(name, vec![DataType::Blob], DataType::Bool),
            selectivity,
            cost: UdfCost::default(),
        }
    }

    /// Attach a CPU cost model (builder style).
    pub fn with_cost(mut self, cost: UdfCost) -> PredicateUdf {
        self.cost = cost;
        self
    }

    /// The configured selectivity.
    pub fn selectivity(&self) -> f64 {
        self.selectivity
    }
}

impl ScalarUdf for PredicateUdf {
    fn signature(&self) -> &UdfSignature {
        &self.sig
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let arg = args[0].as_blob()?;
        // Map the hash to [0,1) and compare. A second mix constant decouples
        // this from ObjectUdf's seeding.
        let h = fnv1a(arg.as_bytes()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        Ok(Value::Bool(unit < self.selectivity))
    }

    fn result_size_hint(&self) -> Option<usize> {
        Some(Value::Bool(true).wire_size())
    }

    fn selectivity_hint(&self) -> Option<f64> {
        Some(self.selectivity)
    }

    fn cost(&self) -> UdfCost {
        self.cost
    }
}

/// Blob → Int UDF mapping an object to a rating in `0..buckets`, used for
/// the Figure 11 query (`ClientAnalysis(S.Quotes) = E.Rating`).
pub struct RatingUdf {
    sig: UdfSignature,
    buckets: i64,
    cost: UdfCost,
}

impl RatingUdf {
    /// `name(BLOB) -> INT` in `0..buckets`.
    pub fn new(name: &str, buckets: i64) -> RatingUdf {
        assert!(buckets > 0);
        RatingUdf {
            sig: UdfSignature::new(name, vec![DataType::Blob], DataType::Int),
            buckets,
            cost: UdfCost::default(),
        }
    }
}

impl ScalarUdf for RatingUdf {
    fn signature(&self) -> &UdfSignature {
        &self.sig
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let arg = args[0].as_blob()?;
        Ok(Value::Int(
            (fnv1a(arg.as_bytes()) % self.buckets as u64) as i64,
        ))
    }

    fn result_size_hint(&self) -> Option<usize> {
        Some(Value::Int(0).wire_size())
    }

    fn cost(&self) -> UdfCost {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_udf_same_size_and_sized() {
        let same = ObjectUdf::same_size("f");
        let arg = Value::Blob(Blob::synthetic(100, 1));
        let out = same.invoke(std::slice::from_ref(&arg)).unwrap();
        assert_eq!(out.as_blob().unwrap().len(), 100);

        let sized = ObjectUdf::sized("g", 2000);
        let out = sized.invoke(std::slice::from_ref(&arg)).unwrap();
        assert_eq!(out.as_blob().unwrap().len(), 2000);
        assert_eq!(sized.result_size_hint(), Some(2005));
    }

    #[test]
    fn object_udf_deterministic_on_duplicates() {
        let udf = ObjectUdf::sized("f", 64);
        let a1 = Value::Blob(Blob::synthetic(50, 7));
        let a2 = Value::Blob(Blob::synthetic(50, 7));
        let b = Value::Blob(Blob::synthetic(50, 8));
        assert_eq!(
            udf.invoke(std::slice::from_ref(&a1)).unwrap(),
            udf.invoke(std::slice::from_ref(&a2)).unwrap()
        );
        assert_ne!(
            udf.invoke(std::slice::from_ref(&a1)).unwrap(),
            udf.invoke(std::slice::from_ref(&b)).unwrap()
        );
    }

    #[test]
    fn predicate_udf_selectivity_converges() {
        for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let udf = PredicateUdf::new("p", s);
            let n = 2000;
            let mut passed = 0;
            for i in 0..n {
                let arg = Value::Blob(Blob::synthetic(32, i as u64));
                if udf.invoke(std::slice::from_ref(&arg)).unwrap() == Value::Bool(true) {
                    passed += 1;
                }
            }
            let observed = passed as f64 / n as f64;
            assert!(
                (observed - s).abs() < 0.05,
                "target {s}, observed {observed}"
            );
        }
    }

    #[test]
    fn predicate_udf_deterministic() {
        let udf = PredicateUdf::new("p", 0.5);
        let arg = Value::Blob(Blob::synthetic(32, 99));
        let a = udf.invoke(std::slice::from_ref(&arg)).unwrap();
        let b = udf.invoke(std::slice::from_ref(&arg)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rating_udf_in_range() {
        let udf = RatingUdf::new("r", 10);
        for i in 0..100 {
            let arg = Value::Blob(Blob::synthetic(16, i));
            let v = udf.invoke(std::slice::from_ref(&arg)).unwrap();
            let r = v.as_i64().unwrap();
            assert!((0..10).contains(&r));
        }
    }

    #[test]
    fn selectivity_bounds_enforced() {
        let r = std::panic::catch_unwind(|| PredicateUdf::new("p", 1.5));
        assert!(r.is_err());
    }
}
